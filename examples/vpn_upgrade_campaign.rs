//! The §5.1 VPN story: upgrade a fleet of vCE routers with the
//! two-workflow pattern — a non-disruptive download/install pass across
//! everyone, then (days later) a disruptive activate/verify pass planned
//! around host conflicts, with SSH fault injection and manual fall-out
//! handling.
//!
//! Run with: `cargo run --example vpn_upgrade_campaign`

use cornet::core::{testbed_registry, Cornet};
use cornet::netsim::{Network, Testbed, TestbedConfig};
use cornet::orchestrator::GlobalState;
use cornet::planner::PlanOptions;
use cornet::types::{NfType, NodeId, ParamValue};
use cornet::workflow::builtin::{vce_activate_workflow, vce_download_workflow};

const PLAN_INTENT: &str = r#"{
    "scheduling_window": {"start": "2020-07-06 00:00:00",
                           "end": "2020-07-13 23:59:00",
                           "granularity": {"metric": "day", "value": 1}},
    "maintenance_window": {"start": "0:00", "end": "6:00"},
    "schedulable_attribute": "common_id",
    "conflict_attribute": "common_id",
    "constraints": [
        {"name": "conflict_handling", "value": "zero-tolerance"},
        {"name": "conflict_scope", "value": "service_chain"},
        {"name": "concurrency", "base_attribute": "common_id",
         "operator": "<=", "granularity": {"metric": "day", "value": 1},
         "default_capacity": 8}
    ]
}"#;

fn inputs_for(name: &str, version: &str, previous: Option<&str>) -> GlobalState {
    let mut g = GlobalState::new();
    g.insert("node".into(), ParamValue::from(name));
    g.insert("software_version".into(), ParamValue::from(version));
    if let Some(p) = previous {
        g.insert("previous_version".into(), ParamValue::from(p));
    }
    g
}

fn main() {
    // A VPN cloud: 48 vCE routers on shared physical servers.
    let net = Network::generate_cloud(7, 48, 2);
    let vces: Vec<NodeId> = net.nodes_of_type(NfType::VceRouter);
    println!(
        "VPN cloud: {} vCE routers on {} servers",
        vces.len(),
        net.nodes_of_type(NfType::PhysicalServer).len()
    );

    // Testbed with a 2% management-plane (SSH) failure rate — §5.1's
    // observed production failure mode.
    let testbed = Testbed::new(TestbedConfig {
        seed: 17,
        ssh_failure_rate: 0.02,
        unhealthy_rate: 0.0,
    });
    for &v in &vces {
        testbed.instantiate(&net.inventory.record(v).name, NfType::VceRouter, "16.9");
    }
    let cornet = Cornet::new(
        net.inventory.clone(),
        net.topology.clone(),
        testbed_registry(testbed.clone()),
    );

    // --- pass 1: download & install everywhere (non-disruptive, no
    //     scheduling constraints beyond a nightly batch).
    let w1 = cornet
        .deploy_workflow(&vce_download_workflow(&cornet.catalog))
        .unwrap();
    let mut install_schedule = cornet::types::Schedule::default();
    for (i, &v) in vces.iter().enumerate() {
        install_schedule
            .assignments
            .insert(v, cornet::types::Timeslot(i as u32 / 16 + 1));
    }
    let inv = cornet.inventory.clone();
    let r1 = cornet
        .dispatch(&w1, &install_schedule, 8, |n| {
            inputs_for(&inv.record(n).name, "17.3", None)
        })
        .unwrap();
    println!(
        "\npass 1 (download/install): {}/{} completed, {} fall-outs",
        r1.completed(),
        vces.len(),
        r1.failures().len()
    );
    for (instance, block) in r1.failures() {
        println!(
            "  fall-out on {} at block '{block}' — handled manually (out-of-band access)",
            inv.record(instance.node).name
        );
        // §5.1: "the fall-out at the time had to be dealt with manually."
        testbed
            .software_upgrade(&inv.record(instance.node).name, "17.3")
            .ok();
    }

    // --- pass 2, days later: activate & verify, planned with zero
    //     tolerance against host/service-chain conflicts.
    let plan = cornet
        .plan_from_json(
            PLAN_INTENT,
            &vces,
            &PlanOptions {
                solver: cornet::solver::SolverConfig {
                    time_limit: std::time::Duration::from_secs(3),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
    println!(
        "\npass 2 plan: {} scheduled over {} nights, {} conflicts, discovered in {:?}",
        plan.schedule.scheduled_count(),
        plan.makespan(),
        plan.schedule.conflicts,
        plan.discovery_time
    );

    let w2 = cornet
        .deploy_workflow(&vce_activate_workflow(&cornet.catalog))
        .unwrap();
    let r2 = cornet
        .dispatch(&w2, &plan.schedule, 8, |n| {
            inputs_for(&inv.record(n).name, "17.3", Some("16.9"))
        })
        .unwrap();
    println!(
        "pass 2 (activate/verify): {}/{} completed, {} fall-outs",
        r2.completed(),
        plan.schedule.scheduled_count(),
        r2.failures().len()
    );

    // Campaign summary: how many routers ended on the new image.
    let on_target = vces
        .iter()
        .filter(|&&v| {
            testbed
                .state(&inv.record(v).name)
                .map(|s| s.sw_version == "17.3")
                .unwrap_or(false)
        })
        .count();
    println!("\ncampaign result: {on_target}/{} vCEs on 17.3", vces.len());
    let redirected = vces
        .iter()
        .filter(|&&v| {
            testbed
                .state(&inv.record(v).name)
                .map(|s| s.traffic_redirected)
                .unwrap_or(false)
        })
        .count();
    println!("traffic still redirected (needs manual restore): {redirected}");
}
