//! Quickstart: design a change workflow from catalog building blocks,
//! validate it, package it as a WAR artifact, and execute it against a
//! simulated VNF — the smallest end-to-end CORNET loop.
//!
//! Run with: `cargo run --example quickstart`

use cornet::catalog::builtin_catalog;
use cornet::core::testbed_registry;
use cornet::netsim::{Testbed, TestbedConfig};
use cornet::orchestrator::{Engine, GlobalState};
use cornet::types::{NfType, ParamType, ParamValue};
use cornet::workflow::{validate, Designer, WarArtifact};

fn main() {
    // 1. The catalog: Table 2's nineteen building blocks.
    let catalog = builtin_catalog();
    println!("catalog: {} building blocks", catalog.len());
    for block in catalog.iter().take(4) {
        println!(
            "  {:22} nf_agnostic={} {}",
            block.name, block.nf_agnostic, block.function
        );
    }
    println!("  ...");

    // 2. Design Fig. 4's software-upgrade workflow by stitching blocks.
    let mut d = Designer::new(&catalog, "quickstart_upgrade");
    d.input("node", ParamType::String);
    d.input("software_version", ParamType::String);
    let start = d.start();
    let hc = d.task("health_check").expect("block exists");
    let healthy = d.decision("healthy");
    let up = d.task("software_upgrade").expect("block exists");
    let cmp = d.task("pre_post_comparison").expect("block exists");
    let passed = d.decision("passed");
    let rb = d.task("roll_back").expect("block exists");
    let done = d.end();
    let skipped = d.end();
    d.connect(start, hc)
        .connect(hc, healthy)
        .connect_if(healthy, up, true)
        .connect_if(healthy, skipped, false)
        .connect(up, cmp)
        .connect(cmp, passed)
        .connect_if(passed, done, true)
        .connect_if(passed, rb, false)
        .connect(rb, done);
    let wf = d.build();

    // 3. Verify: no zombie blocks, decisions wired, parameters flow.
    let report = validate(&wf, &catalog);
    println!("\nworkflow '{}' valid: {}", wf.name, report.is_valid());

    // 4. Package into a WAR artifact with a dynamically generated REST API.
    let war = WarArtifact::package(&wf, &catalog).expect("validated workflow packages");
    println!(
        "deployed at {} (digest {})",
        war.manifest.rest_api, war.manifest.digest
    );

    // 5. Execute against a simulated vCE router.
    let testbed = Testbed::new(TestbedConfig::default());
    testbed.instantiate("vce-0001", NfType::VceRouter, "16.9");
    let registry = testbed_registry(testbed.clone());
    let mut inputs = GlobalState::new();
    inputs.insert("node".into(), ParamValue::from("vce-0001"));
    inputs.insert("software_version".into(), ParamValue::from("17.3"));
    let mut engine = Engine::from_war(&war, registry, inputs).expect("war unpacks");
    let status = engine.run().expect("execution proceeds").clone();

    println!("\nexecution: {status:?}");
    for entry in engine.log() {
        println!(
            "  {:22} {:?} in {:?}",
            entry.block, entry.status, entry.duration
        );
    }
    let state = testbed.state("vce-0001").unwrap();
    println!(
        "\nvce-0001 is now on {} (reboots: {})",
        state.sw_version, state.reboots
    );
    assert_eq!(state.sw_version, "17.3");
}
