//! Impact verification on a staggered roll-out (§3.5, §5.2):
//!
//! * per-carrier KPI diversity and level-change detection (Fig. 2);
//! * a composed verification rule (scorecard KPIs with different
//!   expectations) over a staggered change scope;
//! * location-attribute aggregation that isolates a problem hardware
//!   version, enabling a targeted halt instead of a network-wide one.
//!
//! Run with: `cargo run --example impact_verification`

use cornet::netsim::{ImpactKind, InjectedImpact, KpiGenerator, Network, NetworkConfig};
use cornet::stats::detect_level_shifts;
use cornet::types::{NfType, NodeId};
use cornet::verifier::{
    verify_rule, ChangeScope, ClosureAdapter, ControlSelection, Expectation, KpiQuery,
    VerificationRule,
};

fn main() {
    let net = Network::generate_ran(&NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 2,
        usids_per_tac: 4,
        gnb_probability: 0.0,
        ..Default::default()
    });
    let enbs = net.nodes_of_type(NfType::ENodeB);
    let (study, rest) = enbs.split_at(12);
    let control: Vec<NodeId> = rest.to_vec();

    // Staggered roll-out: each node changed one maintenance window apart.
    let scope = ChangeScope {
        changes: study
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, 10_000 + i as u64 * 1_440))
            .collect(),
    };

    // Ground truth: throughput improves 15% everywhere; on HW-B it
    // degrades 25% instead; call drops improve (go down) everywhere; and
    // CF-1 takes a confined level drop like Fig. 2's day-28 event.
    let mut impacts = Vec::new();
    for (&n, &minute) in &scope.changes {
        let hw = net.inventory.group_key_of(n, "hw_version").unwrap();
        impacts.push(InjectedImpact {
            node: n,
            kpi: "dl_throughput".into(),
            carrier: None,
            at_minute: minute,
            kind: ImpactKind::LevelShift,
            magnitude: if hw == "HW-B" { -0.25 } else { 0.15 },
        });
        impacts.push(InjectedImpact {
            node: n,
            kpi: "voice_drop_rate".into(),
            carrier: None,
            at_minute: minute,
            kind: ImpactKind::LevelShift,
            magnitude: -0.2,
        });
        impacts.push(InjectedImpact {
            node: n,
            kpi: "dl_throughput_per_cf".into(),
            carrier: Some(0),
            at_minute: minute,
            kind: ImpactKind::LevelShift,
            magnitude: -0.3,
        });
    }

    let gen = KpiGenerator {
        seed: 21,
        noise: 0.02,
        ..Default::default()
    };
    let adapter = {
        let gen = gen.clone();
        let impacts = impacts.clone();
        ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
            Some(gen.series(node, kpi, carrier, 500, &impacts))
        })
    };

    // --- Fig. 2 flavor: per-carrier series and level-shift detection.
    println!("=== per-carrier KPI diversity (Fig. 2) ===");
    let node = study[0];
    for cf in 0..5 {
        let daily = gen
            .series(node, "dl_throughput_per_cf", Some(cf), 500, &impacts)
            .resample(24, cornet::stats::series::AggFn::Mean);
        let mean = daily.values.iter().sum::<f64>() / daily.values.len() as f64;
        let shifts = detect_level_shifts(&daily.values, 3, 5.0);
        print!("  CF-{}: mean {:7.1}", cf + 1, mean);
        match shifts.first() {
            Some(s) => println!(
                "  level change at day {} ({})",
                s.index,
                if s.is_upward() { "upward" } else { "downward" }
            ),
            None => println!("  no level change"),
        }
    }

    // --- composed verification rule over the staggered scope.
    let rule = VerificationRule {
        name: "sw-upgrade-scorecard".into(),
        kpis: vec![
            KpiQuery::expecting("dl_throughput", true, Expectation::Improve),
            KpiQuery::expecting("voice_drop_rate", false, Expectation::Improve),
        ],
        location_attributes: vec!["hw_version".into(), "market".into()],
        control: ControlSelection::Explicit(control),
        control_attr_filter: None,
        timescales: vec![1, 24],
        alpha: 0.01,
        min_relative_shift: 0.01,
    };
    let report = verify_rule(&adapter, &rule, &scope, &net.inventory, &net.topology)
        .expect("verification runs");

    println!("\n=== verification report: rule '{}' ===", report.rule);
    for kr in &report.kpis {
        println!(
            "  {:18} overall {:?} (p={:.2e}, shift {:+.1}%, t-scale {})  expected {:?} → {}",
            kr.query.kpi,
            kr.overall.verdict,
            kr.overall.p_value,
            kr.overall.relative_shift * 100.0,
            kr.overall.decisive_timescale,
            kr.query.expected,
            if kr.meets_expectation {
                "ok"
            } else {
                "VIOLATED"
            },
        );
        for lv in &kr.per_location {
            if let Ok(a) = &lv.analysis {
                println!(
                    "      {}={:8} {:?} (shift {:+.1}%)",
                    lv.attribute,
                    lv.value,
                    a.verdict,
                    a.relative_shift * 100.0
                );
            }
        }
    }
    println!("\ndecision: {:?}", report.decision);
    let problems = report.problem_locations();
    if !problems.is_empty() {
        println!("targeted halt candidates (rest of the network keeps rolling):");
        for (kpi, attr, value) in problems {
            println!("  halt {attr}={value} (KPI {kpi})");
        }
    }
    println!("verification time: {:?}", report.duration);
}
