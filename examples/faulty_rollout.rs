//! Resilient orchestration under injected faults: the same staggered
//! roll-out run twice — once through a 20% transient-fault storm that
//! retry policies absorb completely, and once against a permanent fault
//! that trips the circuit breaker, halts the remaining slots, and backs
//! out every in-flight failure. Both runs are reproducible bit-for-bit
//! from the fault-plan seed.
//!
//! Run with: `cargo run --release --example faulty_rollout`

use cornet::catalog::builtin_catalog;
use cornet::orchestrator::resilience::{CircuitBreaker, FaultPlan, FaultyExecutor, RetryPolicy};
use cornet::orchestrator::{
    BlockStatus, DispatchReport, Dispatcher, ExecutorRegistry, FalloutAnalysis, GlobalState,
};
use cornet::types::{NodeId, ParamValue, Schedule, Timeslot};
use cornet::workflow::builtin::software_upgrade_workflow;
use cornet::workflow::{Designer, WarArtifact};

const NODES: u32 = 50;
const SEED: u64 = 42;

fn happy_registry() -> ExecutorRegistry {
    let mut reg = ExecutorRegistry::new();
    reg.register("health_check", |s| {
        s.insert("healthy".into(), ParamValue::from(true));
        Ok(())
    });
    reg.register("software_upgrade", |s| {
        s.insert("previous_version".into(), ParamValue::from("19.3"));
        Ok(())
    });
    reg.register("pre_post_comparison", |s| {
        s.insert("passed".into(), ParamValue::from(true));
        Ok(())
    });
    reg.register("roll_back", |_| Ok(()));
    reg
}

fn schedule() -> Schedule {
    let mut s = Schedule::default();
    for i in 0..NODES {
        s.assignments.insert(NodeId(i), Timeslot(i / 10 + 1));
    }
    s
}

fn inputs(node: NodeId) -> GlobalState {
    let mut g = GlobalState::new();
    g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
    g.insert("software_version".into(), ParamValue::from("20.1"));
    g
}

fn summarize(report: &DispatchReport) {
    let (mut recovered, mut attempts) = (0usize, 0u32);
    for b in report.instances.iter().flat_map(|i| &i.blocks) {
        attempts += b.attempts;
        if matches!(b.status, BlockStatus::Recovered { .. }) {
            recovered += 1;
        }
    }
    println!(
        "  {} instances: {} completed, {} failed, {} rolled back",
        report.instances.len(),
        report.completed(),
        report.failures().len(),
        report.rolled_back(),
    );
    println!("  {recovered} blocks recovered via retry ({attempts} attempts total)");
}

fn main() {
    let cat = builtin_catalog();

    // --- Scenario 1: transient-fault storm, fully absorbed -------------
    // 20% of block invocations fail with §5.1's canonical transient fault
    // (connectivity loss) and every invocation costs 12ms of simulated
    // latency. Six retry attempts with exponential backoff make an
    // instance failure a 0.2^6 event.
    println!("=== 20% transient faults, 6-attempt retry policy ===");
    let war = WarArtifact::package(&software_upgrade_workflow(&cat), &cat).unwrap();
    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::transient(SEED, 0.20).with_latency_ms(12),
    );
    reg.set_default_retry_policy(RetryPolicy::with_attempts(6));
    let report = Dispatcher::new(war, reg, 4)
        .unwrap()
        .run(&schedule(), inputs)
        .unwrap();
    summarize(&report);

    // --- Scenario 2: permanent fault → breaker trip + backout ----------
    // Every software_upgrade invocation now fails permanently. The
    // circuit breaker watches running fall-out analysis and halts the
    // roll-out once a block's failure rate crosses 50%; each failed
    // instance executes the workflow's designated backout flow.
    println!("\n=== permanent fault on software_upgrade, breaker armed ===");
    let mut wf = software_upgrade_workflow(&cat);
    let mut d = Designer::new(&cat, "backout");
    let s = d.start();
    let rb = d.task("roll_back").unwrap();
    let e = d.end();
    d.connect(s, rb).connect(rb, e);
    wf.set_backout(d.build());
    let war = WarArtifact::package(&wf, &cat).unwrap();

    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::permanent_on(SEED, 1.0, "software_upgrade"),
    );
    reg.set_default_retry_policy(RetryPolicy::with_attempts(6));
    let breaker = CircuitBreaker {
        failure_threshold: 0.5,
        min_samples: 5,
    };
    let (report, trip) = Dispatcher::new(war, reg, 4)
        .unwrap()
        .run_with_breaker(&schedule(), inputs, &breaker)
        .unwrap();
    summarize(&report);
    match trip {
        Some(t) => println!(
            "  breaker tripped on '{}': {:.0}% failure rate over {} samples; {} nodes spared",
            t.block,
            t.failure_rate * 100.0,
            t.samples,
            NODES as usize - report.instances.len(),
        ),
        None => println!("  breaker never tripped"),
    }
    let fallout = FalloutAnalysis::from_reports([&report]);
    println!(
        "  fall-out analysis: completion {:.0}%, offenders: {:?}",
        fallout.completion_rate() * 100.0,
        fallout
            .offenders()
            .iter()
            .map(|(b, s)| format!("{b}×{}", s.failures))
            .collect::<Vec<_>>(),
    );
}
