//! 4G/5G RAN schedule planning at two scales:
//!
//! * a few hundred eNodeBs through the *generic* intent → MiniZinc-style
//!   model → CP solver pipeline (§3.3, §4.2), printing the model shape and
//!   an excerpt of the emitted MiniZinc;
//! * tens of thousands of nodes through the Appendix C custom heuristic,
//!   with consistency (co-sited 4G/5G together), timezone sequencing, and
//!   conflict avoidance.
//!
//! Run with: `cargo run --release --example ran_schedule_planning`

use cornet::netsim::{Network, NetworkConfig};
use cornet::planner::intent::ConflictPeriod;
use cornet::planner::{
    plan, translate, BackendChoice, HeuristicConfig, PlanIntent, PlanOptions, TranslateOptions,
};
use cornet::types::{NfType, NodeId};

const INTENT: &str = r#"{
    "scheduling_window": {"start": "2020-07-01 00:00:00",
                           "end": "2020-07-28 23:59:00",
                           "granularity": {"metric": "day", "value": 1}},
    "maintenance_window": {"start": "0:00", "end": "6:00"},
    "excluded_periods": [
        {"start": "2020-07-04 00:00:00", "end": "2020-07-05 23:59:00"}
    ],
    "schedulable_attribute": "common_id",
    "conflict_attribute": "common_id",
    "constraints": [
        {"name": "conflict_handling", "value": "zero-tolerance"},
        {"name": "concurrency", "base_attribute": "common_id",
         "aggregate_attribute": "ems", "operator": "<=",
         "granularity": {"metric": "day", "value": 1},
         "default_capacity": 12},
        {"name": "consistency", "attribute": "usid"},
        {"name": "uniformity", "attribute": "utc_offset", "value": 1}
    ]
}"#;

fn ran_nodes(net: &Network) -> Vec<NodeId> {
    let mut nodes = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    nodes.sort();
    nodes
}

fn main() {
    // ---------- generic pipeline on a few hundred nodes ----------
    let small = Network::generate_ran(&NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 3,
        usids_per_tac: 8,
        ..Default::default()
    });
    let nodes = ran_nodes(&small);
    println!("=== generic solver pipeline: {} RAN nodes ===", nodes.len());

    let intent = PlanIntent::from_json(INTENT).expect("intent parses");
    let translation = translate(
        &intent,
        &small.inventory,
        &small.topology,
        &nodes,
        &TranslateOptions::default(),
    )
    .expect("intent translates");
    let stats = translation.model.stats();
    println!(
        "model: {} vars (after consistency contraction from {} nodes), {} constraints {:?}",
        stats.vars,
        nodes.len(),
        stats.constraints,
        stats.by_kind
    );
    let mzn = translation.model.to_minizinc();
    println!("\nMiniZinc excerpt ({} lines total):", mzn.lines().count());
    for line in mzn.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");

    let options = PlanOptions {
        solver: cornet::solver::SolverConfig {
            time_limit: std::time::Duration::from_secs(5),
            ..Default::default()
        },
        ..Default::default()
    };
    let result =
        plan(&intent, &small.inventory, &small.topology, &nodes, &options).expect("plan found");
    println!(
        "\nschedule: {} nodes over {} slots (makespan), {:?} ({} search nodes, {:?})",
        result.schedule.scheduled_count(),
        result.makespan(),
        result.outcome,
        result.search_stats.nodes,
        result.discovery_time,
    );

    // Same intent through the racing portfolio: exact, greedy and the
    // heuristic compete; the winner is deterministic (best cost, fixed
    // tie-break order — never wall-clock).
    let portfolio = plan(
        &intent,
        &small.inventory,
        &small.topology,
        &nodes,
        &PlanOptions {
            backend: BackendChoice::Portfolio,
            ..options.clone()
        },
    )
    .expect("portfolio plan found");
    println!("\nportfolio race on the same intent:");
    for run in &portfolio.backend_runs {
        println!(
            "  {}{}: {:?}, cost {}, in {:?}",
            run.backend,
            if run.winner { " (winner)" } else { "" },
            run.outcome,
            run.cost.map_or_else(|| "-".into(), |c| c.to_string()),
            run.stats.elapsed,
        );
    }

    // ---------- Appendix C heuristic at 20K+ nodes, via plan() ----------
    let big = Network::generate_ran(&NetworkConfig::default().with_target_nodes(20_000));
    let big_nodes = ran_nodes(&big);
    println!(
        "\n=== Appendix C heuristic backend: {} RAN nodes ===",
        big_nodes.len()
    );

    // Busy periods for a slice of nodes (ticketed work elsewhere), fed
    // through the intent's conflict table like any production run.
    let mut big_intent = intent.clone();
    for &n in big_nodes.iter().step_by(37) {
        big_intent.conflict_table.insert(
            n.to_string(),
            vec![ConflictPeriod {
                start: "2020-07-02 00:00:00".into(),
                end: "2020-07-06 23:59:00".into(),
                tickets: vec![format!("CHG-{n}")],
            }],
        );
    }
    let big_result = plan(
        &big_intent,
        &big.inventory,
        &big.topology,
        &big_nodes,
        &PlanOptions {
            backend: BackendChoice::Heuristic,
            heuristic: HeuristicConfig {
                slot_capacity: 900,
                iterations: 6,
                seed: 4,
            },
            ..Default::default()
        },
    )
    .expect("heuristic plan found");
    let schedule = &big_result.schedule;
    println!(
        "heuristic: {} scheduled, {} leftovers, {} conflicts, makespan {:?}, wtct {}, in {:?}",
        schedule.scheduled_count(),
        schedule.leftovers.len(),
        schedule.conflicts,
        schedule.makespan().map(|s| s.0).unwrap_or(0),
        schedule.weighted_completion_time(),
        big_result.discovery_time,
    );

    // Per-slot load profile (first 10 slots).
    println!("\nper-slot load (first 10 slots):");
    for slot_idx in 0..10u32 {
        let slot = cornet::types::Timeslot(slot_idx + 1);
        let count = schedule.nodes_in_slot(slot).len();
        println!(
            "  slot {:2}: {:5} nodes  {}",
            slot.0,
            count,
            "#".repeat(count / 25)
        );
    }
}
