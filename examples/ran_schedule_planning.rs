//! 4G/5G RAN schedule planning at two scales:
//!
//! * a few hundred eNodeBs through the *generic* intent → MiniZinc-style
//!   model → CP solver pipeline (§3.3, §4.2), printing the model shape and
//!   an excerpt of the emitted MiniZinc;
//! * tens of thousands of nodes through the Appendix C custom heuristic,
//!   with consistency (co-sited 4G/5G together), timezone sequencing, and
//!   conflict avoidance.
//!
//! Run with: `cargo run --release --example ran_schedule_planning`

use cornet::netsim::{Network, NetworkConfig};
use cornet::planner::{
    heuristic_schedule, plan, translate, HeuristicConfig, PlanIntent, PlanOptions, TranslateOptions,
};
use cornet::types::{ConflictEntry, ConflictTable, NfType, NodeId, SimTime};
use std::time::Instant;

const INTENT: &str = r#"{
    "scheduling_window": {"start": "2020-07-01 00:00:00",
                           "end": "2020-07-28 23:59:00",
                           "granularity": {"metric": "day", "value": 1}},
    "maintenance_window": {"start": "0:00", "end": "6:00"},
    "excluded_periods": [
        {"start": "2020-07-04 00:00:00", "end": "2020-07-05 23:59:00"}
    ],
    "schedulable_attribute": "common_id",
    "conflict_attribute": "common_id",
    "constraints": [
        {"name": "conflict_handling", "value": "zero-tolerance"},
        {"name": "concurrency", "base_attribute": "common_id",
         "aggregate_attribute": "ems", "operator": "<=",
         "granularity": {"metric": "day", "value": 1},
         "default_capacity": 12},
        {"name": "consistency", "attribute": "usid"},
        {"name": "uniformity", "attribute": "utc_offset", "value": 1}
    ]
}"#;

fn ran_nodes(net: &Network) -> Vec<NodeId> {
    let mut nodes = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    nodes.sort();
    nodes
}

fn main() {
    // ---------- generic pipeline on a few hundred nodes ----------
    let small = Network::generate_ran(&NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 3,
        usids_per_tac: 8,
        ..Default::default()
    });
    let nodes = ran_nodes(&small);
    println!("=== generic solver pipeline: {} RAN nodes ===", nodes.len());

    let intent = PlanIntent::from_json(INTENT).expect("intent parses");
    let translation = translate(
        &intent,
        &small.inventory,
        &small.topology,
        &nodes,
        &TranslateOptions::default(),
    )
    .expect("intent translates");
    let stats = translation.model.stats();
    println!(
        "model: {} vars (after consistency contraction from {} nodes), {} constraints {:?}",
        stats.vars,
        nodes.len(),
        stats.constraints,
        stats.by_kind
    );
    let mzn = translation.model.to_minizinc();
    println!("\nMiniZinc excerpt ({} lines total):", mzn.lines().count());
    for line in mzn.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");

    let options = PlanOptions {
        solver: cornet::solver::SolverConfig {
            time_limit: std::time::Duration::from_secs(5),
            ..Default::default()
        },
        ..Default::default()
    };
    let result =
        plan(&intent, &small.inventory, &small.topology, &nodes, &options).expect("plan found");
    println!(
        "\nschedule: {} nodes over {} slots (makespan), {:?} ({} search nodes, {:?})",
        result.schedule.scheduled_count(),
        result.makespan(),
        result.outcome,
        result.search_stats.nodes,
        result.discovery_time,
    );

    // ---------- Appendix C heuristic at 20K+ nodes ----------
    let big = Network::generate_ran(&NetworkConfig::default().with_target_nodes(20_000));
    let big_nodes = ran_nodes(&big);
    println!(
        "\n=== Appendix C heuristic: {} RAN nodes ===",
        big_nodes.len()
    );

    // Busy periods for a random slice of nodes (ticketed work elsewhere).
    let mut conflicts = ConflictTable::new();
    for &n in big_nodes.iter().step_by(37) {
        conflicts.add(
            n,
            ConflictEntry {
                start: SimTime::from_ymd_hm(2020, 7, 2, 0, 0),
                end: SimTime::from_ymd_hm(2020, 7, 6, 23, 59),
                tickets: vec![format!("CHG-{n}")],
            },
        );
    }
    let window = intent.window().unwrap();
    let started = Instant::now();
    let schedule = heuristic_schedule(
        &big.inventory,
        &big_nodes,
        &conflicts,
        &window,
        &HeuristicConfig {
            slot_capacity: 900,
            iterations: 6,
            seed: 4,
        },
    );
    let elapsed = started.elapsed();
    println!(
        "heuristic: {} scheduled, {} leftovers, {} conflicts, makespan {:?}, wtct {}, in {elapsed:?}",
        schedule.scheduled_count(),
        schedule.leftovers.len(),
        schedule.conflicts,
        schedule.makespan().map(|s| s.0).unwrap_or(0),
        schedule.weighted_completion_time(),
    );

    // Per-slot load profile (first 10 slots).
    println!("\nper-slot load (first 10 slots):");
    for slot_idx in 0..10u32 {
        let slot = cornet::types::Timeslot(slot_idx + 1);
        let count = schedule.nodes_in_slot(slot).len();
        println!(
            "  slot {:2}: {:5} nodes  {}",
            slot.0,
            count,
            "#".repeat(count / 25)
        );
    }
}
