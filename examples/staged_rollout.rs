//! The complete §2.1 change-management flow in one run: FFA trial →
//! verification → certification → network-wide roll-out with in-flight
//! go/no-go gates — including the §2.2 scenario where the FFA looks clean
//! but the wider population degrades, forcing a mid-roll-out halt.
//!
//! Run with: `cargo run --release --example staged_rollout`

use cornet::core::{staged_rollout, testbed_registry, Cornet, RolloutOutcome, RolloutPlan};
use cornet::netsim::{
    ImpactKind, InjectedImpact, KpiGenerator, Network, NetworkConfig, Testbed, TestbedConfig,
};
use cornet::orchestrator::{FalloutAnalysis, GlobalState};
use cornet::types::{NfType, NodeId, ParamValue, Schedule, Timeslot};
use cornet::verifier::{ClosureAdapter, ControlSelection, Expectation, KpiQuery, VerificationRule};
use cornet::workflow::builtin::software_upgrade_workflow;

fn build_cornet() -> (Cornet, Vec<NodeId>, Testbed) {
    let net = Network::generate_ran(&NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 2,
        usids_per_tac: 5,
        gnb_probability: 0.0,
        ..Default::default()
    });
    let enbs = net.nodes_of_type(NfType::ENodeB);
    let testbed = Testbed::new(TestbedConfig::default());
    for &n in &enbs {
        let rec = net.inventory.record(n);
        testbed.instantiate(&rec.name, rec.nf_type, "19.3");
    }
    let cornet = Cornet::new(
        net.inventory.clone(),
        net.topology.clone(),
        testbed_registry(testbed.clone()),
    );
    (cornet, enbs, testbed)
}

fn schedules(enbs: &[NodeId]) -> (Schedule, Schedule) {
    let mut ffa = Schedule::default();
    for &n in &enbs[..3] {
        ffa.assignments.insert(n, Timeslot(1));
    }
    let mut network = Schedule::default();
    for (i, &n) in enbs[3..].iter().enumerate() {
        network.assignments.insert(n, Timeslot(i as u32 / 8 + 1));
    }
    (ffa, network)
}

fn run_scenario(name: &str, cornet: &Cornet, enbs: &[NodeId], magnitudes: Vec<(NodeId, f64)>) {
    println!("\n=== scenario: {name} ===");
    let impacts: Vec<InjectedImpact> = magnitudes
        .iter()
        .map(|&(n, magnitude)| InjectedImpact {
            node: n,
            kpi: "thr".into(),
            carrier: None,
            at_minute: 10_000,
            kind: ImpactKind::LevelShift,
            magnitude,
        })
        .collect();
    let gen = KpiGenerator {
        seed: 61,
        noise: 0.02,
        ..Default::default()
    };
    let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
        Some(gen.series(node, kpi, carrier, 500, &impacts))
    });
    let controls: Vec<NodeId> = cornet
        .inventory
        .iter()
        .filter(|r| r.nf_type == NfType::Siad)
        .map(|r| r.id)
        .collect();
    let rule = VerificationRule {
        name: "sw-20.1".into(),
        kpis: vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
        location_attributes: vec!["market".into()],
        control: ControlSelection::Explicit(controls),
        control_attr_filter: None,
        timescales: vec![1, 24],
        alpha: 0.01,
        min_relative_shift: 0.01,
    };
    let war = cornet
        .deploy_workflow(&software_upgrade_workflow(&cornet.catalog))
        .expect("workflow deploys");
    let (ffa, network) = schedules(enbs);
    let inv = cornet.inventory.clone();
    let report = staged_rollout(
        cornet,
        RolloutPlan {
            war: &war,
            ffa,
            network,
            rule: &rule,
            concurrency: 4,
            gate_every: 1,
            breaker: None,
        },
        &adapter,
        |_slot| 10_000,
        move |node| {
            let mut g = GlobalState::new();
            g.insert(
                "node".into(),
                ParamValue::from(inv.record(node).name.clone()),
            );
            g.insert("software_version".into(), ParamValue::from("20.1"));
            g
        },
    )
    .expect("roll-out runs");

    println!(
        "FFA: {} instances, decision {:?}",
        report.ffa.instances.len(),
        report.ffa_decision
    );
    println!(
        "network phase: {} instances executed, outcome {:?}",
        report.network.instances.len(),
        report.outcome
    );
    match report.outcome {
        RolloutOutcome::Completed => println!("→ whole network upgraded"),
        RolloutOutcome::Halted { after_slot } => println!(
            "→ halted after slot {after_slot}; {} nodes spared pending root-cause analysis",
            enbs.len() - 3 - report.network.instances.len()
        ),
        RolloutOutcome::NotCertified => println!("→ FFA not certified; network untouched"),
    }
    let fallout = FalloutAnalysis::from_reports([&report.ffa, &report.network]);
    println!(
        "fall-out analysis: {:.0}% completion, offenders: {:?}",
        fallout.completion_rate() * 100.0,
        fallout
            .offenders()
            .iter()
            .map(|(b, s)| format!("{b}×{}", s.failures))
            .collect::<Vec<_>>()
    );
}

fn main() {
    // Scenario 1: good change — improves everywhere, roll-out completes.
    let (cornet, enbs, testbed) = build_cornet();
    run_scenario(
        "clean improvement",
        &cornet,
        &enbs,
        enbs.iter().map(|&n| (n, 0.2)).collect(),
    );
    let upgraded = enbs
        .iter()
        .filter(|&&n| {
            testbed
                .state(&cornet.inventory.record(n).name)
                .unwrap()
                .sw_version
                == "20.1"
        })
        .count();
    println!("testbed check: {upgraded}/{} on 20.1", enbs.len());

    // Scenario 2: bad change — FFA itself degrades, never certified.
    let (cornet, enbs, testbed) = build_cornet();
    run_scenario(
        "regression caught at FFA",
        &cornet,
        &enbs,
        enbs.iter().map(|&n| (n, -0.3)).collect(),
    );
    let upgraded = enbs
        .iter()
        .filter(|&&n| {
            testbed
                .state(&cornet.inventory.record(n).name)
                .unwrap()
                .sw_version
                == "20.1"
        })
        .count();
    println!(
        "testbed check: only {upgraded}/{} touched (the FFA slice)",
        enbs.len()
    );

    // Scenario 3: the §2.2 trap — FFA nodes improve, the rest degrade.
    let (cornet, enbs, testbed) = build_cornet();
    run_scenario(
        "latent degradation halts mid-roll-out",
        &cornet,
        &enbs,
        enbs.iter()
            .enumerate()
            .map(|(i, &n)| (n, if i < 3 { 0.2 } else { -0.3 }))
            .collect(),
    );
    let upgraded = enbs
        .iter()
        .filter(|&&n| {
            testbed
                .state(&cornet.inventory.record(n).name)
                .unwrap()
                .sw_version
                == "20.1"
        })
        .count();
    println!(
        "testbed check: {upgraded}/{} upgraded before the halt",
        enbs.len()
    );
}
