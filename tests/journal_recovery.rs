//! Crash-recovery equivalence for the durable campaign journal: a resumed
//! campaign must be indistinguishable from one that never crashed.
//!
//! Three families of properties:
//!
//! 1. **Record-cut replay**: truncate a finished campaign's journal at
//!    *any* record boundary (simulating a kill at that point) and resume —
//!    the recovered `DispatchReport` equals the uninterrupted one exactly.
//! 2. **No re-execution**: resuming from a complete journal invokes zero
//!    executors; every outcome is replayed from disk.
//! 3. **Crash points**: the seeded `FaultyExecutor` kill-switch (mid-block
//!    and mid-append torn record) produces journals that resume to the
//!    same report as a run that never crashed.

use cornet::catalog::builtin_catalog;
use cornet::journal::{boundaries, CrashMode, FsyncPolicy, Journal};
use cornet::orchestrator::resilience::{FaultPlan, FaultyExecutor, RetryPolicy};
use cornet::orchestrator::{DispatchReport, Dispatcher, ExecutorRegistry, GlobalState};
use cornet::types::{NodeId, ParamValue, Schedule, Timeslot};
use cornet::workflow::builtin::software_upgrade_workflow;
use cornet::workflow::{Designer, WarArtifact};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const NODES: u32 = 12;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cornet-jrec-{name}-{}.jsonl", std::process::id()))
}

/// Happy-path registry whose every successful block execution bumps the
/// shared counter — the witness that replayed blocks never re-run.
fn counting_registry(executions: Arc<AtomicUsize>) -> ExecutorRegistry {
    let mut reg = ExecutorRegistry::new();
    let c = executions.clone();
    reg.register("health_check", move |s| {
        c.fetch_add(1, Ordering::SeqCst);
        s.insert("healthy".into(), ParamValue::from(true));
        Ok(())
    });
    let c = executions.clone();
    reg.register("software_upgrade", move |s| {
        c.fetch_add(1, Ordering::SeqCst);
        s.insert("previous_version".into(), ParamValue::from("19.3"));
        Ok(())
    });
    let c = executions.clone();
    reg.register("pre_post_comparison", move |s| {
        c.fetch_add(1, Ordering::SeqCst);
        s.insert("passed".into(), ParamValue::from(true));
        Ok(())
    });
    let c = executions;
    reg.register("roll_back", move |s| {
        c.fetch_add(1, Ordering::SeqCst);
        s.insert("rolled_back".into(), ParamValue::from(true));
        Ok(())
    });
    reg
}

fn schedule() -> Schedule {
    let mut s = Schedule::default();
    for i in 0..NODES {
        s.assignments.insert(NodeId(i), Timeslot(i / 4 + 1));
    }
    s
}

fn inputs(node: NodeId) -> GlobalState {
    let mut g = GlobalState::new();
    g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
    g.insert("software_version".into(), ParamValue::from("20.1"));
    g
}

/// Fig. 4 upgrade workflow with a roll_back backout, so crashed-and-
/// resumed campaigns also exercise backout replay.
fn war() -> WarArtifact {
    let cat = builtin_catalog();
    let mut wf = software_upgrade_workflow(&cat);
    let mut d = Designer::new(&cat, "backout");
    let s = d.start();
    let rb = d.task("roll_back").unwrap();
    let e = d.end();
    d.connect(s, rb).connect(rb, e);
    wf.set_backout(d.build());
    WarArtifact::package(&wf, &cat).unwrap()
}

fn dispatcher(reg: ExecutorRegistry) -> Dispatcher {
    let mut reg = reg;
    reg.set_default_retry_policy(RetryPolicy::with_attempts(3));
    Dispatcher::new(war(), reg, 1).unwrap()
}

/// Run the campaign to completion with a journal attached.
fn journaled_run(plan: &FaultPlan, path: &PathBuf) -> DispatchReport {
    let executions = Arc::new(AtomicUsize::new(0));
    let reg = FaultyExecutor::wrap(&counting_registry(executions), plan);
    let journal = Journal::create(path, FsyncPolicy::Always).unwrap();
    dispatcher(reg)
        .with_journal(journal, BTreeMap::new())
        .run(&schedule(), inputs)
        .unwrap()
}

/// Resume from `path` with a fresh executor stack, returning the report
/// and how many blocks actually (re-)executed.
fn resume(plan: &FaultPlan, path: &PathBuf) -> (DispatchReport, usize) {
    let executions = Arc::new(AtomicUsize::new(0));
    let reg = FaultyExecutor::wrap(&counting_registry(executions.clone()), plan);
    let (report, trip) = dispatcher(reg)
        .resume_from_journal(path, FsyncPolicy::Always, inputs, None)
        .unwrap();
    assert!(trip.is_none(), "no breaker was armed");
    (report, executions.load(Ordering::SeqCst))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill the campaign at an arbitrary record boundary: replaying the
    /// surviving prefix and re-executing the rest reproduces the clean
    /// run's report byte for byte, at any fault rate.
    #[test]
    fn resume_after_any_record_cut_reproduces_the_clean_report(
        seed in any::<u64>(),
        rate_millis in 0u32..500,
        cut_percent in 0u32..101,
    ) {
        let plan = FaultPlan::transient(seed, rate_millis as f64 / 1000.0).with_latency_ms(5);
        let clean_path = tmp("cut-clean");
        let clean = journaled_run(&plan, &clean_path);
        let bytes = std::fs::read(&clean_path).unwrap();
        let cuts = boundaries(&bytes);
        prop_assert!(!cuts.is_empty());
        // cuts[0] keeps only the campaign_opened record; the last cut is
        // the full journal.
        let cut = cuts[(cut_percent as usize * (cuts.len() - 1)) / 100];
        let cut_path = tmp("cut-truncated");
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let (resumed, _) = resume(&plan, &cut_path);
        std::fs::remove_file(&clean_path).ok();
        std::fs::remove_file(&cut_path).ok();
        prop_assert_eq!(clean, resumed);
    }
}

#[test]
fn resuming_a_complete_journal_executes_nothing() {
    let plan = FaultPlan::transient(7, 0.25).with_latency_ms(5);
    let path = tmp("complete");
    let clean = journaled_run(&plan, &path);
    let (resumed, executed) = resume(&plan, &path);
    std::fs::remove_file(&path).ok();
    assert_eq!(clean, resumed);
    assert_eq!(executed, 0, "every outcome must come from the journal");
}

/// Run the campaign with a deterministic kill armed at node 5's first
/// software_upgrade invocation, then resume with a crash-free stack.
fn crashed_then_resumed(mode: CrashMode) -> (DispatchReport, DispatchReport) {
    let plan = FaultPlan::transient(11, 0.2).with_latency_ms(5);
    let clean_path = tmp("crash-clean");
    let clean = journaled_run(&plan, &clean_path);
    std::fs::remove_file(&clean_path).ok();

    let crash_plan =
        plan.clone()
            .crash_at("software_upgrade", &format!("enb-{}", NodeId(5)), 1, mode);
    let crash_path = tmp("crash-journal");
    let journal = Journal::create(&crash_path, FsyncPolicy::Always).unwrap();
    let switch = journal.crash_switch();
    let executions = Arc::new(AtomicUsize::new(0));
    let reg = FaultyExecutor::wrap_with_crash(
        &counting_registry(executions),
        &crash_plan,
        switch.clone(),
    );
    // The simulated process keeps running after the kill, but its journal
    // is frozen — everything after this run sees only the surviving prefix.
    let _ = dispatcher(reg)
        .with_journal(journal, BTreeMap::new())
        .run(&schedule(), inputs)
        .unwrap();
    assert!(switch.is_dead(), "the armed crash point must fire");

    let (resumed, _) = resume(&plan, &crash_path);
    std::fs::remove_file(&crash_path).ok();
    (clean, resumed)
}

#[test]
fn mid_block_crash_resumes_to_the_clean_report() {
    let (clean, resumed) = crashed_then_resumed(CrashMode::MidBlock);
    assert_eq!(clean, resumed);
}

#[test]
fn torn_record_crash_resumes_to_the_clean_report() {
    // MidAppend half-writes the next record before dying; recovery must
    // truncate the torn tail and replay the intact prefix.
    let (clean, resumed) = crashed_then_resumed(CrashMode::MidAppend);
    assert_eq!(clean, resumed);
}
