//! Multi-campaign crash recovery (the daemon's bread and butter): K
//! campaigns run **interleaved** — concurrently, one journal each, the
//! way `cornetd` hosts them — then the "process" dies. Some journals are
//! left complete, some are cut at a record boundary, some carry a torn
//! half-written tail. Recovering every journal must reproduce each
//! campaign's exact outcome fingerprint, and no block whose completion
//! survived in a journal may execute a second time.
//!
//! Uses the shared [`JournalScenario`] (the same campaign shape `cornet
//! run --journal` and `cornetd` execute) with a zero fault rate so the
//! executor-invocation count is exact: every one of the `nodes × 3`
//! blocks runs exactly once across the original run and the recovery,
//! no matter where the cut landed.

use cornet::daemon::{report_fingerprint, ExecutionWitness, JournalScenario};
use cornet::journal::{boundaries, FsyncPolicy, Journal, JournalEvent};
use cornet::orchestrator::{recover_campaign, Dispatcher};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BLOCKS_PER_INSTANCE: usize = 3; // health_check, software_upgrade, pre_post_comparison

fn tmp(tag: &str, i: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cornet-drec-{tag}-{i}-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id(),
    ))
}

fn scenario(i: usize, seed: u64, nodes: u32) -> JournalScenario {
    JournalScenario {
        seed: seed.wrapping_add(i as u64),
        nodes,
        fault_rate_milli: 0, // exact invocation accounting
        latency_ms: 1,       // simulated durations → deterministic fingerprints
        ..JournalScenario::default()
    }
}

/// Run one campaign to completion with a journal attached, counting
/// executor invocations, and return its outcome fingerprint.
fn run_journaled(s: &JournalScenario, path: &PathBuf, witness: ExecutionWitness) -> u64 {
    let journal = Journal::create(path, FsyncPolicy::Always).unwrap();
    let reg = s.registry(None, Some(witness));
    let (report, trip) = Dispatcher::new(s.war().unwrap(), reg, s.concurrency)
        .unwrap()
        .with_journal(journal, s.meta())
        .run_with_breaker(&s.schedule(), JournalScenario::inputs, &s.breaker())
        .unwrap();
    assert!(trip.is_none(), "fault-free campaign never trips");
    report_fingerprint(&report)
}

/// Recover a (possibly cut, possibly torn) journal exactly as `cornetd`
/// does on restart: rebuild the scenario from the journal's own
/// metadata, then resume. Returns the finished campaign's fingerprint
/// and how many blocks actually executed during recovery.
fn recover_one(path: &PathBuf) -> (u64, usize) {
    let campaign = Journal::read(path)
        .and_then(|(events, recovery)| recover_campaign(&events, recovery))
        .unwrap();
    let s = JournalScenario::from_meta(&campaign.meta).unwrap();
    let witness: ExecutionWitness = Arc::new(AtomicUsize::new(0));
    let reg = s.registry(None, Some(witness.clone()));
    let (report, _trip) = Dispatcher::new(s.war().unwrap(), reg, s.concurrency)
        .unwrap()
        .resume_from_journal(path, FsyncPolicy::Always, JournalScenario::inputs, None)
        .unwrap();
    (report_fingerprint(&report), witness.load(Ordering::SeqCst))
}

/// How many block completions survive in the journal file at `path`
/// (tolerating a torn tail, like recovery itself).
fn surviving_blocks(path: &PathBuf) -> usize {
    let (events, _recovery) = Journal::read(path).unwrap();
    events
        .iter()
        .filter(|e| matches!(e, JournalEvent::BlockCompleted(_)))
        .count()
}

/// What the driver leaves behind for one campaign's journal.
#[derive(Clone, Copy, Debug)]
enum Damage {
    /// The campaign finished; its journal is intact.
    Complete,
    /// Killed at a record boundary `percent` of the way through.
    Cut { percent: u32 },
    /// Killed mid-`write(2)`: cut at a boundary, then a torn partial
    /// record after it.
    Torn { percent: u32 },
}

fn apply_damage(path: &PathBuf, damage: Damage) {
    let bytes = std::fs::read(path).unwrap();
    let cuts = boundaries(&bytes);
    assert!(!cuts.is_empty());
    let keep = |percent: u32| cuts[(percent as usize * (cuts.len() - 1)) / 100];
    match damage {
        Damage::Complete => {}
        Damage::Cut { percent } => std::fs::write(path, &bytes[..keep(percent)]).unwrap(),
        Damage::Torn { percent } => {
            let mut kept = bytes[..keep(percent)].to_vec();
            kept.extend_from_slice(b"{\"ev\":\"block_completed\",\"node\":9");
            std::fs::write(path, kept).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K campaigns run interleaved, the process dies, and every journal —
    /// complete, cut, or torn — recovers to the uninterrupted outcome
    /// with zero re-executed blocks.
    #[test]
    fn interleaved_journals_recover_exactly_with_zero_reexecution(
        seed in any::<u64>(),
        nodes in 4u32..9,
        cut_percent in 0u32..101,
        torn_percent in 0u32..101,
    ) {
        // One always-complete, one always-torn, two randomly cut — "some
        // complete, some torn" holds in every generated case.
        let damages = [
            Damage::Complete,
            Damage::Torn { percent: torn_percent },
            Damage::Cut { percent: cut_percent },
            Damage::Cut { percent: 100 - cut_percent },
        ];
        let paths: Vec<PathBuf> = (0..damages.len()).map(|i| tmp("mix", i)).collect();

        // Phase 1: all K campaigns execute concurrently, each appending
        // to its own journal — the interleaving cornetd produces.
        let runs: Vec<_> = damages
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let s = scenario(i, seed, nodes);
                let path = paths[i].clone();
                let witness: ExecutionWitness = Arc::new(AtomicUsize::new(0));
                let w = witness.clone();
                (
                    std::thread::spawn(move || run_journaled(&s, &path, w)),
                    witness,
                )
            })
            .collect();
        let mut clean_fingerprints = Vec::new();
        let mut executed = Vec::new();
        for (handle, witness) in runs {
            clean_fingerprints.push(handle.join().unwrap());
            executed.push(witness.load(Ordering::SeqCst));
        }
        let total_blocks = nodes as usize * BLOCKS_PER_INSTANCE;
        for &count in &executed {
            prop_assert_eq!(count, total_blocks);
        }

        // Phase 2: the "kill" — damage the journals as configured.
        for (path, &damage) in paths.iter().zip(&damages) {
            apply_damage(path, damage);
        }

        // Phase 3: recover every campaign; outcomes must match the clean
        // runs exactly, and only never-journaled blocks may execute.
        for (i, path) in paths.iter().enumerate() {
            let survived = surviving_blocks(path);
            let (fingerprint, reexecuted) = recover_one(path);
            prop_assert_eq!(
                fingerprint,
                clean_fingerprints[i],
                "campaign {} ({:?}) diverged after recovery",
                i,
                damages[i]
            );
            prop_assert_eq!(
                reexecuted,
                total_blocks - survived,
                "campaign {} ({:?}) re-executed journaled blocks",
                i,
                damages[i]
            );
            std::fs::remove_file(path).ok();
        }
    }
}

/// The degenerate-but-critical case: every journal complete. Recovery is
/// pure replay — zero executor invocations across all campaigns.
#[test]
fn complete_journals_replay_without_any_execution() {
    let paths: Vec<PathBuf> = (0..3).map(|i| tmp("replay", i)).collect();
    let mut clean = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let s = scenario(i, 7, 6);
        clean.push(run_journaled(&s, path, Arc::new(AtomicUsize::new(0))));
    }
    for (i, path) in paths.iter().enumerate() {
        let (fingerprint, reexecuted) = recover_one(path);
        assert_eq!(fingerprint, clean[i]);
        assert_eq!(reexecuted, 0, "replay must not re-execute anything");
        std::fs::remove_file(path).ok();
    }
}
