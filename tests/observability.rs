//! End-to-end observability tests (ISSUE 4 acceptance).
//!
//! * `run_trace_round_trips_through_chrome_format` drives the real
//!   `cornet run` binary (the faulty-rollout demo: transient-fault storm
//!   absorbed by retries, then a permanent fault tripping the breaker
//!   into backout flows) with `--trace`, then parses the emitted
//!   Chrome-trace JSON back and walks the span tree: dispatch → slot →
//!   instance → block nesting, retry attributes, breaker attributes.
//! * `chrome_trace_export_is_byte_stable` pins a small rollout's export
//!   against the checked-in golden file `tests/golden/small_rollout.trace.json`
//!   (regenerate with `UPDATE_GOLDEN=1 cargo test --test observability`).

use cornet::catalog::builtin_catalog;
use cornet::obs::{ChromeTraceSink, ManualClock, TraceSink, Tracer};
use cornet::orchestrator::resilience::RetryPolicy;
use cornet::orchestrator::{Dispatcher, ExecutorRegistry};
use cornet::planner::json::{parse, JsonValue};
use cornet::types::{NodeId, ParamValue, Schedule, Timeslot};
use cornet::workflow::builtin::software_upgrade_workflow;
use cornet::workflow::WarArtifact;
use std::collections::BTreeMap;
use std::process::Command;

/// A span attribute from a Chrome-trace event's `args` object.
fn arg<'a>(event: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    event.get("args").and_then(|a| a.get(key))
}

fn arg_id(event: &JsonValue, key: &str) -> Option<i64> {
    arg(event, key).and_then(|v| v.as_f64()).map(|v| v as i64)
}

fn name_of(event: &JsonValue) -> &str {
    event.get("name").and_then(|v| v.as_str()).unwrap_or("")
}

#[test]
fn run_trace_round_trips_through_chrome_format() {
    let trace_path = std::env::temp_dir().join(format!(
        "cornet_obs_roundtrip_{}.trace.json",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_cornet"))
        .args([
            "run",
            "--nodes",
            "16",
            "--concurrency",
            "4",
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("cornet run executes");
    assert!(
        output.status.success(),
        "cornet run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("trace summary"),
        "summary printed: {stdout}"
    );
    assert!(stdout.contains("breaker tripped"), "demo trips the breaker");

    let body = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    let doc = parse(&body).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event is a complete ("X") event with a span id; index them.
    let mut by_id: BTreeMap<i64, &JsonValue> = BTreeMap::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
        let id = arg_id(ev, "span_id").expect("span_id in args");
        assert!(by_id.insert(id, ev).is_none(), "span ids are unique");
    }
    let named = |n: &str| {
        events
            .iter()
            .filter(|ev| name_of(ev) == n)
            .collect::<Vec<_>>()
    };

    // The demo runs two campaigns: plain dispatch, then breaker-armed.
    let dispatches = named("dispatch");
    assert_eq!(dispatches.len(), 2, "two campaigns in the demo");

    // Nesting: every instance parents a slot, every slot a dispatch, and
    // every block an instance.
    let instances = named("instance");
    assert!(instances.len() >= 16, "first campaign alone has 16 nodes");
    for inst in &instances {
        let slot = by_id[&arg_id(inst, "parent_id").expect("instance has parent")];
        assert_eq!(name_of(slot), "slot");
        let dispatch = by_id[&arg_id(slot, "parent_id").expect("slot has parent")];
        assert_eq!(name_of(dispatch), "dispatch");
    }
    // Blocks nest under their instance — directly on the forward path,
    // via a `backout` span (itself under the instance) on the revert path.
    let blocks = named("block");
    assert!(!blocks.is_empty());
    for block in &blocks {
        let parent = by_id[&arg_id(block, "parent_id").expect("block has parent")];
        match name_of(parent) {
            "instance" => {}
            "backout" => {
                let inst = by_id[&arg_id(parent, "parent_id").expect("backout has parent")];
                assert_eq!(name_of(inst), "instance");
            }
            other => panic!("block parented under unexpected span kind {other:?}"),
        }
    }

    // Retry attributes: the 20% transient-fault storm recovers blocks
    // via retry, which the spans record as status + attempt counts.
    assert!(
        blocks.iter().any(|b| {
            arg(b, "status").and_then(|v| v.as_str()) == Some("recovered")
                && arg(b, "attempts").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 2.0
        }),
        "at least one block recovered after a retry"
    );
    assert!(
        instances
            .iter()
            .any(|i| arg(i, "retries").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0),
        "instance spans aggregate retry counts"
    );

    // Breaker attributes: the second campaign's permanent fault trips the
    // breaker on software_upgrade and rolls instances back through the
    // backout flow.
    let tripped: Vec<_> = dispatches
        .iter()
        .filter(|d| arg(d, "breaker_tripped").map(|v| v == &JsonValue::Bool(true)) == Some(true))
        .collect();
    assert_eq!(tripped.len(), 1, "exactly one campaign trips the breaker");
    assert_eq!(
        arg(tripped[0], "trip_block").and_then(|v| v.as_str()),
        Some("software_upgrade")
    );
    assert!(arg(tripped[0], "trip_failure_rate")
        .and_then(|v| v.as_f64())
        .is_some_and(|r| r >= 0.5));
    assert!(
        instances
            .iter()
            .any(|i| arg(i, "status").and_then(|v| v.as_str()) == Some("rolled_back")),
        "breaker campaign rolls instances back"
    );
    assert!(
        blocks
            .iter()
            .any(|b| arg(b, "backout").map(|v| v == &JsonValue::Bool(true)) == Some(true)),
        "backout-flow blocks are tagged"
    );

    // Counters rode along in otherData.
    let counters = doc
        .get("otherData")
        .and_then(|o| o.get("counters"))
        .expect("counters object");
    assert!(counters
        .get("instances.completed")
        .and_then(|v| v.as_f64())
        .is_some_and(|n| n >= 16.0));
}

/// Observability parity for crash recovery (ISSUE 8 satellite): `cornet
/// resume --trace` must emit the same span families a journaled run
/// does — dispatch/slot/instance/block nesting *plus* the journal's own
/// append/fsync spans and byte counters — and still converge on the
/// uninterrupted campaign's fingerprint.
#[test]
fn resume_trace_has_journal_observability() {
    let dir = std::env::temp_dir();
    let journal = dir.join(format!("cornet_obs_resume_{}.jsonl", std::process::id()));
    let trace_path = dir.join(format!(
        "cornet_obs_resume_{}.trace.json",
        std::process::id()
    ));
    let cornet = env!("CARGO_BIN_EXE_cornet");

    // Reference: the same campaign run uninterrupted.
    let clean_journal = dir.join(format!(
        "cornet_obs_resume_clean_{}.jsonl",
        std::process::id()
    ));
    let clean = Command::new(cornet)
        .args(["run", "--journal", clean_journal.to_str().unwrap()])
        .output()
        .expect("clean journaled run executes");
    assert!(clean.status.success());
    let clean_stdout = String::from_utf8_lossy(&clean.stdout);
    let fingerprint_of = |s: &str| {
        s.lines()
            .find_map(|l| l.split("fingerprint=").nth(1))
            .map(str::to_string)
            .expect("summary line carries a fingerprint")
    };
    let clean_fingerprint = fingerprint_of(&clean_stdout);
    let _ = std::fs::remove_file(&clean_journal);

    // Crash mid-campaign, then resume with --trace.
    let crashed = Command::new(cornet)
        .args([
            "run",
            "--journal",
            journal.to_str().unwrap(),
            "--crash-at",
            "9",
        ])
        .output()
        .expect("crashing journaled run executes");
    assert!(crashed.status.success());
    assert!(String::from_utf8_lossy(&crashed.stdout).contains("simulated crash"));
    let resumed = Command::new(cornet)
        .args([
            "resume",
            journal.to_str().unwrap(),
            "--trace",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("cornet resume executes");
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("trace summary"),
        "summary printed: {stdout}"
    );
    assert_eq!(
        fingerprint_of(&stdout),
        clean_fingerprint,
        "recovery must converge on the uninterrupted outcome"
    );
    let _ = std::fs::remove_file(&journal);

    let body = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    let doc = parse(&body).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let count = |n: &str| events.iter().filter(|ev| name_of(ev) == n).count();

    // Execution spans: the resumed half of the campaign still traces.
    assert_eq!(count("dispatch"), 1);
    assert!(count("instance") >= 1);
    assert!(count("block") >= 1);
    // Journal spans: every append the resume made is visible, including
    // the campaign_resumed record itself.
    assert!(count("journal.append") >= 1, "journal appends are traced");
    assert!(
        events.iter().any(|ev| name_of(ev) == "journal.append"
            && arg(ev, "event").and_then(|v| v.as_str()) == Some("campaign_resumed")),
        "the resume marker append is traced"
    );
    let counters = doc
        .get("otherData")
        .and_then(|o| o.get("counters"))
        .expect("counters object");
    assert!(counters
        .get("journal.bytes_written")
        .and_then(|v| v.as_f64())
        .is_some_and(|n| n > 0.0));
    assert!(counters
        .get("blocks.recovered")
        .and_then(|v| v.as_f64())
        .is_some_and(|n| n >= 1.0));
}

/// A deterministic three-node rollout: single worker, self-ticking manual
/// clock, one scripted transient failure recovered by retry.
fn small_rollout_trace() -> String {
    let cat = builtin_catalog();
    let war = WarArtifact::package(&software_upgrade_workflow(&cat), &cat).unwrap();
    let mut reg = ExecutorRegistry::new();
    reg.register("health_check", |s| {
        s.insert("healthy".into(), ParamValue::from(true));
        Ok(())
    });
    let failed_once = std::sync::atomic::AtomicBool::new(false);
    reg.register("software_upgrade", move |s| {
        let node = s.get("node").and_then(|v| v.as_str()).unwrap_or("");
        if node == "enb-1" && !failed_once.swap(true, std::sync::atomic::Ordering::SeqCst) {
            return Err(cornet::types::CornetError::TransientFailure(
                "scripted blip".into(),
            ));
        }
        s.insert("previous_version".into(), ParamValue::from("19.3"));
        Ok(())
    });
    reg.register("pre_post_comparison", |s| {
        s.insert("passed".into(), ParamValue::from(true));
        Ok(())
    });
    reg.set_retry_policy("software_upgrade", RetryPolicy::with_attempts(2));

    let mut schedule = Schedule::default();
    schedule.assignments.insert(NodeId(0), Timeslot(1));
    schedule.assignments.insert(NodeId(1), Timeslot(1));
    schedule.assignments.insert(NodeId(2), Timeslot(2));

    let tracer = Tracer::with_clock(ManualClock::ticking(1_000));
    let dispatcher = Dispatcher::new(war, reg, 1)
        .unwrap()
        .with_tracer(tracer.clone());
    let report = dispatcher
        .run(&schedule, |node| {
            let mut g = cornet::orchestrator::GlobalState::new();
            g.insert("node".into(), ParamValue::from(format!("enb-{}", node.0)));
            g.insert("software_version".into(), ParamValue::from("20.1"));
            g
        })
        .unwrap();
    assert_eq!(report.completed(), 3);
    ChromeTraceSink.render(&tracer.snapshot())
}

#[test]
fn chrome_trace_export_is_byte_stable() {
    let golden_path = format!(
        "{}/tests/golden/small_rollout.trace.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let rendered = small_rollout_trace();

    // The export is deterministic run-to-run (single worker + manual
    // clock), so the golden comparison pins bytes, not just structure.
    let second = small_rollout_trace();
    if rendered != second {
        for (a, b) in rendered.lines().zip(second.lines()) {
            if a != b {
                eprintln!("-{a}\n+{b}");
            }
        }
    }
    assert_eq!(rendered, second);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("golden file written");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file present (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        rendered, golden,
        "Chrome-trace export changed; regenerate the golden file with \
         UPDATE_GOLDEN=1 cargo test --test observability if intentional"
    );

    // The golden trace itself carries the retry the registry scripted.
    let doc = parse(&golden).expect("golden parses");
    let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
    assert!(events.iter().any(|ev| {
        ev.get("name").and_then(|v| v.as_str()) == Some("block")
            && arg(ev, "status").and_then(|v| v.as_str()) == Some("recovered")
    }));
}
