//! The §2.3 evolution hazard, reproduced end to end:
//!
//! "Key performance indicators need to be updated whenever there is a
//! change in the underlying counters across software releases (e.g., new
//! failure cause code for voice calls introduced with the new software
//! version). If the new cause codes are not accounted for during the
//! network change roll-out, then any degradations caused by the new codes
//! would not be captured in the pre/post-impact comparisons."
//!
//! We synthesize cause-code counters where a software upgrade both shifts
//! failures to a *new* cause code and increases them. A verifier armed
//! with the stale KPI equation sees an improvement; the updated equation
//! (Fig. 6's "KPIs created or modified") reveals the degradation.

use cornet::stats::TimeSeries;
use cornet::types::NodeId;
use cornet::verifier::{
    analyze_kpi, AnalysisOptions, ChangeScope, ClosureAdapter, Equation, ImpactVerdict,
};
use std::collections::BTreeMap;

const CHANGE_MINUTE: u64 = 6_000;
const SAMPLES: usize = 200;
const STEP: u64 = 60;

/// Deterministic wiggle so the rank test has realistic variation.
fn wiggle(k: u64, node: NodeId, salt: u64) -> f64 {
    (((k * 2654435761 + node.0 as u64 * 97 + salt * 13) % 100) as f64 / 100.0 - 0.5) * 2.0
}

/// Synthesize one counter stream for a node.
///
/// * `attempts` — flat at ~1000;
/// * `drop_radio`, `drop_handover` — the legacy cause codes: ~10 each
///   before the change; after the change on study nodes they *improve*
///   (drop to ~6) because the new software reclassifies those failures …
/// * `drop_timer_new` — the new cause code: zero before the change,
///   ~25 after it on study nodes (a real regression hiding under a new
///   label).
fn counter_series(node: NodeId, counter: &str, is_study: bool) -> TimeSeries {
    let values: Vec<f64> = (0..SAMPLES as u64)
        .map(|k| {
            let minute = k * STEP;
            let post = is_study && minute >= CHANGE_MINUTE;
            match counter {
                "attempts" => 1000.0 + wiggle(k, node, 1) * 20.0,
                "drop_radio" | "drop_handover" => {
                    let base = if post { 6.0 } else { 10.0 };
                    (base + wiggle(k, node, 2)).max(0.0)
                }
                "drop_timer_new" => {
                    if post {
                        (25.0 + wiggle(k, node, 3) * 2.0).max(0.0)
                    } else {
                        0.0
                    }
                }
                _ => f64::NAN,
            }
        })
        .collect();
    TimeSeries::new(0, STEP, values)
}

/// Adapter that evaluates a KPI *equation* over the counter feeds — the
/// §3.5.1 pipeline where data adapters + KPI equations produce the series
/// the statistics consume.
fn equation_adapter(equation: Equation) -> impl cornet::verifier::DataAdapter {
    ClosureAdapter(move |node: NodeId, _kpi: &str, _carrier: Option<usize>| {
        let is_study = node.0 < 100;
        let counters: BTreeMap<String, TimeSeries> = equation
            .counters()
            .iter()
            .map(|c| (c.to_string(), counter_series(node, c, is_study)))
            .collect();
        equation.evaluate(&counters).ok()
    })
}

fn scope() -> ChangeScope {
    ChangeScope::simultaneous(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], CHANGE_MINUTE)
}

fn controls() -> Vec<NodeId> {
    (100..108).map(NodeId).collect()
}

/// Drop rate is downward-good: fewer drops per attempt is better.
fn analyze(equation_src: &str) -> ImpactVerdict {
    let eq = Equation::parse(equation_src).expect("equation parses");
    let adapter = equation_adapter(eq);
    analyze_kpi(
        &adapter,
        "voice_drop_rate",
        None,
        false, // upward_good = false
        &scope(),
        &controls(),
        &AnalysisOptions::default(),
    )
    .expect("analysis runs")
    .verdict
}

#[test]
fn stale_equation_misses_the_regression() {
    // The 19.x-era equation: only the legacy cause codes. After the
    // upgrade those *fall* (reclassified), so the stale KPI reports an
    // improvement — exactly the blind spot the paper warns about.
    let verdict = analyze("100 * (drop_radio + drop_handover) / attempts");
    assert_eq!(
        verdict,
        ImpactVerdict::Improvement,
        "stale equation sees only the good news"
    );
}

#[test]
fn updated_equation_catches_the_regression() {
    // The 20.x-era equation adds the new cause code: total drops went from
    // ~20 to ~37 per 1000 — a degradation the verifier must flag.
    let verdict = analyze("100 * (drop_radio + drop_handover + drop_timer_new) / attempts");
    assert_eq!(
        verdict,
        ImpactVerdict::Degradation,
        "updated equation reveals the regression"
    );
}

#[test]
fn new_cause_code_alone_localizes_the_regression() {
    // Slicing the KPI to just the new code attributes the entire shift —
    // the diagnostic step after the updated scorecard flags the roll-out.
    // A born-zero KPI cannot be ratio-normalized (its pre-change median is
    // zero), so the diagnostic form adds a +1 smoothing term — the same
    // trick the Table 5 equations use (`max(ctr_den, 1)`).
    let verdict = analyze("100 * (1 + drop_timer_new) / attempts");
    assert_eq!(verdict, ImpactVerdict::Degradation);
}

#[test]
fn born_zero_kpi_fails_loudly_not_silently() {
    // Without smoothing, the analytics must refuse (zero pre-change
    // baseline) rather than fabricate a verdict.
    let eq = Equation::parse("100 * drop_timer_new / attempts").unwrap();
    let adapter = equation_adapter(eq);
    let err = analyze_kpi(
        &adapter,
        "voice_drop_rate",
        None,
        false,
        &scope(),
        &controls(),
        &AnalysisOptions::default(),
    );
    assert!(
        err.is_err(),
        "zero-baseline KPI must be a data-integrity error"
    );
}
