//! End-to-end `cornetd` service test (ISSUE 8 acceptance): a real daemon
//! process, two tenants, real HTTP — through submission (including a
//! gate-refused bundle), per-tenant quota enforcement under a saturated
//! pool, a mid-campaign SIGKILL, and a restart that resumes every
//! interrupted campaign to the exact uninterrupted outcome with zero
//! re-executed blocks.
//!
//! The reference outcomes come from phase A: the same two campaigns run
//! on a daemon that is never killed (and is shut down cleanly via
//! `POST /v1/shutdown`). Phase B reruns them, SIGKILLs the daemon while
//! both are mid-flight, and verifies recovery against phase A.

use cornet::daemon::DaemonClient;
use cornet::journal::{Journal, JournalEvent};
use cornet::planner::json::{parse, JsonValue};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODES: u32 = 160;
const BLOCKS_PER_INSTANCE: u32 = 3;
const TOTAL_BLOCKS: u32 = NODES * BLOCKS_PER_INSTANCE;
const POOL: u32 = 4;
const TENANT_QUOTA: u32 = 2;

/// A zero-fault campaign big enough that a SIGKILL lands mid-flight
/// (every append fsyncs under `--fsync always`, so the run takes real
/// wall-clock time even though block latency is simulated).
fn spec() -> String {
    format!(
        "{{\"name\":\"e2e\",\"scenario\":{{\"nodes\":{NODES},\"latency_ms\":1,\
         \"fault_rate_milli\":0}}}}"
    )
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(state_dir: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cornetd"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--state-dir",
                state_dir.to_str().unwrap(),
                "--fsync",
                "always",
                "--pool",
                &POOL.to_string(),
                "--default-quota",
                &TENANT_QUOTA.to_string(),
                "--max-campaigns",
                "4",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("cornetd starts");
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).expect("cornetd announces");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("listen line has an address")
            .to_string();
        assert!(addr.contains(':'), "unexpected announce line: {line:?}");
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
        });
        Daemon { child, addr }
    }

    fn client(&self, tenant: &str) -> DaemonClient {
        DaemonClient::new(self.addr.clone(), tenant)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cornet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(client: &DaemonClient, body: &str) -> String {
    let resp = client.post("/v1/campaigns", body).expect("submit succeeds");
    assert_eq!(resp.status, 201, "submit accepted: {}", resp.body);
    parse(&resp.body)
        .ok()
        .and_then(|v| v.get("id").and_then(|id| id.as_str()).map(str::to_string))
        .expect("submit response carries an id")
}

fn snapshot(client: &DaemonClient, id: &str) -> JsonValue {
    let resp = client
        .get(&format!("/v1/campaigns/{id}"))
        .expect("status succeeds");
    assert_eq!(resp.status, 200, "campaign visible: {}", resp.body);
    parse(&resp.body).expect("snapshot is valid JSON")
}

fn field_u64(snap: &JsonValue, name: &str) -> u64 {
    snap.get(name)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("snapshot field {name}")) as u64
}

fn phase_of(snap: &JsonValue) -> String {
    snap.get("phase")
        .and_then(|v| v.as_str())
        .expect("snapshot has a phase")
        .to_string()
}

fn wait_terminal(client: &DaemonClient, id: &str, budget: Duration) -> JsonValue {
    let deadline = Instant::now() + budget;
    loop {
        let snap = snapshot(client, id);
        match phase_of(&snap).as_str() {
            "completed" | "failed" | "cancelled" => return snap,
            _ if Instant::now() > deadline => panic!("campaign {id} never finished: {snap:?}"),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn fingerprint_of(snap: &JsonValue) -> String {
    snap.get("outcome")
        .and_then(|o| o.get("fingerprint"))
        .and_then(|f| f.as_str())
        .expect("terminal snapshot has a fingerprint")
        .to_string()
}

/// Durable `block_completed` count in a campaign's WAL — what a
/// restarted daemon will replay instead of re-executing.
fn surviving_blocks(state: &Path, id: &str) -> u64 {
    let wal = state.join("campaigns").join(id).join("journal.wal");
    let (events, _recovery) = Journal::read(&wal).expect("journal readable");
    events
        .iter()
        .filter(|e| matches!(e, JournalEvent::BlockCompleted(_)))
        .count() as u64
}

#[test]
fn daemon_survives_sigkill_and_resumes_every_campaign() {
    let tenants = ["acme", "zephyr"];

    // ---- Phase A: uninterrupted reference run + API contract checks.
    let state_a = state_dir("ref");
    let mut reference = Vec::new();
    {
        let mut daemon = Daemon::start(&state_a);
        let ops = daemon.client("ops");

        // The check gate refuses a defective bundle with 422 + JSONL
        // diagnostics, and leaves no campaign behind.
        let defective = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/examples/check/defective.json"
        ))
        .unwrap();
        let refused = ops.post("/v1/campaigns", &defective).expect("submit runs");
        assert_eq!(refused.status, 422);
        assert!(
            refused.body.lines().any(|l| l.contains("\"error\"")),
            "diagnostics returned: {}",
            refused.body
        );
        let listed = ops.get("/v1/campaigns").expect("list runs");
        assert_eq!(listed.body.trim(), "[]", "refused bundle left no state");

        let ids: Vec<String> = tenants
            .iter()
            .map(|t| submit(&daemon.client(t), &spec()))
            .collect();

        // Tenant isolation over real HTTP: acme cannot see zephyr's
        // campaign, and a stranger can't drive it.
        let foreign = daemon
            .client(tenants[0])
            .get(&format!("/v1/campaigns/{}", ids[1]))
            .expect("request runs");
        assert_eq!(foreign.status, 403);
        let meddle = ops
            .post(&format!("/v1/campaigns/{}/cancel", ids[0]), "")
            .expect("request runs");
        assert_eq!(meddle.status, 403);

        for (t, id) in tenants.iter().zip(&ids) {
            let snap = wait_terminal(&daemon.client(t), id, Duration::from_secs(120));
            assert_eq!(phase_of(&snap), "completed");
            assert_eq!(field_u64(&snap, "blocks_recovered"), 0);
            assert_eq!(field_u64(&snap, "blocks_live"), u64::from(TOTAL_BLOCKS));
            reference.push(fingerprint_of(&snap));
        }
        assert_eq!(
            reference[0], reference[1],
            "identical specs produce identical outcomes"
        );

        // Clean shutdown: the daemon drains and exits zero.
        let resp = ops.post("/v1/shutdown", "").expect("shutdown accepted");
        assert_eq!(resp.status, 202);
        let status = daemon.child.wait_with_deadline();
        assert!(status.success(), "clean shutdown exits zero: {status:?}");
    }
    let _ = std::fs::remove_dir_all(&state_a);

    // ---- Phase B: same campaigns, SIGKILL mid-flight, restart, resume.
    let state_b = state_dir("kill");
    let ids: Vec<String>;
    let mut quota_ceiling = 0u64;
    let mut pool_ceiling = 0u64;
    {
        let mut daemon = Daemon::start(&state_b);
        ids = tenants
            .iter()
            .map(|t| submit(&daemon.client(t), &spec()))
            .collect();

        // Let both campaigns get provably mid-flight, watching quota
        // usage while the pool saturates.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            for t in &tenants {
                let resp = daemon.client(t).get("/v1/quotas").expect("quotas");
                let doc = parse(&resp.body).expect("quotas JSON");
                if let Some(tq) = doc.get("tenant").filter(|v| !matches!(v, JsonValue::Null)) {
                    quota_ceiling = quota_ceiling.max(field_u64(tq, "high_water"));
                    assert!(
                        field_u64(tq, "high_water") <= u64::from(TENANT_QUOTA),
                        "tenant {t} exceeded its quota: {}",
                        resp.body
                    );
                }
                pool_ceiling = pool_ceiling.max(field_u64(
                    doc.get("global").expect("global pool stats"),
                    "high_water",
                ));
            }
            let live: Vec<u64> = tenants
                .iter()
                .zip(&ids)
                .map(|(t, id)| field_u64(&snapshot(&daemon.client(t), id), "blocks_live"))
                .collect();
            if live.iter().all(|&n| n >= 1)
                && pool_ceiling == u64::from(POOL)
                && quota_ceiling == u64::from(TENANT_QUOTA)
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "campaigns never saturated the pool: live={live:?}, \
                 pool_ceiling={pool_ceiling}, quota_ceiling={quota_ceiling}"
            );
        }
        daemon.child.kill().expect("SIGKILL lands"); // SIGKILL, not a drain
        let _ = daemon.child.wait();
    }
    assert_eq!(
        pool_ceiling,
        u64::from(POOL),
        "the global pool saturated while tenants stayed capped"
    );
    assert_eq!(
        quota_ceiling,
        u64::from(TENANT_QUOTA),
        "tenants actually used their full quota"
    );

    // The kill landed mid-campaign: durable progress exists, completion
    // doesn't.
    let survived: Vec<u64> = ids
        .iter()
        .map(|id| surviving_blocks(&state_b, id))
        .collect();
    for (id, &n) in ids.iter().zip(&survived) {
        assert!(
            n >= 1,
            "campaign {id} made durable progress before the kill"
        );
        assert!(
            n < u64::from(TOTAL_BLOCKS),
            "campaign {id} was still mid-flight when killed"
        );
    }

    // Restart on the same state dir: every campaign resumes and finishes
    // with the reference fingerprint; journaled blocks replay instead of
    // re-executing.
    {
        let mut daemon = Daemon::start(&state_b);
        for ((t, id), &prekill) in tenants.iter().zip(&ids).zip(&survived) {
            let snap = wait_terminal(&daemon.client(t), id, Duration::from_secs(120));
            assert_eq!(phase_of(&snap), "completed");
            assert_eq!(
                fingerprint_of(&snap),
                reference[0],
                "campaign {id} diverged from the uninterrupted outcome"
            );
            assert_eq!(
                field_u64(&snap, "blocks_recovered"),
                prekill,
                "campaign {id} replayed exactly the durable prefix"
            );
            assert_eq!(
                field_u64(&snap, "blocks_live"),
                u64::from(TOTAL_BLOCKS) - prekill,
                "campaign {id} executed exactly the missing remainder"
            );
        }
        let resp = daemon
            .client("ops")
            .post("/v1/shutdown", "")
            .expect("shutdown accepted");
        assert_eq!(resp.status, 202);
        let status = daemon.child.wait_with_deadline();
        assert!(status.success());
    }
    let _ = std::fs::remove_dir_all(&state_b);
}

/// `Child::wait` with a 60 s deadline, so a hung daemon fails the test
/// instead of wedging CI.
trait WaitWithDeadline {
    fn wait_with_deadline(&mut self) -> std::process::ExitStatus;
}

impl WaitWithDeadline for Child {
    fn wait_with_deadline(&mut self) -> std::process::ExitStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.try_wait().expect("try_wait") {
                return status;
            }
            if Instant::now() > deadline {
                let _ = self.kill();
                panic!("daemon did not exit before the deadline");
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}
