//! Resilient-orchestration integration tests: a 50-instance staggered
//! roll-out under seeded fault injection.
//!
//! Three §2.1/§5.1 scenarios: (1) a 20% transient-fault storm that retry
//! policies fully absorb, (2) a permanent fault on one block that trips
//! the circuit breaker, halts the remaining slots, and backs out the
//! in-flight failures, (3) deadline overruns surfacing as timed-out
//! blocks. Everything is reproducible from fixed seeds: the fault plan,
//! the backoff jitter, and the simulated clock are all deterministic.

use cornet::catalog::builtin_catalog;
use cornet::orchestrator::resilience::{CircuitBreaker, FaultPlan, FaultyExecutor, RetryPolicy};
use cornet::orchestrator::{
    BlockExecution, BlockStatus, DispatchReport, Dispatcher, ExecutorRegistry, GlobalState,
    InstanceStatus,
};
use cornet::types::{NodeId, ParamValue, Schedule, Timeslot};
use cornet::workflow::builtin::software_upgrade_workflow;
use cornet::workflow::{Designer, WarArtifact};

const NODES: u32 = 50;
const PER_SLOT: u32 = 10;
const SEED: u64 = 42;

/// Happy-path executors for the software-upgrade workflow.
fn happy_registry() -> ExecutorRegistry {
    let mut reg = ExecutorRegistry::new();
    reg.register("health_check", |s| {
        s.insert("healthy".into(), ParamValue::from(true));
        Ok(())
    });
    reg.register("software_upgrade", |s| {
        s.insert("previous_version".into(), ParamValue::from("19.3"));
        Ok(())
    });
    reg.register("pre_post_comparison", |s| {
        s.insert("passed".into(), ParamValue::from(true));
        Ok(())
    });
    reg.register("roll_back", |s| {
        s.insert("rolled_back".into(), ParamValue::from(true));
        Ok(())
    });
    reg
}

/// 50 nodes staggered over 5 slots of 10.
fn staggered_schedule() -> Schedule {
    let mut s = Schedule::default();
    for i in 0..NODES {
        s.assignments.insert(NodeId(i), Timeslot(i / PER_SLOT + 1));
    }
    s
}

fn inputs(node: NodeId) -> GlobalState {
    let mut g = GlobalState::new();
    g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
    g.insert("software_version".into(), ParamValue::from("20.1"));
    g
}

/// Canonical execution-log fingerprint: everything deterministic under a
/// seeded fault plan (durations included — they come from the simulated
/// clock, never the wall clock, once the plan injects latency).
fn fingerprint(report: &DispatchReport) -> Vec<(u32, String, BlockStatus, u32, u128, u128)> {
    let mut rows = Vec::new();
    for i in &report.instances {
        for b in &i.blocks {
            rows.push((
                i.node.0,
                b.block.clone(),
                b.status,
                b.attempts,
                b.duration.as_millis(),
                b.backoff.as_millis(),
            ));
        }
    }
    rows
}

fn run_transient_storm() -> DispatchReport {
    let cat = builtin_catalog();
    let war = WarArtifact::package(&software_upgrade_workflow(&cat), &cat).unwrap();
    // 20% transient faults on every block, 12ms simulated latency each
    // invocation; 6 attempts make a six-in-a-row streak (0.2^6) the only
    // way to lose an instance.
    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::transient(SEED, 0.20).with_latency_ms(12),
    );
    reg.set_default_retry_policy(RetryPolicy::with_attempts(6));
    let d = Dispatcher::new(war, reg, 4).unwrap();
    d.run(&staggered_schedule(), inputs).unwrap()
}

#[test]
fn transient_storm_is_fully_absorbed_by_retries() {
    let report = run_transient_storm();
    assert_eq!(report.instances.len(), NODES as usize);
    assert_eq!(
        report.completed(),
        NODES as usize,
        "retries absorb every transient fault"
    );
    assert!(report.failures().is_empty());
    // The recovery path actually ran: at 20% fault rate across ~150 block
    // executions, plenty of blocks needed retries.
    let recovered: usize = report
        .instances
        .iter()
        .flat_map(|i| &i.blocks)
        .filter(|b| matches!(b.status, BlockStatus::Recovered { .. }))
        .count();
    assert!(
        recovered > 10,
        "expected a visible recovery count, got {recovered}"
    );
    // Recovered rows carry their attempt count and accumulated backoff.
    let sample: &BlockExecution = report
        .instances
        .iter()
        .flat_map(|i| &i.blocks)
        .find(|b| matches!(b.status, BlockStatus::Recovered { .. }))
        .unwrap();
    assert!(sample.attempts > 1);
    assert!(sample.backoff > std::time::Duration::ZERO);
}

#[test]
fn same_seed_reproduces_the_execution_log_exactly() {
    let a = fingerprint(&run_transient_storm());
    let b = fingerprint(&run_transient_storm());
    assert_eq!(a, b, "same seed ⇒ byte-identical execution log");
    assert!(!a.is_empty());
}

#[test]
fn permanent_fault_trips_breaker_and_backs_out_in_flight_failures() {
    let cat = builtin_catalog();
    // The upgrade workflow with an explicitly designed backout flow.
    let mut wf = software_upgrade_workflow(&cat);
    let mut d = Designer::new(&cat, "upgrade-with-backout");
    let s = d.start();
    let rb = d.task("roll_back").unwrap();
    let e = d.end();
    d.connect(s, rb).connect(rb, e);
    wf.set_backout(d.build());
    let war = WarArtifact::package(&wf, &cat).unwrap();

    // Every software_upgrade invocation fails permanently; retries are
    // configured but must not fire for permanent errors.
    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::permanent_on(SEED, 1.0, "software_upgrade"),
    );
    reg.set_default_retry_policy(RetryPolicy::with_attempts(6));
    let breaker = CircuitBreaker {
        failure_threshold: 0.5,
        min_samples: 5,
    };
    let d = Dispatcher::new(war, reg, 4).unwrap();
    let (report, trip) = d
        .run_with_breaker(&staggered_schedule(), inputs, &breaker)
        .unwrap();

    // The breaker now checks on every instance completion (in dispatch
    // order), so it trips the moment the sample floor is met: after 5
    // all-failing instances, not at the end of slot 1. The deterministic
    // report is exactly that 5-instance prefix; anything already in
    // flight when the trip landed drains separately.
    let trip = trip.expect("breaker must trip");
    assert_eq!(trip.block, "software_upgrade");
    assert!(trip.failure_rate >= 0.5);
    assert_eq!(
        report.instances.len(),
        breaker.min_samples,
        "halt at the sample floor, mid-slot"
    );
    assert!(
        report.instances.len() + report.drained.len() <= PER_SLOT as usize,
        "no instance beyond slot 1 ever started"
    );

    // Every in-flight failure was backed out, not abandoned — including
    // the drained stragglers.
    assert_eq!(report.rolled_back(), breaker.min_samples);
    assert_eq!(report.completed(), 0);
    for i in report.instances.iter().chain(&report.drained) {
        assert!(matches!(&i.status, InstanceStatus::RolledBack(b) if b == "software_upgrade"));
        let last = i.blocks.last().unwrap();
        assert_eq!(last.block, "roll_back", "backout flow executed");
        assert!(last.status.is_success());
        let upgrade = i
            .blocks
            .iter()
            .find(|b| b.block == "software_upgrade")
            .unwrap();
        assert_eq!(upgrade.status, BlockStatus::Failed);
        assert_eq!(upgrade.attempts, 1, "permanent faults never retry");
        assert!(upgrade.error.as_deref().unwrap().contains("injected fault"));
    }
}

/// A breaker trip is part of the campaign's durable history: whether the
/// crash lands after the trip was journaled or just before, a resumed
/// campaign must come back halted at the same instance — never re-admit
/// the nodes the trip spared.
#[test]
fn tripped_breaker_stays_tripped_across_crash_and_resume() {
    use cornet::journal::{boundaries, FsyncPolicy, Journal};
    use std::collections::BTreeMap;

    let cat = builtin_catalog();
    let mut wf = software_upgrade_workflow(&cat);
    let mut dsg = Designer::new(&cat, "upgrade-with-backout");
    let s = dsg.start();
    let rb = dsg.task("roll_back").unwrap();
    let e = dsg.end();
    dsg.connect(s, rb).connect(rb, e);
    wf.set_backout(dsg.build());
    let war = WarArtifact::package(&wf, &cat).unwrap();

    let plan = FaultPlan::permanent_on(SEED, 1.0, "software_upgrade").with_latency_ms(5);
    let stack = || {
        let mut reg = FaultyExecutor::wrap(&happy_registry(), &plan);
        reg.set_default_retry_policy(RetryPolicy::with_attempts(6));
        Dispatcher::new(war.clone(), reg, 4).unwrap()
    };
    let breaker = CircuitBreaker {
        failure_threshold: 0.5,
        min_samples: 5,
    };

    let path = std::env::temp_dir().join(format!(
        "cornet-resilience-trip-{}.jsonl",
        std::process::id()
    ));
    let journal = Journal::create(&path, FsyncPolicy::Always).unwrap();
    let (report, trip) = stack()
        .with_journal(journal, BTreeMap::new())
        .run_with_breaker(&staggered_schedule(), inputs, &breaker)
        .unwrap();
    let trip = trip.expect("breaker must trip");
    let bytes = std::fs::read(&path).unwrap();

    // Crash after the trip was journaled: the full journal replays to the
    // same halted prefix, the same drained stragglers, the same trip.
    let (resumed, resumed_trip) = stack()
        .resume_from_journal(&path, FsyncPolicy::Always, inputs, Some(&breaker))
        .unwrap();
    assert_eq!(Some(&trip), resumed_trip.as_ref());
    assert_eq!(report.instances, resumed.instances);
    assert_eq!(report.drained, resumed.drained);

    // Crash just *before* the trip record made it to disk: chop the
    // trailing breaker_tripped + campaign_closed records. The trip must be
    // re-derived from the replayed completions at the exact same instance,
    // and halt-drain semantics must hold — no node past the recorded set
    // is ever admitted.
    let cuts = boundaries(&bytes);
    let cut = cuts[cuts.len() - 3]; // drop the last two records
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let (rederived, rederived_trip) = stack()
        .resume_from_journal(&path, FsyncPolicy::Always, inputs, Some(&breaker))
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(Some(&trip), rederived_trip.as_ref());
    assert_eq!(report.instances, rederived.instances);
    assert_eq!(report.drained, rederived.drained);
    assert_eq!(rederived.instances.len(), breaker.min_samples);
    for i in rederived.instances.iter().chain(&rederived.drained) {
        assert!(matches!(&i.status, InstanceStatus::RolledBack(b) if b == "software_upgrade"));
    }
}

#[test]
fn deadline_overruns_are_logged_as_timed_out() {
    let cat = builtin_catalog();
    let war = WarArtifact::package(&software_upgrade_workflow(&cat), &cat).unwrap();
    // 300ms of injected latency against a 100ms deadline on the upgrade
    // block; no retry policy, so the overrun is terminal.
    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::transient(SEED, 0.0)
            .with_latency_ms(300)
            .targeting(&["software_upgrade"]),
    );
    reg.set_deadline("software_upgrade", std::time::Duration::from_millis(100));
    let d = Dispatcher::new(war, reg, 4).unwrap();
    let mut schedule = Schedule::default();
    for i in 0..4 {
        schedule.assignments.insert(NodeId(i), Timeslot(1));
    }
    let report = d.run(&schedule, inputs).unwrap();
    assert_eq!(report.completed(), 0);
    for i in &report.instances {
        let row = i
            .blocks
            .iter()
            .find(|b| b.block == "software_upgrade")
            .unwrap();
        assert_eq!(row.status, BlockStatus::TimedOut);
        assert!(row.error.as_deref().unwrap().contains("deadline"));
        assert_eq!(row.duration.as_millis(), 300, "simulated, not wall-clock");
    }
}
