//! Integration test reproducing §4.1: change design and orchestration
//! across the six sample vNFs of the three cloud services (VPN's vCE,
//! SDWAN's vGW / portal / CPE, VoLTE core's vCOM / vRAR), two software
//! images each, driven through CORNET's designer → WAR → orchestrator
//! pipeline against the simulated testbed.

use cornet::core::{testbed_registry, Cornet};
use cornet::netsim::{Network, Testbed, TestbedConfig};
use cornet::orchestrator::{Engine, GlobalState, InstanceStatus};
use cornet::types::{NfType, ParamValue};
use cornet::workflow::builtin::{
    sdwan_upgrade_workflow, software_upgrade_workflow, vce_activate_workflow, vce_download_workflow,
};
use cornet::workflow::WarArtifact;

/// The six §4.1 vNF instances with their two software images.
fn six_vnfs() -> Vec<(&'static str, NfType, &'static str, &'static str)> {
    vec![
        ("vce-0001", NfType::VceRouter, "16.9", "17.3"),
        ("vgw-00", NfType::VGateway, "3.2", "3.4"),
        ("portal-00", NfType::Portal, "3.2", "3.4"),
        ("cpe-00-00", NfType::Cpe, "2.1", "2.2"),
        ("vcom-00", NfType::Vcom, "8.1", "8.2"),
        ("vrar-00", NfType::Vrar, "8.1", "8.2"),
    ]
}

fn testbed() -> Testbed {
    let tb = Testbed::new(TestbedConfig::default());
    for (name, nf, old, _) in six_vnfs() {
        tb.instantiate(name, nf, old);
    }
    tb
}

fn inputs(node: &str, version: &str) -> GlobalState {
    let mut g = GlobalState::new();
    g.insert("node".into(), ParamValue::from(node));
    g.insert("software_version".into(), ParamValue::from(version));
    g
}

#[test]
fn upgrade_workflow_updates_all_six_vnfs() {
    let tb = testbed();
    let reg = testbed_registry(tb.clone());
    let net = Network::generate_cloud(1, 2, 1);
    let cornet = Cornet::new(net.inventory, net.topology, reg.clone());

    let wf = software_upgrade_workflow(&cornet.catalog);
    let war: WarArtifact = cornet.deploy_workflow(&wf).expect("workflow validates");

    // "We completed the software upgrade workflow execution for each of
    // the instances separately and then verified that the software
    // versions were successfully updated."
    for (name, _, _, new) in six_vnfs() {
        let mut engine = Engine::from_war(&war, reg.clone(), inputs(name, new)).unwrap();
        assert_eq!(engine.run().unwrap(), &InstanceStatus::Completed, "{name}");
        assert_eq!(
            tb.state(name).unwrap().sw_version,
            new,
            "{name} version updated"
        );
    }
}

#[test]
fn vce_two_workflow_pattern() {
    // §5.1: vCE upgrades split into a non-disruptive download/install
    // workflow and a later activate/verify workflow.
    let tb = testbed();
    let reg = testbed_registry(tb.clone());
    let net = Network::generate_cloud(1, 2, 1);
    let cornet = Cornet::new(net.inventory, net.topology, reg.clone());

    let w1 = vce_download_workflow(&cornet.catalog);
    let w2 = vce_activate_workflow(&cornet.catalog);
    let war1 = cornet.deploy_workflow(&w1).unwrap();
    let war2 = cornet.deploy_workflow(&w2).unwrap();

    // Pass 1: install.
    let mut e1 = Engine::from_war(&war1, reg.clone(), inputs("vce-0001", "17.3")).unwrap();
    assert_eq!(e1.run().unwrap(), &InstanceStatus::Completed);
    assert_eq!(tb.state("vce-0001").unwrap().sw_version, "17.3");
    let prev = e1
        .state_var("previous_version")
        .and_then(|v| v.as_str().map(String::from));

    // Pass 2 (days later): health check, traffic redirect, verify, restore.
    let mut g = inputs("vce-0001", "17.3");
    g.insert("previous_version".into(), ParamValue::from(prev.unwrap()));
    let mut e2 = Engine::from_war(&war2, reg, g).unwrap();
    assert_eq!(e2.run().unwrap(), &InstanceStatus::Completed);
    let state = tb.state("vce-0001").unwrap();
    assert!(
        !state.traffic_redirected,
        "traffic restored after verification"
    );
    assert_eq!(
        state.sw_version, "17.3",
        "verification passed: no roll-back"
    );
}

#[test]
fn sdwan_workflow_rolls_back_on_failed_postcheck() {
    let tb = testbed();
    // Force the post-check to fail by marking the node unhealthy *after*
    // the upgrade: register a custom pre_post_comparison that fails.
    let mut reg = testbed_registry(tb.clone());
    reg.register("pre_post_comparison", |state: &mut GlobalState| {
        state.insert("passed".into(), ParamValue::from(false));
        Ok(())
    });
    let net = Network::generate_cloud(1, 2, 1);
    let cornet = Cornet::new(net.inventory, net.topology, reg.clone());
    let wf = sdwan_upgrade_workflow(&cornet.catalog);
    let war = cornet.deploy_workflow(&wf).unwrap();

    let mut engine = Engine::from_war(&war, reg, inputs("vgw-00", "3.4")).unwrap();
    assert_eq!(engine.run().unwrap(), &InstanceStatus::Completed);
    // Rolled back to the original image.
    assert_eq!(tb.state("vgw-00").unwrap().sw_version, "3.2");
    let blocks: Vec<String> = engine.log().iter().map(|b| b.block.clone()).collect();
    assert!(blocks.contains(&"roll_back".to_string()), "{blocks:?}");
}

#[test]
fn ssh_failure_is_attributed_to_the_offending_block() {
    // §5.1: "we did notice failures of the software deployment. It was
    // because of SSH connectivity issue."
    let tb = Testbed::new(TestbedConfig {
        seed: 11,
        ssh_failure_rate: 1.0,
        unhealthy_rate: 0.0,
    });
    tb.instantiate("vce-0001", NfType::VceRouter, "16.9");
    let reg = testbed_registry(tb);
    let net = Network::generate_cloud(1, 2, 1);
    let cornet = Cornet::new(net.inventory, net.topology, reg.clone());
    let wf = software_upgrade_workflow(&cornet.catalog);
    let war = cornet.deploy_workflow(&wf).unwrap();
    let mut engine = Engine::from_war(&war, reg, inputs("vce-0001", "17.3")).unwrap();
    let status = engine.run().unwrap().clone();
    // With a 100% management-plane failure rate, the very first block
    // (health_check) fails and is named.
    assert_eq!(status, InstanceStatus::Failed("health_check".into()));
    let last = engine.log().last().unwrap();
    assert!(last.error.as_deref().unwrap().contains("ssh connectivity"));
}

#[test]
fn module_counts_match_the_paper() {
    // Without CORNET: 24 modules. With: 14. Reuse 42%.
    let cat = cornet::catalog::builtin_catalog();
    let rows = cornet::core::table3(&cat);
    let row = &rows[0];
    assert_eq!(row.custom_modules, 24);
    assert_eq!(row.cornet_modules, 14);
    assert!((row.reuse_pct - 41.7).abs() < 1.0);
}
