//! Integration test reproducing §4.3's accuracy experiment: 60 labeled
//! change impacts across staggered roll-outs, each injected into the KPI
//! synthesizer as ground truth; CORNET's verifier must identify all 60 as
//! labeled ("Our change impact verifier in CORNET accurately identified
//! all the 60 impacts as expected by the operations teams").

use cornet::netsim::{ImpactKind, InjectedImpact, KpiGenerator, Network, NetworkConfig};
use cornet::types::{NfType, NodeId};
use cornet::verifier::{analyze_kpi, AnalysisOptions, ChangeScope, ClosureAdapter, ImpactVerdict};

struct LabeledCase {
    kpi: String,
    /// +1 improvement, -1 degradation, 0 none (ground-truth label).
    label: i8,
    scope: ChangeScope,
    impacts: Vec<InjectedImpact>,
}

/// Build 60 labeled cases: 20 upward shifts, 20 downward, 20 no-ops,
/// across different KPIs, staggered change times, and magnitudes.
fn labeled_cases(study: &[NodeId]) -> Vec<LabeledCase> {
    let mut cases = Vec::new();
    for i in 0..60 {
        let kpi = format!("kpi_{i:02}");
        let label: i8 = match i % 3 {
            0 => 1,
            1 => -1,
            _ => 0,
        };
        // Staggered roll-out: each study node changes a few hours apart.
        let base_minute = 6_000 + (i as u64 % 7) * 120;
        let scope = ChangeScope {
            changes: study
                .iter()
                .enumerate()
                .map(|(k, &n)| (n, base_minute + k as u64 * 180))
                .collect(),
        };
        let magnitude = match label {
            1 => 0.15 + (i as f64 % 5.0) * 0.05,
            -1 => -(0.15 + (i as f64 % 5.0) * 0.05),
            _ => 0.0,
        };
        let impacts = if label == 0 {
            Vec::new()
        } else {
            scope
                .changes
                .iter()
                .map(|(&n, &minute)| InjectedImpact {
                    node: n,
                    kpi: kpi.clone(),
                    carrier: None,
                    at_minute: minute,
                    kind: ImpactKind::LevelShift,
                    magnitude,
                })
                .collect()
        };
        cases.push(LabeledCase {
            kpi,
            label,
            scope,
            impacts,
        });
    }
    cases
}

#[test]
fn all_sixty_labeled_impacts_identified() {
    let net = Network::generate_ran(&NetworkConfig::default());
    let enbs = net.nodes_of_type(NfType::ENodeB);
    let study: Vec<NodeId> = enbs[..8].to_vec();
    let control: Vec<NodeId> = enbs[8..20].to_vec();

    let generator = KpiGenerator {
        seed: 42,
        noise: 0.02,
        ..Default::default()
    };
    let cases = labeled_cases(&study);
    // The labeled impacts are ±15% and larger; a 5% practical-significance
    // floor (the knob operations teams tune per rule) separates them from
    // the ~1.5% diurnal-alignment artifacts of heavily staggered scopes.
    let options = AnalysisOptions {
        min_relative_shift: 0.05,
        ..Default::default()
    };

    let mut correct = 0;
    let mut wrong = Vec::new();
    for case in &cases {
        let gen = generator.clone();
        let impacts = case.impacts.clone();
        let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
            Some(gen.series(node, kpi, carrier, 250, &impacts))
        });
        let analysis = analyze_kpi(
            &adapter,
            &case.kpi,
            None,
            true,
            &case.scope,
            &control,
            &options,
        )
        .expect("analysis runs");
        let expected = match case.label {
            1 => ImpactVerdict::Improvement,
            -1 => ImpactVerdict::Degradation,
            _ => ImpactVerdict::NoImpact,
        };
        if analysis.verdict == expected {
            correct += 1;
        } else {
            wrong.push(format!(
                "{}: label {} got {:?} (p={:.4}, shift={:+.3})",
                case.kpi, case.label, analysis.verdict, analysis.p_value, analysis.relative_shift
            ));
        }
    }
    assert_eq!(correct, 60, "misclassified: {wrong:#?}");
}

#[test]
fn per_carrier_impact_visible_only_at_carrier_granularity() {
    // Fig. 2's lesson: aggregating across carriers can hide per-carrier
    // level changes. A level shift confined to CF-3 must be detected at
    // carrier granularity and attributed to that carrier.
    let study: Vec<NodeId> = (0..6).map(NodeId).collect();
    let control: Vec<NodeId> = (100..112).map(NodeId).collect();
    let scope = ChangeScope::simultaneous(&study, 6_000);
    let impacts: Vec<InjectedImpact> = study
        .iter()
        .map(|&n| InjectedImpact {
            node: n,
            kpi: "dl_throughput".into(),
            carrier: Some(2),
            at_minute: 6_000,
            kind: ImpactKind::LevelShift,
            magnitude: -0.3,
        })
        .collect();
    let gen = KpiGenerator {
        seed: 7,
        noise: 0.02,
        ..Default::default()
    };
    let adapter = {
        let gen = gen.clone();
        let impacts = impacts.clone();
        ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
            Some(gen.series(node, kpi, carrier, 250, &impacts))
        })
    };
    let options = AnalysisOptions::default();
    let hit = analyze_kpi(
        &adapter,
        "dl_throughput",
        Some(2),
        true,
        &scope,
        &control,
        &options,
    )
    .unwrap();
    assert_eq!(
        hit.verdict,
        ImpactVerdict::Degradation,
        "CF-3 view sees the hit"
    );
    let spared = analyze_kpi(
        &adapter,
        "dl_throughput",
        Some(4),
        true,
        &scope,
        &control,
        &options,
    )
    .unwrap();
    assert_eq!(
        spared.verdict,
        ImpactVerdict::NoImpact,
        "CF-5 view is clean"
    );
}
