//! Integration test for §4.2's exhaustive composition experiment: all
//! eight combinations of {consistency, uniformity, localize} times two
//! conflict tolerances — 16 compositions — must translate and solve on a
//! 4G eNodeB inventory, with every produced schedule passing the model
//! checker and the intent's semantic invariants.

use cornet::netsim::{Network, NetworkConfig};
use cornet::planner::{plan, ConstraintRule, PlanIntent, PlanOptions};
use cornet::types::{Granularity, NfType, NodeId};

fn base_intent_json() -> String {
    r#"{
        "scheduling_window": {"start": "2020-07-01 00:00:00",
                               "end": "2020-07-30 23:59:00",
                               "granularity": {"metric": "day", "value": 1}},
        "maintenance_window": {"start": "0:00", "end": "6:00"},
        "schedulable_attribute": "common_id",
        "conflict_attribute": "common_id",
        "constraints": []
    }"#
    .to_string()
}

/// The 16 compositions of §4.2.
fn compositions() -> Vec<(String, Vec<ConstraintRule>)> {
    let mut out = Vec::new();
    for mask in 0..8u32 {
        for zero_tolerance in [true, false] {
            let mut rules = vec![
                // Always: concurrency per EMS (the paper fixes
                // "concurrency of 200 instances per EMS"; scaled down).
                ConstraintRule::Concurrency {
                    base_attribute: "common_id".into(),
                    aggregate_attribute: Some("ems".into()),
                    operator: "<=".into(),
                    granularity: Granularity::daily(),
                    default_capacity: 6,
                },
                ConstraintRule::ConflictHandling {
                    value: if zero_tolerance {
                        cornet::planner::ConflictTolerance::Zero
                    } else {
                        cornet::planner::ConflictTolerance::Minimize
                    },
                },
            ];
            let mut name = String::new();
            if mask & 1 != 0 {
                rules.push(ConstraintRule::Consistency {
                    attribute: "usid".into(),
                });
                name.push_str("consistency+");
            }
            if mask & 2 != 0 {
                rules.push(ConstraintRule::Uniformity {
                    attribute: "utc_offset".into(),
                    value: 1.0,
                });
                name.push_str("uniformity+");
            }
            if mask & 4 != 0 {
                rules.push(ConstraintRule::Localize {
                    attribute: "market".into(),
                });
                name.push_str("localize+");
            }
            name.push_str(if zero_tolerance { "zero" } else { "min" });
            out.push((name, rules));
        }
    }
    out
}

#[test]
fn all_sixteen_compositions_plan_successfully() {
    // Small RAN so the exhaustive sweep stays fast: ~40 nodes.
    let cfg = NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 1,
        usids_per_tac: 3,
        ..Default::default()
    };
    let net = Network::generate_ran(&cfg);
    let mut nodes: Vec<NodeId> = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    nodes.sort();

    let mut makespans = Vec::new();
    for (name, rules) in compositions() {
        let mut intent = PlanIntent::from_json(&base_intent_json()).unwrap();
        intent.constraints = rules;
        // Budget the solver like an operations team would: the dense
        // compositions (localize, uniformity) are exactly the ones §4.2
        // reports as dramatically slower, so a first-feasible-within-budget
        // answer is the realistic mode here.
        let options = PlanOptions {
            solver: cornet::solver::SolverConfig {
                max_nodes: 60_000,
                time_limit: std::time::Duration::from_secs(2),
                ..Default::default()
            },
            ..Default::default()
        };
        let result = plan(&intent, &net.inventory, &net.topology, &nodes, &options)
            .unwrap_or_else(|e| panic!("composition {name} failed: {e}"));
        assert_eq!(
            result.schedule.scheduled_count() + result.schedule.leftovers.len(),
            nodes.len(),
            "{name}: every node is either scheduled or a leftover"
        );
        assert!(
            result.schedule.leftovers.is_empty(),
            "{name}: window is generous"
        );
        makespans.push((name, result.makespan(), result.search_stats.nodes));
    }
    // (a) of §4.2's findings is about discovery time growth — covered by
    // the benches. Here we sanity-check the makespans are sane (nonzero,
    // bounded by the window).
    for (name, makespan, _) in &makespans {
        assert!(
            *makespan >= 1 && *makespan <= 30,
            "{name}: makespan {makespan}"
        );
    }
    // Consistency reduces the unit count, which can only help or keep the
    // makespan under per-EMS capacity. Compare matched pairs with/without.
    let find = |n: &str| makespans.iter().find(|(name, ..)| name == n).unwrap().1;
    assert!(find("consistency+zero") <= find("zero") + 1);
}

#[test]
fn consistency_contraction_shrinks_search() {
    // The §4.2 "4x reduction in schedule discovery time" mechanism: the
    // contracted model has ~half the variables (eNodeB+gNodeB per USID)
    // and strictly fewer search nodes.
    let cfg = NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 2,
        usids_per_tac: 5,
        gnb_probability: 1.0, // every site has both radios → clean halving
        ..Default::default()
    };
    let net = Network::generate_ran(&cfg);
    let mut nodes: Vec<NodeId> = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    nodes.sort();

    let mut intent = PlanIntent::from_json(&base_intent_json()).unwrap();
    intent.constraints = vec![
        ConstraintRule::Concurrency {
            base_attribute: "common_id".into(),
            aggregate_attribute: None,
            operator: "<=".into(),
            granularity: Granularity::daily(),
            default_capacity: 8,
        },
        ConstraintRule::Consistency {
            attribute: "usid".into(),
        },
    ];

    // The node cap is the binding budget: a wall-clock limit would cut
    // the search at a load-dependent point and make the node-count
    // comparison below flaky under parallel test execution.
    let budget = cornet::solver::SolverConfig {
        max_nodes: 60_000,
        time_limit: std::time::Duration::from_secs(120),
        ..Default::default()
    };
    let contracted = plan(
        &intent,
        &net.inventory,
        &net.topology,
        &nodes,
        &PlanOptions {
            solver: budget.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let expanded = plan(
        &intent,
        &net.inventory,
        &net.topology,
        &nodes,
        &PlanOptions {
            solver: budget,
            translate: cornet::planner::TranslateOptions {
                contract_consistency: false,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(contracted.model_stats.vars * 2, expanded.model_stats.vars);
    assert!(
        contracted.search_stats.nodes <= expanded.search_stats.nodes,
        "contracted {} vs expanded {}",
        contracted.search_stats.nodes,
        expanded.search_stats.nodes
    );
    // Both respect consistency: co-sited radios share a slot.
    for schedule in [&contracted.schedule, &expanded.schedule] {
        for (&n, &slot) in &schedule.assignments {
            let usid = net.inventory.group_key_of(n, "usid").unwrap();
            for (&m, &slot2) in &schedule.assignments {
                if net.inventory.group_key_of(m, "usid").as_deref() == Some(usid.as_str()) {
                    assert_eq!(slot, slot2, "usid {usid} split");
                }
            }
        }
    }
}
