//! Cross-crate property tests: randomized inventories, intents, and
//! schedules must uphold CORNET's semantic invariants end to end.

use cornet::planner::{
    heuristic_schedule, plan, translate, ConstraintRule, HeuristicConfig, PlanIntent, PlanOptions,
    TranslateOptions,
};
use cornet::solver::SolverConfig;
use cornet::types::{
    Attributes, ConflictTable, Inventory, NfType, NodeId, SchedulingWindow, SimTime, Timeslot,
    Topology,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// Random small RAN-ish inventory: n nodes over up to 3 markets/timezones
/// and up to n USIDs.
fn arb_inventory() -> impl Strategy<Value = Inventory> {
    (2usize..14, 1usize..4, 1usize..5).prop_map(|(n, n_markets, usid_span)| {
        let mut inv = Inventory::new();
        for i in 0..n {
            // Realistic hierarchy: markets partition the nodes into
            // contiguous ranges so USIDs nest inside markets (a USID is a
            // physical cell site; it cannot straddle two markets).
            let market = i * n_markets / n;
            inv.push(
                format!("n{i}"),
                NfType::ENodeB,
                Attributes::new()
                    .with("market", format!("M{market}"))
                    .with("utc_offset", -5.0 - market as f64)
                    .with("usid", format!("M{market}-U{}", i / usid_span))
                    .with("ems", format!("E{}", i % 2)),
            );
        }
        inv
    })
}

fn base_intent(capacity: i64, days: u32) -> PlanIntent {
    PlanIntent::from_json(&format!(
        r#"{{
        "scheduling_window": {{"start": "2020-07-01 00:00:00",
                               "end": "2020-07-{:02} 23:59:00",
                               "granularity": {{"metric": "day", "value": 1}}}},
        "maintenance_window": {{"start": "0:00", "end": "6:00"}},
        "schedulable_attribute": "common_id",
        "conflict_attribute": "common_id",
        "constraints": [
            {{"name": "concurrency", "base_attribute": "common_id",
              "operator": "<=", "granularity": {{"metric": "day", "value": 1}},
              "default_capacity": {capacity}}}
        ]
    }}"#,
        days
    ))
    .unwrap()
}

fn budgeted() -> PlanOptions {
    PlanOptions {
        solver: SolverConfig {
            max_nodes: 20_000,
            time_limit: Duration::from_millis(500),
            ..Default::default()
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever constraint subset is active, a produced schedule must
    /// satisfy the model checker AND the semantic invariants derived from
    /// the intent.
    #[test]
    fn planner_schedules_respect_all_active_rules(
        inv in arb_inventory(),
        capacity in 2i64..5,
        use_consistency in any::<bool>(),
        use_uniformity in any::<bool>(),
        use_localize in any::<bool>(),
    ) {
        let nodes: Vec<NodeId> = inv.ids().collect();
        let mut intent = base_intent(capacity, 20);
        if use_consistency {
            intent.constraints.push(ConstraintRule::Consistency { attribute: "usid".into() });
        }
        if use_uniformity {
            intent.constraints.push(ConstraintRule::Uniformity {
                attribute: "utc_offset".into(),
                value: 1.0,
            });
        }
        if use_localize {
            intent.constraints.push(ConstraintRule::Localize { attribute: "market".into() });
        }
        let topo = Topology::with_capacity(nodes.len());
        let result = plan(&intent, &inv, &topo, &nodes, &budgeted()).unwrap();
        let schedule = &result.schedule;

        // Every node is scheduled or leftover, never both.
        let mut seen = std::collections::BTreeSet::new();
        for n in schedule.assignments.keys() {
            prop_assert!(seen.insert(*n));
        }
        for n in &schedule.leftovers {
            prop_assert!(seen.insert(*n), "{n:?} both scheduled and leftover");
        }
        prop_assert_eq!(seen.len(), nodes.len());

        // Capacity per slot.
        let mut per_slot: BTreeMap<Timeslot, i64> = BTreeMap::new();
        for slot in schedule.assignments.values() {
            *per_slot.entry(*slot).or_default() += 1;
        }
        for (slot, count) in &per_slot {
            prop_assert!(*count <= capacity, "slot {slot:?} holds {count} > {capacity}");
        }

        // Consistency: same usid → same slot (when both scheduled).
        if use_consistency {
            for (&a, &sa) in &schedule.assignments {
                for (&b, &sb) in &schedule.assignments {
                    if inv.group_key_of(a, "usid") == inv.group_key_of(b, "usid") {
                        prop_assert_eq!(sa, sb);
                    }
                }
            }
        }

        // Uniformity: co-slotted nodes within 1 timezone.
        if use_uniformity {
            for (&a, &sa) in &schedule.assignments {
                for (&b, &sb) in &schedule.assignments {
                    if sa == sb {
                        let ta = inv.attr_of(a, "utc_offset").unwrap().as_f64().unwrap();
                        let tb = inv.attr_of(b, "utc_offset").unwrap().as_f64().unwrap();
                        prop_assert!((ta - tb).abs() <= 1.0 + 1e-9);
                    }
                }
            }
        }

        // Localize: market slot-intervals must not properly interleave.
        if use_localize {
            let mut intervals: BTreeMap<String, (u32, u32)> = BTreeMap::new();
            for (&n, &slot) in &schedule.assignments {
                let m = inv.group_key_of(n, "market").unwrap();
                let e = intervals.entry(m).or_insert((slot.0, slot.0));
                e.0 = e.0.min(slot.0);
                e.1 = e.1.max(slot.0);
            }
            let mut sorted: Vec<(u32, u32)> = intervals.values().copied().collect();
            sorted.sort();
            for pair in sorted.windows(2) {
                prop_assert!(
                    pair[1].0 >= pair[0].1,
                    "market intervals interleave: {sorted:?}"
                );
            }
        }
    }

    /// The heuristic never violates capacity, never splits a USID, and
    /// accounts for every node exactly once.
    #[test]
    fn heuristic_invariants(
        inv in arb_inventory(),
        capacity in 1i64..6,
        days in 2u32..20,
        seed in 0u64..1000,
    ) {
        let nodes: Vec<NodeId> = inv.ids().collect();
        let window = SchedulingWindow::daily(SimTime::from_ymd_hm(2020, 7, 1, 0, 0), days);
        let schedule = heuristic_schedule(
            &inv,
            &nodes,
            &ConflictTable::new(),
            &window,
            &HeuristicConfig { slot_capacity: capacity, iterations: 3, seed },
        );
        prop_assert_eq!(
            schedule.scheduled_count() + schedule.leftovers.len(),
            nodes.len()
        );
        let mut per_slot: BTreeMap<Timeslot, i64> = BTreeMap::new();
        for slot in schedule.assignments.values() {
            *per_slot.entry(*slot).or_default() += 1;
        }
        for count in per_slot.values() {
            // A USID larger than the capacity can never fit, so such
            // nodes must be leftovers, not overloads.
            prop_assert!(*count <= capacity);
        }
        // USID atomicity among scheduled nodes.
        for (&a, &sa) in &schedule.assignments {
            for (&b, &sb) in &schedule.assignments {
                if inv.group_key_of(a, "usid") == inv.group_key_of(b, "usid") {
                    prop_assert_eq!(sa, sb);
                }
            }
        }
    }

    /// Translation always produces a model whose var count equals the
    /// unit count, and decoding a valid solver assignment never panics.
    #[test]
    fn translation_decode_round_trip(
        inv in arb_inventory(),
        capacity in 1i64..5,
    ) {
        let nodes: Vec<NodeId> = inv.ids().collect();
        let intent = base_intent(capacity, 10);
        let topo = Topology::with_capacity(nodes.len());
        let t = translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();
        prop_assert_eq!(t.model.var_count(), t.units.len());
        let solved = cornet::solver::solve(&t.model, &SolverConfig {
            max_nodes: 5_000,
            time_limit: Duration::from_millis(200),
            ..Default::default()
        });
        if let Some(best) = &solved.best {
            prop_assert!(t.model.check(&best.assignment).is_ok());
            let schedule = t.decode(&best.assignment, &ConflictTable::new());
            prop_assert_eq!(
                schedule.scheduled_count() + schedule.leftovers.len(),
                nodes.len()
            );
        }
    }

    /// A seeded fault plan fully determines execution: two dispatches of
    /// the same staggered roll-out under the same plan produce identical
    /// execution logs — block order, statuses, attempt counts, simulated
    /// durations, and backoffs — regardless of thread interleaving.
    #[test]
    fn seeded_fault_plan_reproduces_execution_log(
        seed in any::<u64>(),
        failure_rate in 0.0f64..0.45,
        latency_ms in 1u64..40,
        max_attempts in 2u32..6,
    ) {
        use cornet::catalog::builtin_catalog;
        use cornet::orchestrator::resilience::{FaultPlan, FaultyExecutor, RetryPolicy};
        use cornet::orchestrator::{Dispatcher, ExecutorRegistry, GlobalState};
        use cornet::types::{ParamValue, Schedule};
        use cornet::workflow::builtin::software_upgrade_workflow;
        use cornet::workflow::WarArtifact;

        let cat = builtin_catalog();
        let war = WarArtifact::package(&software_upgrade_workflow(&cat), &cat).unwrap();
        let run = || {
            let mut reg = ExecutorRegistry::new();
            reg.register("health_check", |s: &mut GlobalState| {
                s.insert("healthy".into(), ParamValue::from(true));
                Ok(())
            });
            reg.register("software_upgrade", |s: &mut GlobalState| {
                s.insert("previous_version".into(), ParamValue::from("19.3"));
                Ok(())
            });
            reg.register("pre_post_comparison", |s: &mut GlobalState| {
                s.insert("passed".into(), ParamValue::from(true));
                Ok(())
            });
            reg.register("roll_back", |_: &mut GlobalState| Ok(()));
            let plan = FaultPlan::transient(seed, failure_rate).with_latency_ms(latency_ms);
            let mut faulty = FaultyExecutor::wrap(&reg, &plan);
            faulty.set_default_retry_policy(RetryPolicy::with_attempts(max_attempts));
            let mut schedule = Schedule::default();
            for i in 0..12u32 {
                schedule.assignments.insert(NodeId(i), Timeslot(i / 4 + 1));
            }
            let report = Dispatcher::new(war.clone(), faulty, 3)
                .unwrap()
                .run(&schedule, |node| {
                    let mut g = GlobalState::new();
                    g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
                    g.insert("software_version".into(), ParamValue::from("20.1"));
                    g
                })
                .unwrap();
            report
                .instances
                .iter()
                .flat_map(|i| {
                    let node = i.node.0;
                    i.blocks.iter().map(move |b| {
                        (
                            node,
                            b.block.clone(),
                            format!("{:?}", b.status),
                            b.attempts,
                            b.duration.as_millis(),
                            b.backoff.as_millis(),
                        )
                    })
                })
                .collect::<Vec<_>>()
        };
        let first = run();
        let second = run();
        prop_assert!(!first.is_empty());
        prop_assert_eq!(first, second, "same fault plan must replay identically");
    }

    /// Racing the portfolio at whatever thread interleaving the OS picks
    /// must return a bit-identical plan: same winner, same schedule, same
    /// outcome, run after run. (Wall-clock never picks the winner; the
    /// exact member prunes the shared incumbent only strictly.)
    #[test]
    fn portfolio_race_is_bit_identical_across_runs(
        inv in arb_inventory(),
        capacity in 2i64..5,
        use_consistency in any::<bool>(),
    ) {
        let nodes: Vec<NodeId> = inv.ids().collect();
        let mut intent = base_intent(capacity, 16);
        if use_consistency {
            intent.constraints.push(ConstraintRule::Consistency { attribute: "usid".into() });
        }
        let topo = Topology::with_capacity(nodes.len());
        let options = PlanOptions {
            backend: cornet::planner::BackendChoice::Portfolio,
            ..budgeted()
        };
        let reference = plan(&intent, &inv, &topo, &nodes, &options).unwrap();
        let ref_winner = reference
            .backend_runs
            .iter()
            .find(|r| r.winner)
            .map(|r| r.backend);
        for _ in 0..2 {
            let again = plan(&intent, &inv, &topo, &nodes, &options).unwrap();
            prop_assert_eq!(&again.schedule.assignments, &reference.schedule.assignments);
            prop_assert_eq!(&again.schedule.leftovers, &reference.schedule.leftovers);
            prop_assert_eq!(again.schedule.conflicts, reference.schedule.conflicts);
            prop_assert_eq!(again.outcome, reference.outcome);
            let winner = again.backend_runs.iter().find(|r| r.winner).map(|r| r.backend);
            prop_assert_eq!(winner, ref_winner);
        }
    }

    /// Cancelling a race mid-flight never loses an incumbent a member has
    /// already produced: the heuristic completes instantly, so even with
    /// the exact search cancelled almost immediately the portfolio still
    /// returns a full schedule.
    #[test]
    fn cancelled_race_keeps_the_incumbent(
        inv in arb_inventory(),
        capacity in 2i64..5,
    ) {
        use cornet::planner::{Budget, SolveContext};
        let nodes: Vec<NodeId> = inv.ids().collect();
        let intent = base_intent(capacity, 16);
        let topo = Topology::with_capacity(nodes.len());
        let translation =
            translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();
        let conflicts = intent.conflicts().unwrap();
        let ctx = SolveContext::new(&translation, &inv, &intent, &conflicts);
        let backend = cornet::planner::BackendChoice::Portfolio.instantiate(
            &SolverConfig::default(),
            &HeuristicConfig::default(),
        );
        let cancel = cornet::solver::CancelToken::new();
        let canceller = {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                cancel.cancel();
            })
        };
        let r = backend.solve(&ctx, &Budget::default(), &cancel);
        canceller.join().unwrap();
        // The race may end early, but whatever members finished must be
        // reported and a produced assignment is never dropped.
        if let Some(a) = &r.assignment {
            prop_assert_eq!(a.len(), translation.model.var_count());
        }
        prop_assert!(!r.runs.is_empty());
    }

    /// `BackendChoice::Exact` through plan() is bit-identical to driving
    /// the translation and solver by hand (the refactor preserves the
    /// legacy pipeline's output).
    #[test]
    fn exact_backend_matches_manual_pipeline(
        inv in arb_inventory(),
        capacity in 2i64..5,
    ) {
        let nodes: Vec<NodeId> = inv.ids().collect();
        let intent = base_intent(capacity, 12);
        let topo = Topology::with_capacity(nodes.len());
        let options = budgeted();
        let result = plan(&intent, &inv, &topo, &nodes, &options).unwrap();

        let t = translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();
        let solved = cornet::solver::solve(&t.model, &options.solver);
        let manual = t.decode(&solved.solution().assignment, &intent.conflicts().unwrap());
        prop_assert_eq!(result.schedule.assignments, manual.assignments);
        prop_assert_eq!(result.schedule.leftovers, manual.leftovers);
        prop_assert_eq!(result.outcome, solved.outcome);
    }

    /// MiniZinc emission is total: any translated model renders non-empty
    /// text containing every variable.
    #[test]
    fn minizinc_emission_total(inv in arb_inventory()) {
        let nodes: Vec<NodeId> = inv.ids().collect();
        let intent = base_intent(3, 6);
        let topo = Topology::with_capacity(nodes.len());
        let t = translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();
        let mzn = t.model.to_minizinc();
        prop_assert!(mzn.contains("solve "));
        for v in &t.model.vars {
            let ident: String = v
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
                .collect();
            prop_assert!(mzn.contains(&ident), "missing {ident}");
        }
    }
}
