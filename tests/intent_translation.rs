//! Integration test reproducing Appendix B: the full high-level JSON
//! intent of Listing 1 translated into a mathematical model (our IR plus
//! emitted MiniZinc text mirroring Listing 2), and solved.

use cornet::planner::{translate, GroupStrategy, PlanIntent, TranslateOptions};
use cornet::solver::{solve, SolverConfig};
use cornet::types::{Attributes, Inventory, NfType, NodeId, Topology};

/// Listing 1, lightly reduced (same structure, smaller capacities so the
/// test network exercises every constraint).
const LISTING1: &str = r#"{
    "scheduling_window": {
        "start": "2020-07-01 00:00:00",
        "end": "2020-07-07 23:59:00",
        "granularity": {"metric": "day", "value": 1}
    },
    "maintenance_window": {"start": "0:00", "end": "6:00",
                            "granularity": "hour", "timezone": "local"},
    "excluded_periods": [
        {"start": "2020-07-01 00:00:00", "end": "2020-07-01 23:59:00"},
        {"start": "2020-07-04 00:00:00", "end": "2020-07-05 23:59:00"}
    ],
    "schedulable_attribute": "common_id",
    "conflict_attribute": "common_id",
    "frozen_elements": [
        {"common_id": "id000041"},
        {"common_id": "id000003",
         "start": "2020-07-02 00:00:00", "end": "2020-07-02 23:59:00"}
    ],
    "conflict_table": {
        "id000001": [
            {"start": "2020-07-01 00:00:00", "end": "2020-07-04 00:00:00",
             "tickets": ["CHG000005482383"]}
        ],
        "id000002": [
            {"start": "2020-07-03 00:00:00", "end": "2020-07-05 00:00:00",
             "tickets": ["CHG000005485234", "CHG000005485999"]}
        ]
    },
    "constraints": [
        {"name": "conflict_handling", "value": "minimize-conflicts"},
        {"name": "concurrency", "base_attribute": "common_id",
         "operator": "<=", "granularity": {"metric": "day", "value": 1},
         "default_capacity": 4},
        {"name": "concurrency", "base_attribute": "market",
         "operator": "<=", "granularity": {"metric": "day", "value": 1},
         "default_capacity": 2},
        {"name": "concurrency", "base_attribute": "common_id",
         "aggregate_attribute": "pool_id", "operator": "<=",
         "granularity": {"metric": "day", "value": 1},
         "default_capacity": 2},
        {"name": "uniformity", "attribute": "utc_offset", "value": 1},
        {"name": "localize", "attribute": "market"}
    ]
}"#;

/// 12 nodes over 3 markets / 2 pools / 2 timezones.
fn inventory() -> Inventory {
    let mut inv = Inventory::new();
    for i in 0..12 {
        let market = ["NYC", "CHI", "DEN"][i / 4];
        let offset = [-5.0, -6.0, -7.0][i / 4];
        inv.push(
            format!("enb-{i:03}"),
            NfType::ENodeB,
            Attributes::new()
                .with("market", market)
                .with("utc_offset", offset)
                .with("pool_id", (i % 2) as i64),
        );
    }
    inv
}

#[test]
fn listing1_translates_solves_and_emits_minizinc() {
    let intent = PlanIntent::from_json(LISTING1).expect("Listing 1 parses");
    let inv = inventory();
    let topo = Topology::with_capacity(12);
    let nodes: Vec<NodeId> = inv.ids().collect();

    let translation =
        translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();

    // Structure: 12 units (no consistency rule), 4 usable slots (July 2,
    // 3, 6, 7).
    assert_eq!(translation.units.len(), 12);
    assert_eq!(translation.slots.len(), 4);
    let stats = translation.model.stats();
    assert!(
        stats.by_kind["capacity"] >= 2,
        "ESA + per-pool capacities: {:?}",
        stats.by_kind
    );
    assert_eq!(
        stats.by_kind["distinct_groups"], 1,
        "market concurrency via linking"
    );
    assert_eq!(stats.by_kind["max_spread"], 1, "timezone uniformity");
    assert_eq!(stats.by_kind["non_interleaved"], 1, "market localize");

    // Emission: Listing 2 parity markers.
    let mzn = translation.model.to_minizinc();
    assert!(
        mzn.contains("COMMON_ID_SCHEDULED"),
        "variable naming matches Listing 2"
    );
    assert!(
        mzn.contains("solve minimize"),
        "minimize-conflicts objective"
    );
    assert!(mzn.contains("% concurrency"), "labeled constraint sections");
    assert!(
        mzn.lines().count() > 50,
        "these models are long (Appendix B)"
    );

    // Solve and decode.
    let result = solve(&translation.model, &SolverConfig::default());
    let conflicts = intent.conflicts().unwrap();
    let schedule = translation.decode(&result.solution().assignment, &conflicts);

    // Frozen id000041 is not in our 12-node scope; nothing frozen out.
    assert!(translation.frozen_out.is_empty());
    // id000003 must not land on July 2 (slot 2) — its frozen period.
    if let Some(slot) = schedule.assignments.get(&NodeId(3)) {
        assert_ne!(slot.0, 2, "frozen period respected");
    }
    // Uniformity: co-slotted nodes within 1 timezone of each other.
    for (a, sa) in &schedule.assignments {
        for (b, sb) in &schedule.assignments {
            if sa == sb {
                let ta = inv.attr_of(*a, "utc_offset").unwrap().as_f64().unwrap();
                let tb = inv.attr_of(*b, "utc_offset").unwrap().as_f64().unwrap();
                assert!((ta - tb).abs() <= 1.0);
            }
        }
    }
    // The model checker agrees with the solver.
    assert!(translation
        .model
        .check(&result.solution().assignment)
        .is_ok());
}

#[test]
fn hybrid_strategy_changes_model_shape_but_stays_feasible() {
    let intent = PlanIntent::from_json(LISTING1).unwrap();
    let inv = inventory();
    let topo = Topology::with_capacity(12);
    let nodes: Vec<NodeId> = inv.ids().collect();

    let linking = translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();
    let hybrid = translate(
        &intent,
        &inv,
        &topo,
        &nodes,
        &TranslateOptions {
            strategy: GroupStrategy::HybridWeights,
            ..Default::default()
        },
    )
    .unwrap();
    // The linking strategy uses the distinct-groups global; the hybrid
    // replaces it with a weighted capacity (denser linear relaxation —
    // §3.3.2's performance-vs-expressiveness trade-off).
    assert!(linking
        .model
        .stats()
        .by_kind
        .contains_key("distinct_groups"));
    assert!(!hybrid.model.stats().by_kind.contains_key("distinct_groups"));
    assert!(hybrid.model.stats().by_kind["capacity"] > linking.model.stats().by_kind["capacity"]);
    let r = solve(&hybrid.model, &SolverConfig::default());
    assert!(r.best.is_some(), "hybrid model solves");
}

#[test]
fn zero_tolerance_variant_forbids_all_conflicts() {
    let mut intent = PlanIntent::from_json(LISTING1).unwrap();
    // Flip conflict handling to zero tolerance.
    for c in &mut intent.constraints {
        if let cornet::planner::ConstraintRule::ConflictHandling { value } = c {
            *value = cornet::planner::ConflictTolerance::Zero;
        }
    }
    let inv = inventory();
    let topo = Topology::with_capacity(12);
    let nodes: Vec<NodeId> = inv.ids().collect();
    let translation =
        translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default()).unwrap();
    let result = solve(&translation.model, &SolverConfig::default());
    let schedule = translation.decode(&result.solution().assignment, &intent.conflicts().unwrap());
    assert_eq!(
        schedule.conflicts, 0,
        "zero tolerance yields a conflict-free plan"
    );
}
