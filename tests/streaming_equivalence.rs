//! Streaming-vs-batch verdict equivalence under adversarial delivery.
//!
//! The streaming engine's contract (DESIGN.md) is that after a full
//! replay of a sample feed — in *any* arrival order, torn across any
//! pump cadence, with duplicated deliveries — `poll_verdicts()` is
//! bit-for-bit identical to running the batch `verify_rules` over the
//! same series. These properties drive randomized feeds through both
//! paths and compare every verdict field down to the f64 bit pattern,
//! including p-values, relative shifts, and per-location breakdowns.

use cornet::obs::Tracer;
use cornet::stats::TimeSeries;
use cornet::types::{Attributes, CornetError, Inventory, NfType, NodeId, Topology};
use cornet::verifier::{
    verify_rules, ChangeScope, ClosureAdapter, DataAdapter, Expectation, KpiQuery, StreamConfig,
    StreamSample, StreamingVerifier, VerificationReport, VerificationRule,
};
use proptest::prelude::*;

/// One randomized feed: `study` study nodes paired with `study`
/// controls, `ticks` samples per stream on a 60-minute grid, a level
/// shift of `delta` on the study nodes from `change_tick` on. The
/// delivery permutation and the change tick are derived from `seed`, so
/// every case exercises a different arrival order.
#[derive(Debug, Clone)]
struct Feed {
    study: u32,
    ticks: u64,
    change_tick: u64,
    delta: f64,
    noise: f64,
    seed: u64,
    pump_every: usize,
}

/// splitmix-style hash: deterministic per-(seed, node, tick) noise so the
/// stream side and the batch adapter reconstruct the same value.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// The KPI value for `node` at grid tick `k` — including sparse missing
/// points (NaN), which are *delivered* as NaN samples so both sides see
/// an identical grid.
fn value_at(feed: &Feed, node: u32, k: u64) -> f64 {
    let h = mix(feed.seed, node as u64, k);
    if h.is_multiple_of(29) {
        return f64::NAN;
    }
    let mut v = 100.0 + (h % 1000) as f64 / 1000.0 * feed.noise;
    if node < feed.study && k >= feed.change_tick {
        v += feed.delta;
    }
    v
}

/// Seed-keyed Fisher–Yates over every (node, tick) cell: the delivery
/// order the stream side replays.
fn permuted_cells(feed: &Feed) -> Vec<usize> {
    let mut cells: Vec<usize> = (0..(feed.study as usize * 2 * feed.ticks as usize)).collect();
    for i in (1..cells.len()).rev() {
        let j = (mix(feed.seed, 0x5EED, i as u64) % (i as u64 + 1)) as usize;
        cells.swap(i, j);
    }
    cells
}

fn arb_feed() -> impl Strategy<Value = Feed> {
    (
        1u32..5,
        24u64..97,
        0.0f64..30.0,
        0.0f64..2.0,
        any::<u64>(),
        1usize..65,
    )
        .prop_map(|(study, ticks, delta, noise, seed, pump_every)| Feed {
            study,
            ticks,
            // Keep ≥ min_samples (8) base-resolution points on each side
            // of the change so the verifier accepts the window.
            change_tick: 8 + mix(seed, 0xC4A6, ticks) % (ticks - 15),
            delta,
            noise,
            seed,
            pump_every,
        })
}

/// Paired fixture: study-i ↔ control-i edges, alternating markets so the
/// per-location breakdown has at least two slices to disagree on.
fn fixture(feed: &Feed) -> (Inventory, Topology, ChangeScope, Vec<VerificationRule>) {
    let n = feed.study * 2;
    let mut inv = Inventory::new();
    for i in 0..n {
        inv.push(
            format!("n{i}"),
            NfType::ENodeB,
            Attributes::new().with("market", if i % 2 == 0 { "NYC" } else { "DFW" }),
        );
    }
    let mut topo = Topology::with_capacity(n as usize);
    for i in 0..feed.study {
        topo.add_edge(NodeId(i), NodeId(i + feed.study));
    }
    let study: Vec<NodeId> = (0..feed.study).map(NodeId).collect();
    let scope = ChangeScope::simultaneous(&study, feed.change_tick * 60);
    let mut rule = VerificationRule::standard(
        "stream-equiv",
        vec![KpiQuery::expecting("thr", true, Expectation::Any)],
    );
    rule.location_attributes = vec!["market".into()];
    (inv, topo, scope, vec![rule])
}

fn sample(feed: &Feed, cell: usize) -> StreamSample {
    let ticks = feed.ticks as usize;
    let node = (cell / ticks) as u32;
    let k = (cell % ticks) as u64;
    StreamSample {
        node: NodeId(node),
        kpi: "thr".into(),
        carrier: None,
        minute: k * 60,
        value: value_at(feed, node, k),
    }
}

/// Drive the whole feed through a fresh engine in the permuted order,
/// pumping on the feed's cadence, then redeliver every 7th cell (a
/// duplicate correction with the same value) and pump once more.
fn run_stream(feed: &Feed, order: &[usize]) -> StreamingVerifier {
    let (inv, topo, scope, rules) = fixture(feed);
    let engine = StreamingVerifier::new(
        rules,
        scope,
        inv,
        topo,
        StreamConfig::default(),
        Tracer::noop(),
    );
    for (i, &cell) in order.iter().enumerate() {
        engine.offer(sample(feed, cell));
        if (i + 1) % feed.pump_every == 0 {
            engine.pump();
        }
    }
    for &cell in order.iter().step_by(7) {
        engine.offer(sample(feed, cell));
    }
    engine.pump();
    engine
}

fn run_batch(feed: &Feed) -> Result<Vec<VerificationReport>, CornetError> {
    let (inv, topo, scope, rules) = fixture(feed);
    let f = feed.clone();
    let adapter = ClosureAdapter(move |node: NodeId, _: &str, _: Option<usize>| {
        Some(TimeSeries::new(
            0,
            60,
            (0..f.ticks).map(|k| value_at(&f, node.0, k)).collect(),
        ))
    });
    verify_rules(&adapter, &rules, &scope, &inv, &topo)
}

/// Every field that feeds an operations decision must agree to the bit.
fn assert_reports_bit_equal(
    streamed: &[VerificationReport],
    batch: &[VerificationReport],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(streamed.len(), batch.len());
    for (s, b) in streamed.iter().zip(batch) {
        prop_assert_eq!(&s.rule, &b.rule);
        prop_assert_eq!(s.decision, b.decision);
        prop_assert_eq!(s.kpis.len(), b.kpis.len());
        for (sk, bk) in s.kpis.iter().zip(&b.kpis) {
            prop_assert_eq!(sk.meets_expectation, bk.meets_expectation);
            prop_assert_eq!(sk.overall.verdict, bk.overall.verdict);
            prop_assert_eq!(sk.overall.p_value.to_bits(), bk.overall.p_value.to_bits());
            prop_assert_eq!(
                sk.overall.relative_shift.to_bits(),
                bk.overall.relative_shift.to_bits()
            );
            prop_assert_eq!(sk.overall.decisive_timescale, bk.overall.decisive_timescale);
            prop_assert_eq!(sk.overall.nodes_used, bk.overall.nodes_used);
            prop_assert_eq!(sk.per_location.len(), bk.per_location.len());
            for (sl, bl) in sk.per_location.iter().zip(&bk.per_location) {
                prop_assert_eq!(&sl.attribute, &bl.attribute);
                prop_assert_eq!(&sl.value, &bl.value);
                match (&sl.analysis, &bl.analysis) {
                    (Ok(sa), Ok(ba)) => {
                        prop_assert_eq!(sa.verdict, ba.verdict);
                        prop_assert_eq!(sa.p_value.to_bits(), ba.p_value.to_bits());
                        prop_assert_eq!(sa.relative_shift.to_bits(), ba.relative_shift.to_bits());
                    }
                    (Err(se), Err(be)) => prop_assert_eq!(se, be),
                    _ => prop_assert!(
                        false,
                        "location slice {}={} disagreed on analyzability",
                        sl.attribute,
                        sl.value
                    ),
                }
            }
        }
    }
    Ok(())
}

fn assert_paths_agree(feed: &Feed, order: &[usize]) -> Result<(), TestCaseError> {
    let engine = run_stream(feed, order);
    match (engine.poll_verdicts(), run_batch(feed)) {
        (Ok(s), Ok(b)) => assert_reports_bit_equal(&s, &b)?,
        (Err(se), Err(be)) => {
            prop_assert_eq!(format!("{se:?}"), format!("{be:?}"));
        }
        (s, b) => prop_assert!(
            false,
            "paths disagreed on success: streaming ok={} batch ok={}",
            s.is_ok(),
            b.is_ok()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: shuffled, torn, duplicated delivery of a
    /// full feed yields verdicts bit-identical to batch verification.
    #[test]
    fn streamed_verdicts_match_batch_bit_for_bit(feed in arb_feed()) {
        assert_paths_agree(&feed, &permuted_cells(&feed))?;
    }

    /// Out-of-order delivery must reconstruct the exact grid: after a
    /// full permuted replay, every stream's stored series equals the
    /// source matrix bit-for-bit (NaNs included).
    #[test]
    fn torn_delivery_reconstructs_the_exact_grid(feed in arb_feed()) {
        let engine = run_stream(&feed, &permuted_cells(&feed));
        for node in 0..feed.study * 2 {
            let series = engine.store().series(NodeId(node), "thr", None);
            let series = series.expect("stream fully delivered, series must exist");
            prop_assert_eq!(series.start_minute, 0);
            prop_assert_eq!(series.step_minutes, 60);
            prop_assert_eq!(series.values.len() as u64, feed.ticks);
            for (k, v) in series.values.iter().enumerate() {
                prop_assert_eq!(
                    v.to_bits(),
                    value_at(&feed, node, k as u64).to_bits(),
                    "node {} tick {} diverged",
                    node,
                    k
                );
            }
        }
    }

    /// Window-boundary stress: the change minute lands exactly on a
    /// detector-window or coarse-timescale boundary (multiples of the
    /// detect window 8 and of the 24-sample timescale lane), where an
    /// off-by-one in pre/post alignment would first show up. Delivery is
    /// fully reversed — the worst case for grid back-fill.
    #[test]
    fn change_at_window_boundary_still_matches(feed in arb_feed(), pick in 0usize..4) {
        let mut feed = feed;
        feed.ticks = 96;
        feed.change_tick = [8u64, 16, 24, 48][pick];
        let mut order = permuted_cells(&feed);
        order.sort_unstable();
        order.reverse();
        assert_paths_agree(&feed, &order)?;
    }
}
