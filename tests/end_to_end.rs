//! Whole-lifecycle integration test: plan → dispatch → execute → verify,
//! on a 4G RAN slice — the Fig. 3 pipeline end to end, including §5.2's
//! targeted-halt scenario where one problem configuration degrades while
//! the rest of the roll-out stays clean.

use cornet::core::{testbed_registry, Cornet};
use cornet::netsim::{
    ImpactKind, InjectedImpact, KpiGenerator, Network, NetworkConfig, Testbed, TestbedConfig,
};
use cornet::orchestrator::GlobalState;
use cornet::planner::PlanOptions;
use cornet::types::{NfType, NodeId, ParamValue};
use cornet::verifier::{
    ChangeScope, ClosureAdapter, ControlSelection, Expectation, GoNoGo, KpiQuery, VerificationRule,
};
use cornet::workflow::builtin::software_upgrade_workflow;

const INTENT: &str = r#"{
    "scheduling_window": {"start": "2020-07-01 00:00:00",
                           "end": "2020-07-14 23:59:00",
                           "granularity": {"metric": "day", "value": 1}},
    "maintenance_window": {"start": "0:00", "end": "6:00"},
    "schedulable_attribute": "common_id",
    "conflict_attribute": "common_id",
    "constraints": [
        {"name": "conflict_handling", "value": "zero-tolerance"},
        {"name": "concurrency", "base_attribute": "common_id",
         "operator": "<=", "granularity": {"metric": "day", "value": 1},
         "default_capacity": 4},
        {"name": "uniformity", "attribute": "utc_offset", "value": 1}
    ]
}"#;

#[test]
fn plan_dispatch_execute_verify_with_targeted_halt() {
    // --- network + testbed.
    let cfg = NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 1,
        usids_per_tac: 4,
        gnb_probability: 0.0,
        ..Default::default()
    };
    let net = Network::generate_ran(&cfg);
    let enbs = net.nodes_of_type(NfType::ENodeB);
    assert_eq!(enbs.len(), 16);
    let tb = Testbed::new(TestbedConfig::default());
    for &n in &enbs {
        let rec = net.inventory.record(n);
        tb.instantiate(&rec.name, rec.nf_type, "19.3");
    }
    let cornet = Cornet::new(
        net.inventory.clone(),
        net.topology.clone(),
        testbed_registry(tb.clone()),
    );

    // --- plan (budgeted: first feasible within 2s is operationally fine).
    let options = PlanOptions {
        solver: cornet::solver::SolverConfig {
            max_nodes: 50_000,
            time_limit: std::time::Duration::from_secs(2),
            ..Default::default()
        },
        ..Default::default()
    };
    let result = cornet.plan_from_json(INTENT, &enbs, &options).unwrap();
    assert!(result.schedule.leftovers.is_empty());
    assert_eq!(result.schedule.conflicts, 0);
    let window = cornet::planner::PlanIntent::from_json(INTENT)
        .unwrap()
        .window()
        .unwrap();

    // --- dispatch + execute on the testbed.
    let war = cornet
        .deploy_workflow(&software_upgrade_workflow(&cornet.catalog))
        .unwrap();
    let inv = &cornet.inventory;
    let report = cornet
        .dispatch(&war, &result.schedule, 4, |node| {
            let mut g = GlobalState::new();
            g.insert(
                "node".into(),
                ParamValue::from(inv.record(node).name.clone()),
            );
            g.insert("software_version".into(), ParamValue::from("20.1"));
            g
        })
        .unwrap();
    assert_eq!(report.completed(), 16);
    for &n in &enbs {
        assert_eq!(
            tb.state(&net.inventory.record(n).name).unwrap().sw_version,
            "20.1"
        );
    }

    // --- build the change scope from the actual schedule (staggered!).
    let scope = ChangeScope {
        changes: result
            .schedule
            .assignments
            .iter()
            .map(|(&n, &slot)| (n, window.slot_start(slot).minutes() + 3 * 60))
            .collect(),
    };

    // --- KPI ground truth: throughput improves everywhere, but HW-C
    //     nodes take a latent degradation (the "problem configuration").
    let first_change = scope.changes.values().min().copied().unwrap();
    let mut impacts = Vec::new();
    for (&n, &minute) in &scope.changes {
        let hw = net.inventory.group_key_of(n, "hw_version").unwrap();
        impacts.push(InjectedImpact {
            node: n,
            kpi: "dl_throughput".into(),
            carrier: None,
            at_minute: minute,
            kind: ImpactKind::LevelShift,
            magnitude: if hw == "HW-C" { -0.30 } else { 0.20 },
        });
    }
    let gen = KpiGenerator {
        seed: 99,
        noise: 0.02,
        start_minute: first_change.saturating_sub(100 * 60),
        ..Default::default()
    };
    let adapter = {
        let gen = gen.clone();
        let impacts = impacts.clone();
        ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
            Some(gen.series(node, kpi, carrier, 600, &impacts))
        })
    };

    // --- verify with per-hw_version location aggregation.
    let rule = VerificationRule {
        name: "sw-20.1".into(),
        kpis: vec![KpiQuery::expecting(
            "dl_throughput",
            true,
            Expectation::Improve,
        )],
        location_attributes: vec!["hw_version".into()],
        control: ControlSelection::SameAttribute("market".into()),
        control_attr_filter: None,
        timescales: vec![1, 24],
        alpha: 0.01,
        min_relative_shift: 0.01,
    };
    // Control group: the market-mates — but everything changed. Use the
    // SIADs (unchanged transport) instead via explicit selection.
    let siads = net.nodes_of_type(NfType::Siad);
    let rule = VerificationRule {
        control: ControlSelection::Explicit(siads),
        ..rule
    };

    let report = cornet.verify(&adapter, &rule, &scope).unwrap();
    // Whether the aggregate passes depends on the HW mix; the targeted
    // halt is the real assertion:
    let problems = report.problem_locations();
    assert!(
        problems
            .iter()
            .any(|(kpi, attr, value)| *kpi == "dl_throughput"
                && *attr == "hw_version"
                && *value == "HW-C"),
        "HW-C must be flagged: {problems:?}"
    );
    for (_, _, value) in &problems {
        assert_eq!(*value, "HW-C", "only the problem configuration halts");
    }
}

#[test]
fn clean_rollout_gets_go() {
    let cfg = NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 1,
        usids_per_tac: 3,
        gnb_probability: 0.0,
        ..Default::default()
    };
    let net = Network::generate_ran(&cfg);
    let enbs = net.nodes_of_type(NfType::ENodeB);
    let cornet = Cornet::new(
        net.inventory.clone(),
        net.topology.clone(),
        cornet::orchestrator::ExecutorRegistry::new(),
    );
    let scope = ChangeScope::simultaneous(&enbs, 10_000);
    let impacts: Vec<InjectedImpact> = enbs
        .iter()
        .map(|&n| InjectedImpact {
            node: n,
            kpi: "dl_throughput".into(),
            carrier: None,
            at_minute: 10_000,
            kind: ImpactKind::LevelShift,
            magnitude: 0.15,
        })
        .collect();
    let gen = KpiGenerator {
        seed: 5,
        noise: 0.02,
        ..Default::default()
    };
    let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
        Some(gen.series(node, kpi, carrier, 400, &impacts))
    });
    let rule = VerificationRule {
        name: "clean".into(),
        kpis: vec![KpiQuery::expecting(
            "dl_throughput",
            true,
            Expectation::Improve,
        )],
        location_attributes: vec!["market".into()],
        control: ControlSelection::Explicit(net.nodes_of_type(NfType::Siad)),
        control_attr_filter: None,
        timescales: vec![1, 24],
        alpha: 0.01,
        min_relative_shift: 0.01,
    };
    let report = cornet.verify(&adapter, &rule, &scope).unwrap();
    assert_eq!(report.decision, GoNoGo::Go);
    assert!(report.problem_locations().is_empty());
}
