//! End-to-end tests of the `cornet check` gate: exit codes, output
//! formats, baseline suppression, and warning denial, driven through the
//! real binary against the shipped example bundles.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cornet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cornet"))
}

fn example(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/check")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    let mut cmd = cornet();
    cmd.arg("check").args(args);
    cmd.output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_bundle_exits_zero() {
    let out = run(&[example("clean.json").to_str().unwrap()]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("bundle is clean"));
}

#[test]
fn defective_bundle_exits_one_with_findings_from_every_pass() {
    let out = run(&[example("defective.json").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    // One finding per analysis family: dataflow, resilience, planning,
    // verification — the whole pipeline ran.
    for code in ["CN0201", "CN0301", "CN0416", "CN0502"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
    assert!(text.contains("error("), "totals line present:\n{text}");
}

#[test]
fn json_format_emits_parseable_jsonl() {
    let out = run(&[
        example("defective.json").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "format does not change the gate"
    );
    let text = stdout(&out);
    let mut lines = 0;
    for line in text.lines() {
        let v = cornet::types::json::parse(line).expect("each line is a JSON object");
        for field in ["code", "severity", "where", "message", "pass"] {
            assert!(v.get(field).is_some(), "missing '{field}' in {line}");
        }
        lines += 1;
    }
    assert!(lines >= 8, "expected the full report, got {lines} lines");
}

#[test]
fn baseline_suppresses_accepted_findings() {
    let json = run(&[
        example("defective.json").to_str().unwrap(),
        "--format",
        "json",
    ]);
    let baseline_path = std::env::temp_dir().join("cornet-check-gate-baseline.jsonl");
    std::fs::write(&baseline_path, &json.stdout).unwrap();
    let out = run(&[
        example("defective.json").to_str().unwrap(),
        "--baseline",
        baseline_path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&baseline_path).ok();
    assert!(
        out.status.success(),
        "fully baselined bundle passes: {}",
        stdout(&out)
    );
}

#[test]
fn deny_warnings_tightens_the_gate() {
    // The builtin fig4 workflow carries mutating blocks with no backout:
    // warnings only, so it passes by default but fails under --deny.
    let bundle_path = std::env::temp_dir().join("cornet-check-gate-warned.json");
    std::fs::write(&bundle_path, r#"{"workflows": ["fig4"]}"#).unwrap();
    let relaxed = run(&[bundle_path.to_str().unwrap()]);
    let strict = run(&[bundle_path.to_str().unwrap(), "--deny", "warnings"]);
    std::fs::remove_file(&bundle_path).ok();
    assert!(relaxed.status.success(), "{}", stdout(&relaxed));
    assert!(stdout(&relaxed).contains("CN0209"), "{}", stdout(&relaxed));
    assert_eq!(strict.status.code(), Some(1));
}

#[test]
fn load_errors_exit_two() {
    let out = run(&["/no/such/bundle.json"]);
    assert_eq!(out.status.code(), Some(2));
    let bad_path = std::env::temp_dir().join("cornet-check-gate-bad.json");
    std::fs::write(&bad_path, r#"{"workflows": ["no_such_flow"]}"#).unwrap();
    let out = run(&[bad_path.to_str().unwrap()]);
    std::fs::remove_file(&bad_path).ok();
    assert_eq!(
        out.status.code(),
        Some(2),
        "load errors are not diagnostics"
    );
}
