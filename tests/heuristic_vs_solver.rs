//! Integration test for §3.3.3/§4.2's generic-solver vs custom-heuristic
//! comparison — now run through the *same* pipeline: every strategy is a
//! `SolverBackend` selected via `PlanOptions::backend`, so the comparison
//! exercises the pluggable seam instead of two bespoke call paths. The
//! heuristic must produce schedules whose makespan is within a small
//! factor of the exact solver's (the paper reports ≈7% extra makespan for
//! the generic path; at small scale the exact solver is the reference),
//! while scaling to node counts the solver cannot touch.

use cornet::netsim::{Network, NetworkConfig};
use cornet::planner::{
    heuristic_schedule, plan, BackendChoice, ConstraintRule, HeuristicConfig, PlanIntent,
    PlanOptions,
};
use cornet::types::{ConflictTable, Granularity, NfType, NodeId, SchedulingWindow, SimTime};
use std::time::Instant;

fn ran(usids_per_tac: usize) -> Network {
    Network::generate_ran(&NetworkConfig {
        markets_per_tz: 1,
        tacs_per_market: 2,
        usids_per_tac,
        ..Default::default()
    })
}

fn ran_nodes(net: &Network) -> Vec<NodeId> {
    let mut nodes = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    nodes.sort();
    nodes
}

fn comparison_intent(capacity: i64) -> PlanIntent {
    let mut intent = PlanIntent::from_json(
        r#"{
        "scheduling_window": {"start": "2020-07-01 00:00:00",
                               "end": "2020-08-09 23:59:00",
                               "granularity": {"metric": "day", "value": 1}},
        "maintenance_window": {"start": "0:00", "end": "6:00"},
        "schedulable_attribute": "common_id",
        "conflict_attribute": "common_id",
        "constraints": []
    }"#,
    )
    .unwrap();
    intent.constraints = vec![
        ConstraintRule::Concurrency {
            base_attribute: "common_id".into(),
            aggregate_attribute: None,
            operator: "<=".into(),
            granularity: Granularity::daily(),
            default_capacity: capacity,
        },
        ConstraintRule::Consistency {
            attribute: "usid".into(),
        },
    ];
    intent
}

fn options_for(backend: BackendChoice) -> PlanOptions {
    PlanOptions {
        solver: cornet::solver::SolverConfig {
            time_limit: std::time::Duration::from_secs(5),
            ..Default::default()
        },
        backend,
        heuristic: HeuristicConfig {
            iterations: 8,
            seed: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn heuristic_makespan_close_to_solver_optimum() {
    let net = ran(3);
    let nodes = ran_nodes(&net);
    let intent = comparison_intent(6);

    let exact = plan(
        &intent,
        &net.inventory,
        &net.topology,
        &nodes,
        &options_for(BackendChoice::Exact),
    )
    .unwrap();
    let heuristic = plan(
        &intent,
        &net.inventory,
        &net.topology,
        &nodes,
        &options_for(BackendChoice::Heuristic),
    )
    .unwrap();

    assert!(heuristic.schedule.leftovers.is_empty());
    assert_eq!(heuristic.schedule.scheduled_count(), nodes.len());
    let solver_makespan = exact.makespan() as f64;
    let heuristic_makespan = heuristic.makespan() as f64;
    // The heuristic schedules timezones sequentially (deployability trumps
    // tightness, Appendix C), so allow generous headroom — but it must
    // stay within a small constant factor of optimal.
    assert!(
        heuristic_makespan <= solver_makespan * 2.5 + 4.0,
        "heuristic {heuristic_makespan} vs solver {solver_makespan}"
    );
}

#[test]
fn greedy_backend_plans_through_the_pipeline() {
    let net = ran(3);
    let nodes = ran_nodes(&net);
    let intent = comparison_intent(6);
    let greedy = plan(
        &intent,
        &net.inventory,
        &net.topology,
        &nodes,
        &options_for(BackendChoice::Greedy),
    )
    .unwrap();
    assert_eq!(greedy.schedule.scheduled_count(), nodes.len());
    assert_eq!(greedy.backend_runs.len(), 1);
    assert_eq!(greedy.backend_runs[0].backend, "greedy");
    assert!(greedy.backend_runs[0].feasible);
}

#[test]
fn portfolio_beats_or_matches_every_member() {
    let net = ran(3);
    let nodes = ran_nodes(&net);
    let intent = comparison_intent(6);

    let run = |backend| {
        plan(
            &intent,
            &net.inventory,
            &net.topology,
            &nodes,
            &options_for(backend),
        )
        .unwrap()
    };
    let exact = run(BackendChoice::Exact);
    let heuristic = run(BackendChoice::Heuristic);
    let portfolio = run(BackendChoice::Portfolio);

    // The §4.2 acceptance bar: the race's makespan is never worse than the
    // best standalone member's.
    let best = exact.makespan().min(heuristic.makespan());
    assert!(
        portfolio.makespan() <= best,
        "portfolio {} vs best member {best}",
        portfolio.makespan()
    );
    assert_eq!(portfolio.backend_runs.len(), 3, "all members reported");
    assert_eq!(
        portfolio.backend_runs.iter().filter(|r| r.winner).count(),
        1
    );
}

#[test]
fn portfolio_winner_is_deterministic_across_races() {
    let net = ran(2);
    let nodes = ran_nodes(&net);
    let intent = comparison_intent(4);

    let reference = plan(
        &intent,
        &net.inventory,
        &net.topology,
        &nodes,
        &options_for(BackendChoice::Portfolio),
    )
    .unwrap();
    let winner = |r: &cornet::planner::PlanResult| {
        r.backend_runs
            .iter()
            .find(|run| run.winner)
            .map(|run| run.backend)
    };
    for _ in 0..5 {
        let again = plan(
            &intent,
            &net.inventory,
            &net.topology,
            &nodes,
            &options_for(BackendChoice::Portfolio),
        )
        .unwrap();
        assert_eq!(
            again.schedule.assignments, reference.schedule.assignments,
            "racing must be timing-independent"
        );
        assert_eq!(winner(&again), winner(&reference));
        assert_eq!(again.outcome, reference.outcome);
    }
}

#[test]
fn heuristic_scales_to_tens_of_thousands() {
    // §5.2: "For a network size of 100K, CORNET takes only a few minutes."
    // We check 20K+ nodes schedule in a few seconds here.
    let net = Network::generate_ran(&NetworkConfig::default().with_target_nodes(20_000));
    let nodes = ran_nodes(&net);
    assert!(nodes.len() >= 18_000, "target sizing: {}", nodes.len());
    let started = Instant::now();
    let hs = heuristic_schedule(
        &net.inventory,
        &nodes,
        &ConflictTable::new(),
        &SchedulingWindow::daily(SimTime::from_ymd_hm(2020, 7, 1, 0, 0), 60),
        &HeuristicConfig {
            slot_capacity: 400,
            iterations: 4,
            seed: 1,
        },
    );
    let elapsed = started.elapsed();
    assert_eq!(hs.scheduled_count() + hs.leftovers.len(), nodes.len());
    assert!(hs.leftovers.is_empty(), "60 slots × 400 fits 24K");
    assert!(elapsed.as_secs() < 30, "took {elapsed:?}");
}

#[test]
fn heuristic_respects_usid_and_capacity_at_scale() {
    let net = Network::generate_ran(&NetworkConfig::default().with_target_nodes(5_000));
    let nodes = ran_nodes(&net);
    let hs = heuristic_schedule(
        &net.inventory,
        &nodes,
        &ConflictTable::new(),
        &SchedulingWindow::daily(SimTime::from_ymd_hm(2020, 7, 1, 0, 0), 40),
        &HeuristicConfig {
            slot_capacity: 200,
            iterations: 3,
            seed: 2,
        },
    );
    // Capacity.
    let mut per_slot = std::collections::BTreeMap::new();
    for slot in hs.assignments.values() {
        *per_slot.entry(*slot).or_insert(0usize) += 1;
    }
    assert!(per_slot.values().all(|&c| c <= 200));
    // USID atomicity (consistency): sample check.
    for &n in nodes.iter().take(500) {
        if let Some(&slot) = hs.assignments.get(&n) {
            let usid = net.inventory.group_key_of(n, "usid").unwrap();
            for &m in &nodes {
                if m != n && net.inventory.group_key_of(m, "usid").as_deref() == Some(usid.as_str())
                {
                    assert_eq!(hs.assignments.get(&m), Some(&slot));
                }
            }
        }
    }
}
