//! Equivalence properties for the continuous-admission dispatcher and the
//! rayon-fanned verifier: parallelism must change wall-clock time only,
//! never outcomes.
//!
//! Three families of properties:
//!
//! 1. **Dispatch**: any concurrency in 2..=8 under a seeded fault plan
//!    produces the same per-instance statuses and block logs as
//!    concurrency 1.
//! 2. **Breaker**: the circuit breaker trips after the same instance at
//!    every concurrency — the deterministic `instances` prefix and the
//!    trip itself are identical; drained stragglers match the outcome the
//!    same node has in an unhalted run.
//! 3. **Verification**: `verify_rule` (parallel units + series cache) is
//!    verdict- and p-value-identical to `verify_rule_sequential`.

use cornet::catalog::builtin_catalog;
use cornet::orchestrator::resilience::{
    CircuitBreaker, FaultKind, FaultPlan, FaultyExecutor, RetryPolicy,
};
use cornet::orchestrator::{
    BlockStatus, DispatchReport, Dispatcher, ExecutorRegistry, GlobalState,
};
use cornet::types::{NodeId, ParamValue, Schedule, Timeslot};
use cornet::verifier::{
    verify_rule, verify_rule_sequential, ClosureAdapter, Expectation, KpiQuery, VerificationRule,
};
use cornet::workflow::builtin::software_upgrade_workflow;
use cornet::workflow::WarArtifact;
use proptest::prelude::*;

const NODES: u32 = 24;
const PER_SLOT: u32 = 12;

fn happy_registry() -> ExecutorRegistry {
    let mut reg = ExecutorRegistry::new();
    reg.register("health_check", |s| {
        s.insert("healthy".into(), ParamValue::from(true));
        Ok(())
    });
    reg.register("software_upgrade", |s| {
        s.insert("previous_version".into(), ParamValue::from("19.3"));
        Ok(())
    });
    reg.register("pre_post_comparison", |s| {
        s.insert("passed".into(), ParamValue::from(true));
        Ok(())
    });
    reg.register("roll_back", |s| {
        s.insert("rolled_back".into(), ParamValue::from(true));
        Ok(())
    });
    reg
}

fn schedule(nodes: u32, per_slot: u32) -> Schedule {
    let mut s = Schedule::default();
    for i in 0..nodes {
        s.assignments.insert(NodeId(i), Timeslot(i / per_slot + 1));
    }
    s
}

fn inputs(node: NodeId) -> GlobalState {
    let mut g = GlobalState::new();
    g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
    g.insert("software_version".into(), ParamValue::from("20.1"));
    g
}

/// Canonical per-instance outcome rows: node, per-block status, attempts,
/// simulated duration, backoff — everything that must not depend on
/// thread interleaving.
fn fingerprint(report: &DispatchReport) -> Vec<(u32, String, BlockStatus, u32, u128, u128)> {
    let mut rows = Vec::new();
    for i in &report.instances {
        for b in &i.blocks {
            rows.push((
                i.node.0,
                b.block.clone(),
                b.status,
                b.attempts,
                b.duration.as_millis(),
                b.backoff.as_millis(),
            ));
        }
    }
    rows
}

fn faulty_dispatcher(plan: &FaultPlan, concurrency: usize) -> Dispatcher {
    let cat = builtin_catalog();
    let war = WarArtifact::package(&software_upgrade_workflow(&cat), &cat).unwrap();
    let mut reg = FaultyExecutor::wrap(&happy_registry(), plan);
    reg.set_default_retry_policy(RetryPolicy::with_attempts(3));
    Dispatcher::new(war, reg, concurrency).unwrap()
}

fn plan_from(seed: u64, rate_millis: u32, kind_sel: u8, latency_ms: u64) -> FaultPlan {
    let kind = match kind_sel % 3 {
        0 => FaultKind::Transient,
        1 => FaultKind::Permanent,
        _ => FaultKind::FlakyThenRecover { failures: 1 },
    };
    FaultPlan {
        seed,
        failure_rate: rate_millis as f64 / 1000.0,
        kind,
        latency_ms,
        ..FaultPlan::transient(seed, 0.0)
    }
}

proptest! {
    #[test]
    fn dispatch_outcomes_independent_of_concurrency(
        seed in any::<u64>(),
        rate_millis in 0u32..500,
        kind_sel in 0u8..3,
        concurrency in 2usize..9,
    ) {
        // Latency > 0 keeps block durations on the simulated clock, so
        // the fingerprint rows are fully deterministic.
        let plan = plan_from(seed, rate_millis, kind_sel, 5);
        let base = faulty_dispatcher(&plan, 1)
            .run(&schedule(NODES, PER_SLOT), inputs)
            .unwrap();
        let wide = faulty_dispatcher(&plan, concurrency)
            .run(&schedule(NODES, PER_SLOT), inputs)
            .unwrap();
        prop_assert!(base.drained.is_empty() && wide.drained.is_empty());
        prop_assert_eq!(fingerprint(&base), fingerprint(&wide));
    }

    #[test]
    fn breaker_trips_after_the_same_instance_at_any_concurrency(
        seed in any::<u64>(),
        rate_millis in 600u32..1001,
        concurrency in 2usize..9,
    ) {
        let plan = FaultPlan {
            latency_ms: 5,
            ..FaultPlan::permanent_on(seed, rate_millis as f64 / 1000.0, "software_upgrade")
        };
        let breaker = CircuitBreaker { failure_threshold: 0.5, min_samples: 4 };
        let sched = schedule(NODES, PER_SLOT);
        let (base, base_trip) = faulty_dispatcher(&plan, 1)
            .run_with_breaker(&sched, inputs, &breaker)
            .unwrap();
        let (wide, wide_trip) = faulty_dispatcher(&plan, concurrency)
            .run_with_breaker(&sched, inputs, &breaker)
            .unwrap();
        prop_assert_eq!(&base_trip, &wide_trip);
        prop_assert_eq!(fingerprint(&base), fingerprint(&wide));
        // Drained stragglers are timing-dependent in membership but not
        // in outcome: each must match the same node's result in a run
        // that never halts.
        if !wide.drained.is_empty() {
            let unhalted = faulty_dispatcher(&plan, 1)
                .run(&sched, inputs)
                .unwrap();
            for d in &wide.drained {
                let reference = unhalted
                    .instances
                    .iter()
                    .find(|i| i.node == d.node)
                    .expect("drained node exists in the full run");
                prop_assert_eq!(&d.status, &reference.status);
                prop_assert_eq!(d.blocks.len(), reference.blocks.len());
            }
        }
        // A sequential run admits exactly the prefix; concurrency 1 must
        // never drain.
        prop_assert!(base.drained.is_empty());
    }

    #[test]
    fn verification_parallel_equals_sequential(
        delta_tenths in -300i32..300,
        dfw_extra_tenths in -300i32..300,
        kpi_count in 1usize..4,
    ) {
        use cornet::stats::TimeSeries;
        use cornet::types::{Attributes, Inventory, NfType, Topology};
        use cornet::verifier::ChangeScope;

        let mut inv = Inventory::new();
        for i in 0..8 {
            inv.push(
                format!("n{i}"),
                NfType::ENodeB,
                Attributes::new().with("market", if i % 2 == 0 { "NYC" } else { "DFW" }),
            );
        }
        let mut topo = Topology::with_capacity(8);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId(i + 4));
        }
        let delta = delta_tenths as f64 / 10.0;
        let dfw_extra = dfw_extra_tenths as f64 / 10.0;
        let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, _: Option<usize>| {
            let kpi_salt = kpi.len() as f64 * 0.3;
            let values: Vec<f64> = (0..200u64)
                .map(|k| {
                    let minute = k * 60;
                    let wiggle = ((k * 11 + node.0 as u64 * 3) % 5) as f64 * 0.15;
                    let mut v = 100.0 + kpi_salt + wiggle;
                    if node.0 < 4 && minute >= 6000 {
                        v += delta;
                        if node.0 % 2 == 1 {
                            v += dfw_extra;
                        }
                    }
                    v
                })
                .collect();
            Some(TimeSeries::new(0, 60, values))
        });
        let mut rule = VerificationRule::standard(
            "equiv",
            (0..kpi_count)
                .map(|i| KpiQuery::expecting(format!("kpi{i}"), true, Expectation::Improve))
                .collect(),
        );
        rule.location_attributes = vec!["market".into()];
        let scope = ChangeScope::simultaneous(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 6000);
        let par = verify_rule(&adapter, &rule, &scope, &inv, &topo).unwrap();
        let seq = verify_rule_sequential(&adapter, &rule, &scope, &inv, &topo).unwrap();
        prop_assert_eq!(par.decision, seq.decision);
        prop_assert_eq!(par.kpis.len(), seq.kpis.len());
        for (p, s) in par.kpis.iter().zip(&seq.kpis) {
            prop_assert_eq!(p.overall.verdict, s.overall.verdict);
            prop_assert_eq!(p.overall.p_value.to_bits(), s.overall.p_value.to_bits());
            prop_assert_eq!(
                p.overall.relative_shift.to_bits(),
                s.overall.relative_shift.to_bits()
            );
            prop_assert_eq!(p.meets_expectation, s.meets_expectation);
            prop_assert_eq!(p.per_location.len(), s.per_location.len());
            for (pl, sl) in p.per_location.iter().zip(&s.per_location) {
                prop_assert_eq!((&pl.attribute, &pl.value), (&sl.attribute, &sl.value));
                match (&pl.analysis, &sl.analysis) {
                    (Ok(pa), Ok(sa)) => {
                        prop_assert_eq!(pa.verdict, sa.verdict);
                        prop_assert_eq!(pa.p_value.to_bits(), sa.p_value.to_bits());
                    }
                    (Err(pe), Err(se)) => prop_assert_eq!(pe, se),
                    other => prop_assert!(false, "ok/err mismatch: {:?}", other),
                }
            }
        }
    }
}
