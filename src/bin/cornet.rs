//! `cornet` — command-line front end to the composition framework.
//!
//! ```text
//! cornet catalog                      list the building-block catalog
//! cornet workflows                    list & validate the built-in workflows
//! cornet check <bundle.json> [--format json|sarif] [--deny warnings] [--baseline F]
//!              [--interference]   restrict to the CN06xx cross-campaign findings
//! cornet blast <bundle.json>          print each campaign's inferred blast radius
//! cornet lint  --intent F [--network SPEC]   lint a JSON intent
//! cornet plan  --intent F [--network SPEC] [--backend B] [--emit-mzn F] [--trace F]
//!              [--warm-from plan.json] [--save-plan plan.json]
//! cornet run   [--nodes N] [--concurrency C] [--trace F]   resilient roll-out demo
//! cornet run   --journal F [--crash-at N] [--fsync P]   journaled campaign (kill-safe)
//! cornet resume <journal> [--fsync P] [--trace F]   resume a crashed campaign
//! cornet verify [--shift D] [--trace F]      impact-verification demo
//! cornet verify --follow [--shift D] [--ticks N]   streaming verification demo
//! cornet demo                         run a miniature end-to-end cycle
//! cornet submit <bundle.json>         submit a campaign to a running cornetd
//! cornet status [id]                  list / inspect cornetd campaigns
//! cornet watch <id>                   follow a cornetd campaign's event stream
//! ```
//!
//! The daemon subcommands take `--daemon <addr>` (default `127.0.0.1:7171`)
//! and `--tenant <t>` (default `default`).
//!
//! `SPEC` is `ran:<nodes>` (default `ran:200`) or `cloud:<vces>`.
//! `--trace <file>` writes a Chrome-trace JSON (open in Perfetto or
//! `chrome://tracing`) and prints a span-level summary table.

use cornet::catalog::builtin_catalog;
use cornet::daemon::{DaemonClient, JournalScenario};
use cornet::netsim::{Network, NetworkConfig};
use cornet::obs::{write_trace, ChromeTraceSink, TraceSummary, Tracer};
use cornet::planner::{lint, plan, BackendChoice, PlanIntent, PlanOptions, PlanSnapshot};
use cornet::types::{NfType, NodeId};
use cornet::workflow::{validate, WarArtifact};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cornet <catalog|workflows|check|blast|lint|plan|run|resume|verify|demo|\n\
         \x20              submit|status|watch> [options]\n\
         \n\
         options:\n\
           --format <f>        (check) text | json | sarif  (default text)\n\
           --deny <class>      (check) also fail on warnings: --deny warnings\n\
           --baseline <file>   (check) suppress previously accepted findings\n\
           --interference      (check) only report CN06xx cross-campaign findings\n\
           --intent <file>     JSON intent (Listing 1 format)\n\
           --network <spec>    ran:<nodes> | cloud:<vces>   (default ran:200)\n\
           --backend <b>       exact | greedy | heuristic | portfolio | sharded (default exact)\n\
           --heuristic         alias for --backend heuristic\n\
           --warm-from <file>  (plan) seed the solver from a prior --save-plan snapshot\n\
           --save-plan <file>  (plan) write the plan as a warm-startable snapshot\n\
           --emit-mzn <file>   write the generated MiniZinc model\n\
           --time-limit <s>    solver budget in seconds (default 5)\n\
           --trace <file>      write a Chrome-trace JSON + print a span summary\n\
           --nodes <n>         (run) roll-out size (default 50)\n\
           --concurrency <c>   (run) parallel workflow instances (default 4)\n\
           --journal <file>    (run) write a durable campaign journal\n\
           --crash-at <n>      (run --journal) kill the campaign at node n's upgrade\n\
           --fsync <policy>    (run --journal, resume) always | every-n=N | never\n\
           \x20                                        (default every-n=64)\n\
           --shift <d>         (verify) injected KPI shift on study nodes (default 15)\n\
           --follow            (verify) stream the feed sample-by-sample online\n\
           --ticks <n>         (verify --follow) samples per stream (default 200)\n\
           --daemon <addr>     (submit/status/watch) cornetd address (default 127.0.0.1:7171)\n\
           --tenant <t>        (submit/status/watch) tenant identity  (default default)"
    );
    ExitCode::from(2)
}

/// Build the tracer for a command: collecting when `--trace` was given,
/// noop (zero overhead) otherwise.
fn tracer_for(flags: &BTreeMap<String, String>) -> Tracer {
    if flags.contains_key("trace") {
        Tracer::wall()
    } else {
        Tracer::noop()
    }
}

/// If `--trace <path>` was given, export the collected spans as a Chrome
/// trace and print the span-level summary.
fn finish_trace(flags: &BTreeMap<String, String>, tracer: &Tracer) -> Result<(), String> {
    let Some(path) = flags.get("trace") else {
        return Ok(());
    };
    let trace = tracer.snapshot();
    write_trace(path, &ChromeTraceSink, &trace).map_err(|e| format!("writing {path}: {e}"))?;
    print!("{}", TraceSummary::from_trace(&trace).render());
    println!("trace written to {path} (open in Perfetto or chrome://tracing)");
    Ok(())
}

fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if it.peek().is_some_and(|n| !n.starts_with("--")) {
                it.next().unwrap().clone()
            } else {
                "true".to_string()
            };
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn build_network(spec: &str) -> Result<Network, String> {
    let (kind, size) = spec.split_once(':').unwrap_or((spec, "200"));
    let size: usize = size
        .parse()
        .map_err(|_| format!("bad network size in {spec:?}"))?;
    match kind {
        "ran" => Ok(Network::generate_ran(
            &NetworkConfig::default().with_target_nodes(size),
        )),
        "cloud" => Ok(Network::generate_cloud(1, size, 3)),
        other => Err(format!(
            "unknown network kind {other:?} (want ran: or cloud:)"
        )),
    }
}

fn scope_nodes(net: &Network) -> Vec<NodeId> {
    let mut nodes = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    if nodes.is_empty() {
        nodes = net.nodes_of_type(NfType::VceRouter);
    }
    nodes.sort();
    nodes
}

fn load_intent(flags: &BTreeMap<String, String>) -> Result<PlanIntent, String> {
    let path = flags.get("intent").ok_or("--intent <file> is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    PlanIntent::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_catalog() -> ExitCode {
    let cat = builtin_catalog();
    println!("{:<28} {:<22} {:<3} function", "block", "phase", "agn");
    for b in cat.iter() {
        println!(
            "{:<28} {:<22} {:<3} {}",
            b.name,
            b.phase.to_string(),
            if b.nf_agnostic { "✓" } else { "✗" },
            b.function
        );
    }
    ExitCode::SUCCESS
}

fn cmd_workflows() -> ExitCode {
    use cornet::workflow::builtin::*;
    let cat = builtin_catalog();
    for wf in [
        software_upgrade_workflow(&cat),
        config_change_workflow(&cat),
        vce_download_workflow(&cat),
        vce_activate_workflow(&cat),
        sdwan_upgrade_workflow(&cat),
        schedule_planning_workflow(&cat),
        impact_verification_workflow(&cat),
    ] {
        let rep = validate(&wf, &cat);
        let war = WarArtifact::package(&wf, &cat);
        println!(
            "{:<26} nodes={:<2} blocks={:<2} valid={} rest={}",
            wf.name,
            wf.nodes.len(),
            wf.blocks().len(),
            rep.is_valid(),
            war.map(|w| w.manifest.rest_api)
                .unwrap_or_else(|e| format!("({e})")),
        );
    }
    ExitCode::SUCCESS
}

/// `cornet check` — run every static-analysis pass over a MOP bundle and
/// gate on the result: exit 0 when clean (modulo baseline), 1 when
/// errors (or, under `--deny warnings`, warnings) remain, 2 on usage or
/// load errors. The paper's pre-deployment verification step as a CI
/// command.
fn cmd_check(path: Option<&str>, flags: &BTreeMap<String, String>) -> ExitCode {
    use cornet::analysis::Baseline;
    use cornet::core::{check, load_bundle};

    let Some(path) = path else {
        eprintln!(
            "usage: cornet check <bundle.json> [--format json|sarif] [--deny warnings] \
             [--baseline <file>] [--interference]"
        );
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let bundle = match load_bundle(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {path} is not a valid bundle: {e}");
            return ExitCode::from(2);
        }
    };
    let mut report = check(&bundle);
    if flags.contains_key("interference") {
        report
            .diagnostics
            .retain(|d| d.code.category() == "interference");
    }
    if let Some(baseline_path) = flags.get("baseline") {
        let body = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: reading {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        match Baseline::from_jsonl(&body) {
            Ok(baseline) => {
                let dropped = baseline.suppress(&mut report);
                if dropped > 0 {
                    eprintln!("{dropped} finding(s) suppressed by {baseline_path}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let deny_warnings = flags.get("deny").is_some_and(|d| d == "warnings");
    match flags.get("format").map(String::as_str).unwrap_or("text") {
        "json" => print!("{}", report.render_jsonl()),
        "sarif" => println!("{}", report.render_sarif()),
        "text" => {
            if report.diagnostics.is_empty() {
                println!(
                    "bundle is clean: {} workflow(s), {} rule(s), {} campaign(s) checked",
                    bundle.workflows.len(),
                    bundle.rules.len(),
                    bundle.campaigns.len(),
                );
            } else {
                print!("{}", report.render_text());
            }
        }
        other => {
            eprintln!("error: unknown --format {other:?} (want text, json, or sarif)");
            return ExitCode::from(2);
        }
    }
    if report.passes_gate(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `cornet blast` — print each campaign's statically inferred blast
/// radius (which state dimensions of which nodes it may touch, in which
/// windows) and any cross-campaign interference. Exit 0 when no
/// interference errors, 1 when the campaigns conflict, 2 on load errors.
fn cmd_blast(path: Option<&str>, flags: &BTreeMap<String, String>) -> ExitCode {
    use cornet::core::blast::{analyze_interference, campaign_blasts, render_blast_text};
    use cornet::core::load_bundle;

    let Some(path) = path else {
        eprintln!("usage: cornet blast <bundle.json> [--format json]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let bundle = match load_bundle(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {path} is not a valid bundle: {e}");
            return ExitCode::from(2);
        }
    };
    let blasts = campaign_blasts(&bundle);
    let mut report = cornet::analysis::Report::new();
    analyze_interference(&bundle, &mut report);
    report.sort();
    if flags.get("format").map(String::as_str) == Some("json") {
        for b in &blasts {
            println!("{}", b.render_json());
        }
    } else {
        if blasts.is_empty() {
            println!("bundle declares no campaigns: nothing to blast-analyze");
        } else {
            print!("{}", render_blast_text(&blasts));
        }
        if !report.is_clean() {
            println!("\ninterference findings:");
            print!("{}", report.render_text());
        }
    }
    if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_lint(flags: &BTreeMap<String, String>) -> ExitCode {
    let intent = match load_intent(flags) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match build_network(
        flags
            .get("network")
            .map(String::as_str)
            .unwrap_or("ran:200"),
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = scope_nodes(&net);
    match lint(&intent, &net.inventory, &nodes) {
        Ok(report) => {
            if report.findings.is_empty() {
                println!("intent is clean ({} nodes in scope)", nodes.len());
            }
            for f in &report.findings {
                println!("{:?}: [{}] {}", f.level, f.code, f.message);
            }
            if report.is_plannable() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_plan(flags: &BTreeMap<String, String>) -> ExitCode {
    let intent = match load_intent(flags) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match build_network(
        flags
            .get("network")
            .map(String::as_str)
            .unwrap_or("ran:200"),
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = scope_nodes(&net);

    // Lint first — the paper's adoption lesson: surprises at plan time
    // erode operator trust. A lint failure is itself a refusal: planning
    // an unlintable intent would bypass the safety gate.
    match lint(&intent, &net.inventory, &nodes) {
        Ok(report) => {
            for f in &report.findings {
                eprintln!("lint {:?}: [{}] {}", f.level, f.code, f.message);
            }
            if !report.is_plannable() {
                eprintln!("refusing to plan: fix the errors above");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("refusing to plan: lint failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // `--heuristic` is a compatibility alias for `--backend heuristic`;
    // every backend now runs through the same plan() pipeline.
    let backend_name = if flags.contains_key("heuristic") {
        "heuristic"
    } else {
        flags.get("backend").map(String::as_str).unwrap_or("exact")
    };
    let backend = match BackendChoice::parse(backend_name) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let warm_from = match flags.get("warm-from") {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|json| PlanSnapshot::from_json(&json).map_err(|e| e.to_string()))
        {
            Ok(snapshot) => Some(snapshot),
            Err(e) => {
                eprintln!("error: --warm-from: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let secs: u64 = flags
        .get("time-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let tracer = tracer_for(flags);
    let options = PlanOptions {
        solver: cornet::solver::SolverConfig {
            time_limit: std::time::Duration::from_secs(secs),
            ..Default::default()
        },
        backend,
        tracer: tracer.clone(),
        warm_from,
        ..Default::default()
    };
    match plan(&intent, &net.inventory, &net.topology, &nodes, &options) {
        Ok(result) => {
            println!(
                "schedule[{}]: {} scheduled, {} leftovers, {} conflicts, makespan {}, {:?}, discovered in {:?}",
                result.backend.name(),
                result.schedule.scheduled_count(),
                result.schedule.leftovers.len(),
                result.schedule.conflicts,
                result.makespan(),
                result.outcome,
                result.discovery_time,
            );
            if let Some(reuse) = result.warm_reuse {
                println!(
                    "  warm start: {:.1}% of units reused from the prior plan",
                    reuse * 100.0
                );
            }
            for run in &result.backend_runs {
                println!(
                    "  backend {}{}{}: {:?}, cost {}, {} nodes in {:?}",
                    run.backend,
                    run.shard
                        .map_or_else(String::new, |s| format!("[shard {s}]")),
                    if run.winner { " (winner)" } else { "" },
                    run.outcome,
                    run.cost.map_or_else(|| "-".into(), |c| c.to_string()),
                    run.stats.nodes,
                    run.elapsed,
                );
            }
            if let Some(path) = flags.get("save-plan") {
                let snapshot = PlanSnapshot::capture(&result, &net.inventory);
                if let Err(e) = std::fs::write(path, snapshot.to_json()) {
                    eprintln!("writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("plan snapshot written to {path} (re-solve with --warm-from)");
            }
            if let Some(path) = flags.get("emit-mzn") {
                match cornet::planner::translate(
                    &intent,
                    &net.inventory,
                    &net.topology,
                    &nodes,
                    &Default::default(),
                ) {
                    Ok(t) => {
                        if let Err(e) = std::fs::write(path, t.model.to_minizinc()) {
                            eprintln!("writing {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("MiniZinc model written to {path}");
                    }
                    Err(e) => eprintln!("translation for --emit-mzn failed: {e}"),
                }
            }
            if let Err(e) = finish_trace(flags, &tracer) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("planning failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The journaled demo scenario — the shared [`JournalScenario`] defaults
/// with `--nodes` / `--concurrency` overrides applied.
fn scenario_from_flags(flags: &BTreeMap<String, String>) -> JournalScenario {
    let mut s = JournalScenario::default();
    if let Some(n) = flags.get("nodes").and_then(|v| v.parse().ok()) {
        s.nodes = n;
    }
    if let Some(c) = flags.get("concurrency").and_then(|v| v.parse().ok()) {
        s.concurrency = c;
    }
    s
}

/// `--fsync always|every-n=N|never`, defaulting to `every-n=64`.
fn fsync_from_flags(
    flags: &BTreeMap<String, String>,
) -> Result<cornet::journal::FsyncPolicy, String> {
    use cornet::journal::FsyncPolicy;
    match flags.get("fsync") {
        Some(text) => FsyncPolicy::parse(text).map_err(|e| e.to_string()),
        None => Ok(FsyncPolicy::EveryN(64)),
    }
}

/// `cornet run --journal <path>` — the kill-safe variant of the roll-out
/// demo: one journaled fault-storm campaign. With `--crash-at <n>` the
/// simulated process dies at node n's first upgrade invocation (the
/// journal freezes mid-campaign, exactly as a SIGKILL would leave it);
/// `cornet resume <path>` then finishes the campaign and must print the
/// same fingerprint as an uninterrupted run.
fn cmd_run_journaled(flags: &BTreeMap<String, String>, path: &str) -> ExitCode {
    use cornet::journal::Journal;
    use cornet::orchestrator::Dispatcher;

    let scenario = scenario_from_flags(flags);
    let tracer = tracer_for(flags);
    let fsync = match fsync_from_flags(flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let journal = match Journal::create(path, fsync) {
        Ok(j) => j.with_tracer(tracer.clone()),
        Err(e) => {
            eprintln!("error: creating journal {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let switch = journal.crash_switch();
    let crash_at: Option<u32> = flags.get("crash-at").and_then(|s| s.parse().ok());
    let reg = scenario.registry(crash_at.map(|n| (n, switch.clone())), None);
    let war = match scenario.war() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "=== journaled campaign: {} nodes, {}% transient faults, journal {path} ===",
        scenario.nodes,
        scenario.fault_rate_milli / 10,
    );
    let breaker = scenario.breaker();
    let result = Dispatcher::new(war, reg, scenario.concurrency)
        .map(|d| d.with_tracer(tracer.clone()))
        .map(|d| d.with_journal(journal, scenario.meta()))
        .and_then(|d| d.run_with_breaker(&scenario.schedule(), JournalScenario::inputs, &breaker));
    let (report, trip) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dispatch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if switch.is_dead() {
        println!(
            "simulated crash at node {}: journal frozen mid-campaign; \
             run 'cornet resume {path}' to finish",
            crash_at.unwrap_or_default(),
        );
    } else {
        println!("{}", JournalScenario::summary_line(&report, trip.as_ref()));
    }
    if let Err(e) = finish_trace(flags, &tracer) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `cornet resume <journal>` — recover a journaled campaign: replay every
/// completed block without re-executing it, re-admit interrupted
/// instances, and finish the remaining work. Prints the same summary
/// line (including fingerprint) a clean uninterrupted run prints.
fn cmd_resume(path: Option<&str>, flags: &BTreeMap<String, String>) -> ExitCode {
    use cornet::journal::Journal;
    use cornet::orchestrator::{recover_campaign, Dispatcher};

    let Some(path) = path else {
        eprintln!("usage: cornet resume <journal> [--fsync P] [--trace F]");
        return ExitCode::from(2);
    };
    let fsync = match fsync_from_flags(flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let campaign = match Journal::read(path)
        .and_then(|(events, recovery)| recover_campaign(&events, recovery))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: reading journal {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match JournalScenario::from_meta(&campaign.meta) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let tracer = tracer_for(flags);
    let reg = scenario.registry(None, None);
    let war = match scenario.war() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "=== resuming campaign from {path}: {} instance(s) already complete, {} in flight ===",
        campaign.completed.len(),
        campaign.partial.len(),
    );
    let breaker = scenario.breaker();
    let result = Dispatcher::new(war, reg, scenario.concurrency)
        .map(|d| d.with_tracer(tracer.clone()))
        .and_then(|d| d.resume_from_journal(path, fsync, JournalScenario::inputs, Some(&breaker)));
    let (report, trip) = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("resume failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", JournalScenario::summary_line(&report, trip.as_ref()));
    if let Err(e) = finish_trace(flags, &tracer) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `cornet run` — the resilient roll-out demo: a staggered software
/// upgrade first through a 20% transient-fault storm (absorbed by
/// retries), then against a permanent fault with the circuit breaker
/// armed and a backout flow attached. With `--trace` every dispatch,
/// slot, instance, block, and backout span lands in one Chrome trace.
/// With `--journal <path>` the demo switches to a single journaled
/// campaign (see [`cmd_run_journaled`]).
fn cmd_run(flags: &BTreeMap<String, String>) -> ExitCode {
    if let Some(path) = flags.get("journal") {
        return cmd_run_journaled(flags, &path.clone());
    }
    use cornet::orchestrator::resilience::{
        CircuitBreaker, FaultPlan, FaultyExecutor, RetryPolicy,
    };
    use cornet::orchestrator::{BlockStatus, DispatchReport, Dispatcher, ExecutorRegistry};
    use cornet::types::{ParamValue, Schedule, Timeslot};
    use cornet::workflow::builtin::software_upgrade_workflow;
    use cornet::workflow::Designer;

    const SEED: u64 = 42;
    let nodes: u32 = flags
        .get("nodes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let concurrency: usize = flags
        .get("concurrency")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let tracer = tracer_for(flags);

    let happy_registry = || {
        let mut reg = ExecutorRegistry::new();
        reg.register("health_check", |s| {
            s.insert("healthy".into(), ParamValue::from(true));
            Ok(())
        });
        reg.register("software_upgrade", |s| {
            s.insert("previous_version".into(), ParamValue::from("19.3"));
            Ok(())
        });
        reg.register("pre_post_comparison", |s| {
            s.insert("passed".into(), ParamValue::from(true));
            Ok(())
        });
        reg.register("roll_back", |_| Ok(()));
        reg
    };
    let schedule = {
        let mut s = Schedule::default();
        for i in 0..nodes {
            s.assignments.insert(NodeId(i), Timeslot(i / 10 + 1));
        }
        s
    };
    let inputs = |node: NodeId| {
        let mut g = cornet::orchestrator::GlobalState::new();
        g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
        g.insert("software_version".into(), ParamValue::from("20.1"));
        g
    };
    let summarize = |report: &DispatchReport| {
        let (mut recovered, mut attempts) = (0usize, 0u32);
        for b in report.instances.iter().flat_map(|i| &i.blocks) {
            attempts += b.attempts;
            if matches!(b.status, BlockStatus::Recovered { .. }) {
                recovered += 1;
            }
        }
        println!(
            "  {} instances: {} completed, {} failed, {} rolled back; \
             {recovered} blocks recovered via retry ({attempts} attempts)",
            report.instances.len(),
            report.completed(),
            report.failures().len(),
            report.rolled_back(),
        );
    };
    let cat = builtin_catalog();

    // Scenario 1: transient faults, absorbed by retries.
    println!("=== {nodes} nodes, 20% transient faults, 6-attempt retries ===");
    let war = match WarArtifact::package(&software_upgrade_workflow(&cat), &cat) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::transient(SEED, 0.20).with_latency_ms(12),
    );
    reg.set_default_retry_policy(RetryPolicy::with_attempts(6));
    let report = match Dispatcher::new(war, reg, concurrency)
        .map(|d| d.with_tracer(tracer.clone()))
        .and_then(|d| d.run(&schedule, inputs))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dispatch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    summarize(&report);

    // Scenario 2: permanent fault → breaker trip + backout flows.
    println!("=== permanent fault on software_upgrade, breaker armed ===");
    let mut wf = software_upgrade_workflow(&cat);
    let mut d = Designer::new(&cat, "backout");
    let s = d.start();
    let rb = d.task("roll_back").unwrap();
    let e = d.end();
    d.connect(s, rb).connect(rb, e);
    wf.set_backout(d.build());
    let war = match WarArtifact::package(&wf, &cat) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reg = FaultyExecutor::wrap(
        &happy_registry(),
        &FaultPlan::permanent_on(SEED, 1.0, "software_upgrade"),
    );
    reg.set_default_retry_policy(RetryPolicy::with_attempts(3));
    let breaker = CircuitBreaker {
        failure_threshold: 0.5,
        min_samples: 5,
    };
    let (report, trip) = match Dispatcher::new(war, reg, concurrency)
        .map(|d| d.with_tracer(tracer.clone()))
        .and_then(|d| d.run_with_breaker(&schedule, inputs, &breaker))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dispatch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    summarize(&report);
    match trip {
        Some(t) => println!(
            "  breaker tripped on '{}': {:.0}% failure rate over {} samples; {} nodes spared",
            t.block,
            t.failure_rate * 100.0,
            t.samples,
            nodes as usize - report.instances.len(),
        ),
        None => println!("  breaker never tripped"),
    }

    if let Err(e) = finish_trace(flags, &tracer) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `cornet verify` — the impact-verification demo: a synthetic KPI feed
/// where study nodes shift by `--shift` after the change, verified
/// against a topology-derived control group. With `--trace` every
/// verify.rule / verify.unit span and the series-cache counters land in
/// the Chrome trace.
fn cmd_verify(flags: &BTreeMap<String, String>) -> ExitCode {
    use cornet::stats::TimeSeries;
    use cornet::types::{Attributes, Inventory, Topology};
    use cornet::verifier::{
        verify_rules_traced, ChangeScope, ClosureAdapter, Expectation, GoNoGo, KpiQuery,
        VerificationRule,
    };

    if flags.contains_key("follow") {
        return cmd_verify_follow(flags);
    }
    let shift: f64 = flags
        .get("shift")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15.0);
    let tracer = tracer_for(flags);

    // 8 study nodes across two markets + 8 controls, linked pairwise.
    let mut inv = Inventory::new();
    for i in 0..16 {
        inv.push(
            format!("enb-{i}"),
            NfType::ENodeB,
            Attributes::new().with("market", if i % 2 == 0 { "NYC" } else { "DFW" }),
        );
    }
    let mut topo = Topology::with_capacity(16);
    for i in 0..8u32 {
        topo.add_edge(NodeId(i), NodeId(i + 8));
    }
    let change_minute = 6000u64;
    let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, _: Option<usize>| {
        let downward_good = kpi == "latency_ms";
        let values: Vec<f64> = (0..200u64)
            .map(|k| {
                let minute = k * 60;
                let wiggle = ((k * 11 + node.0 as u64 * 3) % 5) as f64 * 0.15;
                let mut v = 100.0 + wiggle;
                if node.0 < 8 && minute >= change_minute {
                    v += if downward_good { -shift } else { shift };
                }
                v
            })
            .collect();
        Some(TimeSeries::new(0, 60, values))
    });
    let study: Vec<NodeId> = (0..8).map(NodeId).collect();
    let scope = ChangeScope::simultaneous(&study, change_minute);
    let mut rule = VerificationRule::standard(
        "post-upgrade",
        vec![
            KpiQuery::expecting("throughput_mbps", true, Expectation::Improve),
            KpiQuery::expecting("latency_ms", false, Expectation::Improve),
        ],
    );
    rule.location_attributes = vec!["market".into()];

    let reports = match verify_rules_traced(&adapter, &[rule], &scope, &inv, &topo, &tracer, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut no_go = false;
    for report in &reports {
        println!(
            "rule '{}': {:?} ({} KPIs, verified in {:?})",
            report.rule,
            report.decision,
            report.kpis.len(),
            report.duration,
        );
        for kr in &report.kpis {
            println!(
                "  {:<16} {:?} (p={:.4}, shift {:+.1}%) expectation met: {}",
                kr.query.kpi,
                kr.overall.verdict,
                kr.overall.p_value,
                kr.overall.relative_shift * 100.0,
                kr.meets_expectation,
            );
        }
        for (kpi, attr, value) in report.problem_locations() {
            println!("  problem location: {kpi} @ {attr}={value}");
        }
        no_go |= report.decision == GoNoGo::NoGo;
    }
    if let Err(e) = finish_trace(flags, &tracer) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if no_go {
        println!("decision: NO-GO — halt the roll-out");
        ExitCode::FAILURE
    } else {
        println!("decision: GO");
        ExitCode::SUCCESS
    }
}

/// `cornet verify --follow` — the streaming demo: the same synthetic
/// roll-out as `cornet verify`, but delivered sample-by-sample through
/// the online engine. Live changepoint detections print as the feed
/// advances; the final verdicts are checked bit-for-bit against a batch
/// re-verification of the identical series.
fn cmd_verify_follow(flags: &BTreeMap<String, String>) -> ExitCode {
    use cornet::stats::TimeSeries;
    use cornet::types::{Attributes, Inventory, Topology};
    use cornet::verifier::{
        verify_rules, ChangeScope, ClosureAdapter, Expectation, GoNoGo, KpiQuery, StreamConfig,
        StreamSample, StreamingVerifier, VerificationRule,
    };

    let shift: f64 = flags
        .get("shift")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15.0);
    let ticks: u64 = flags
        .get("ticks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let tracer = tracer_for(flags);

    let mut inv = Inventory::new();
    for i in 0..16 {
        inv.push(
            format!("enb-{i}"),
            NfType::ENodeB,
            Attributes::new().with("market", if i % 2 == 0 { "NYC" } else { "DFW" }),
        );
    }
    let mut topo = Topology::with_capacity(16);
    for i in 0..8u32 {
        topo.add_edge(NodeId(i), NodeId(i + 8));
    }
    let change_minute = 6000u64;
    let value_at = move |node: NodeId, kpi: &str, k: u64| {
        let downward_good = kpi == "latency_ms";
        let minute = k * 60;
        let wiggle = ((k * 11 + node.0 as u64 * 3) % 5) as f64 * 0.15;
        let mut v = 100.0 + wiggle;
        if node.0 < 8 && minute >= change_minute {
            v += if downward_good { -shift } else { shift };
        }
        v
    };
    let study: Vec<NodeId> = (0..8).map(NodeId).collect();
    let scope = ChangeScope::simultaneous(&study, change_minute);
    let rule = || {
        let mut rule = VerificationRule::standard(
            "post-upgrade",
            vec![
                KpiQuery::expecting("throughput_mbps", true, Expectation::Improve),
                KpiQuery::expecting("latency_ms", false, Expectation::Improve),
            ],
        );
        rule.location_attributes = vec!["market".into()];
        rule
    };
    let engine = StreamingVerifier::new(
        vec![rule()],
        scope.clone(),
        inv.clone(),
        topo.clone(),
        StreamConfig::default(),
        tracer.clone(),
    );

    println!("following synthetic feed: 16 streams x 2 KPIs, {ticks} samples each");
    for k in 0..ticks {
        for n in 0..16u32 {
            for kpi in ["throughput_mbps", "latency_ms"] {
                engine.offer(StreamSample {
                    node: NodeId(n),
                    kpi: kpi.to_string(),
                    carrier: None,
                    minute: k * 60,
                    value: value_at(NodeId(n), kpi, k),
                });
            }
        }
        engine.pump();
        for d in engine.take_detections() {
            println!(
                "  detected: {:<16} node {:>2} @ minute {:>6} (x{} timescale, delta {:+.2}, score {:.1})",
                d.kpi, d.node.0, d.minute, d.timescale, d.delta, d.score
            );
        }
    }
    let stats = engine.stats();
    println!(
        "ingested {} samples ({} shed, {} rejected), {} raw detections",
        stats.processed, stats.shed, stats.rejected, stats.detections
    );
    if let Some(p99) = engine.detection_latency_quantile(0.99) {
        println!("per-sample detection latency p99: {:.3} ms", p99 * 1e3);
    }

    let streamed = match engine.poll_verdicts() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut no_go = false;
    for report in &streamed {
        println!(
            "rule '{}': {:?} ({} KPIs, verified in {:?})",
            report.rule,
            report.decision,
            report.kpis.len(),
            report.duration,
        );
        for kr in &report.kpis {
            println!(
                "  {:<16} {:?} (p={:.4}, shift {:+.1}%) expectation met: {}",
                kr.query.kpi,
                kr.overall.verdict,
                kr.overall.p_value,
                kr.overall.relative_shift * 100.0,
                kr.meets_expectation,
            );
        }
        no_go |= report.decision == GoNoGo::NoGo;
    }

    // Cross-check: a batch verification over the identical series must
    // agree bit-for-bit (the streaming engine's core promise).
    let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, _: Option<usize>| {
        Some(TimeSeries::new(
            0,
            60,
            (0..ticks).map(|k| value_at(node, kpi, k)).collect(),
        ))
    });
    let consistent = match verify_rules(&adapter, &[rule()], &scope, &inv, &topo) {
        Ok(batch) => {
            streamed.len() == batch.len()
                && streamed.iter().zip(&batch).all(|(s, b)| {
                    s.decision == b.decision
                        && s.kpis.iter().zip(&b.kpis).all(|(sk, bk)| {
                            sk.overall.verdict == bk.overall.verdict
                                && sk.overall.p_value.to_bits() == bk.overall.p_value.to_bits()
                        })
                })
        }
        Err(e) => {
            eprintln!("batch cross-check failed: {e}");
            false
        }
    };
    println!(
        "batch replay cross-check: {}",
        if consistent {
            "verdicts identical"
        } else {
            "MISMATCH"
        }
    );
    if let Err(e) = finish_trace(flags, &tracer) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if !consistent || no_go {
        println!("decision: NO-GO — halt the roll-out");
        ExitCode::FAILURE
    } else {
        println!("decision: GO");
        ExitCode::SUCCESS
    }
}

fn cmd_demo() -> ExitCode {
    use cornet::core::{testbed_registry, Cornet};
    use cornet::netsim::{Testbed, TestbedConfig};
    use cornet::orchestrator::GlobalState;
    use cornet::types::ParamValue;
    use cornet::workflow::builtin::software_upgrade_workflow;

    let net = Network::generate_cloud(1, 6, 1);
    let tb = Testbed::new(TestbedConfig::default());
    let vces: Vec<NodeId> = net
        .inventory
        .iter()
        .filter(|r| r.nf_type == NfType::VceRouter)
        .map(|r| {
            tb.instantiate(&r.name, r.nf_type, "16.9");
            r.id
        })
        .collect();
    let cornet = Cornet::new(
        net.inventory.clone(),
        net.topology,
        testbed_registry(tb.clone()),
    );
    let war = cornet
        .deploy_workflow(&software_upgrade_workflow(&cornet.catalog))
        .expect("builtin workflow deploys");
    let intent = r#"{
        "scheduling_window": {"start": "2020-07-01 00:00:00",
                               "end": "2020-07-05 23:59:00",
                               "granularity": {"metric": "day", "value": 1}},
        "maintenance_window": {"start": "0:00", "end": "6:00"},
        "schedulable_attribute": "common_id",
        "conflict_attribute": "common_id",
        "constraints": [
            {"name": "concurrency", "base_attribute": "common_id",
             "operator": "<=", "granularity": {"metric": "day", "value": 1},
             "default_capacity": 2}
        ]
    }"#;
    let result = cornet
        .plan_from_json(intent, &vces, &PlanOptions::default())
        .expect("demo intent plans");
    println!(
        "planned {} vCEs over {} nights",
        result.schedule.scheduled_count(),
        result.makespan()
    );
    let inv = &cornet.inventory;
    let report = cornet
        .dispatch(&war, &result.schedule, 2, |node| {
            let mut g = GlobalState::new();
            g.insert(
                "node".into(),
                ParamValue::from(inv.record(node).name.clone()),
            );
            g.insert("software_version".into(), ParamValue::from("17.3"));
            g
        })
        .expect("dispatch runs");
    println!(
        "executed {} workflow instances, {} completed",
        report.instances.len(),
        report.completed()
    );
    for &v in &vces {
        let name = &cornet.inventory.record(v).name;
        println!("  {name}: {}", tb.state(name).unwrap().sw_version);
    }
    ExitCode::SUCCESS
}

/// The daemon client for the `--daemon` / `--tenant` flags.
fn daemon_client(flags: &BTreeMap<String, String>) -> DaemonClient {
    let addr = flags
        .get("daemon")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7171");
    let tenant = flags.get("tenant").map(String::as_str).unwrap_or("default");
    DaemonClient::new(addr, tenant)
}

/// `cornet submit <bundle.json>` — submit a MOP bundle to a running
/// `cornetd`. The daemon runs the `cornet check` gate before accepting;
/// a bundle with error diagnostics is refused (HTTP 422) and the
/// diagnostics are printed, one JSON line each.
fn cmd_submit(path: Option<&str>, flags: &BTreeMap<String, String>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("usage: cornet submit <bundle.json> [--daemon A] [--tenant T]");
        return ExitCode::from(2);
    };
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match daemon_client(flags).post("/v1/campaigns", &body) {
        Ok(resp) if resp.status == 201 => {
            println!("{}", resp.body.trim_end());
            ExitCode::SUCCESS
        }
        Ok(resp) if resp.status == 422 => {
            eprintln!("bundle refused by the pre-deploy check gate:");
            for line in resp.body.lines().filter(|l| !l.trim().is_empty()) {
                eprintln!("  {line}");
            }
            ExitCode::FAILURE
        }
        Ok(resp) if resp.status == 409 => {
            eprintln!("bundle refused: it interferes with a live campaign:");
            for line in resp.body.lines().filter(|l| !l.trim().is_empty()) {
                eprintln!("  {line}");
            }
            ExitCode::FAILURE
        }
        Ok(resp) => {
            eprintln!("error: HTTP {}: {}", resp.status, resp.body.trim_end());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cornet status [id]` — list the tenant's campaigns, or inspect one.
fn cmd_status(id: Option<&str>, flags: &BTreeMap<String, String>) -> ExitCode {
    let path = match id {
        Some(id) => format!("/v1/campaigns/{id}"),
        None => "/v1/campaigns".to_string(),
    };
    match daemon_client(flags).get(&path) {
        Ok(resp) if resp.status == 200 => {
            println!("{}", resp.body.trim_end());
            ExitCode::SUCCESS
        }
        Ok(resp) => {
            eprintln!("error: HTTP {}: {}", resp.status, resp.body.trim_end());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cornet watch <id>` — follow a campaign's journal event stream
/// (JSONL) until the campaign reaches a terminal phase.
fn cmd_watch(id: Option<&str>, flags: &BTreeMap<String, String>) -> ExitCode {
    let Some(id) = id else {
        eprintln!("usage: cornet watch <id> [--daemon A] [--tenant T]");
        return ExitCode::from(2);
    };
    let path = format!("/v1/campaigns/{id}/events?follow=1");
    // Stop (don't panic) when stdout goes away, e.g. `cornet watch | head`.
    use std::io::Write;
    let mut out = std::io::stdout();
    match daemon_client(flags).stream(&path, |line| writeln!(out, "{line}").is_ok()) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "catalog" => cmd_catalog(),
        "workflows" => cmd_workflows(),
        "check" => cmd_check(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        "blast" => cmd_blast(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        "lint" => cmd_lint(&flags),
        "plan" => cmd_plan(&flags),
        "run" => cmd_run(&flags),
        "resume" => cmd_resume(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        "verify" => cmd_verify(&flags),
        "demo" => cmd_demo(),
        "submit" => cmd_submit(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        "status" => cmd_status(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        "watch" => cmd_watch(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        _ => usage(),
    }
}
