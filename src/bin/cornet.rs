//! `cornet` — command-line front end to the composition framework.
//!
//! ```text
//! cornet catalog                      list the building-block catalog
//! cornet workflows                    list & validate the built-in workflows
//! cornet lint  --intent F [--network SPEC]   lint a JSON intent
//! cornet plan  --intent F [--network SPEC] [--backend B] [--emit-mzn F]
//! cornet demo                         run a miniature end-to-end cycle
//! ```
//!
//! `SPEC` is `ran:<nodes>` (default `ran:200`) or `cloud:<vces>`.

use cornet::catalog::builtin_catalog;
use cornet::netsim::{Network, NetworkConfig};
use cornet::planner::{lint, plan, BackendChoice, PlanIntent, PlanOptions};
use cornet::types::{NfType, NodeId};
use cornet::workflow::{validate, WarArtifact};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cornet <catalog|workflows|lint|plan|demo> [options]\n\
         \n\
         options:\n\
           --intent <file>     JSON intent (Listing 1 format)\n\
           --network <spec>    ran:<nodes> | cloud:<vces>   (default ran:200)\n\
           --backend <b>       exact | greedy | heuristic | portfolio (default exact)\n\
           --heuristic         alias for --backend heuristic\n\
           --emit-mzn <file>   write the generated MiniZinc model\n\
           --time-limit <s>    solver budget in seconds (default 5)"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if it.peek().is_some_and(|n| !n.starts_with("--")) {
                it.next().unwrap().clone()
            } else {
                "true".to_string()
            };
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn build_network(spec: &str) -> Result<Network, String> {
    let (kind, size) = spec.split_once(':').unwrap_or((spec, "200"));
    let size: usize = size
        .parse()
        .map_err(|_| format!("bad network size in {spec:?}"))?;
    match kind {
        "ran" => Ok(Network::generate_ran(
            &NetworkConfig::default().with_target_nodes(size),
        )),
        "cloud" => Ok(Network::generate_cloud(1, size, 3)),
        other => Err(format!(
            "unknown network kind {other:?} (want ran: or cloud:)"
        )),
    }
}

fn scope_nodes(net: &Network) -> Vec<NodeId> {
    let mut nodes = net.nodes_of_type(NfType::ENodeB);
    nodes.extend(net.nodes_of_type(NfType::GNodeB));
    if nodes.is_empty() {
        nodes = net.nodes_of_type(NfType::VceRouter);
    }
    nodes.sort();
    nodes
}

fn load_intent(flags: &BTreeMap<String, String>) -> Result<PlanIntent, String> {
    let path = flags.get("intent").ok_or("--intent <file> is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    PlanIntent::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_catalog() -> ExitCode {
    let cat = builtin_catalog();
    println!("{:<28} {:<22} {:<3} function", "block", "phase", "agn");
    for b in cat.iter() {
        println!(
            "{:<28} {:<22} {:<3} {}",
            b.name,
            b.phase.to_string(),
            if b.nf_agnostic { "✓" } else { "✗" },
            b.function
        );
    }
    ExitCode::SUCCESS
}

fn cmd_workflows() -> ExitCode {
    use cornet::workflow::builtin::*;
    let cat = builtin_catalog();
    for wf in [
        software_upgrade_workflow(&cat),
        config_change_workflow(&cat),
        vce_download_workflow(&cat),
        vce_activate_workflow(&cat),
        sdwan_upgrade_workflow(&cat),
        schedule_planning_workflow(&cat),
        impact_verification_workflow(&cat),
    ] {
        let rep = validate(&wf, &cat);
        let war = WarArtifact::package(&wf, &cat);
        println!(
            "{:<26} nodes={:<2} blocks={:<2} valid={} rest={}",
            wf.name,
            wf.nodes.len(),
            wf.blocks().len(),
            rep.is_valid(),
            war.map(|w| w.manifest.rest_api)
                .unwrap_or_else(|e| format!("({e})")),
        );
    }
    ExitCode::SUCCESS
}

fn cmd_lint(flags: &BTreeMap<String, String>) -> ExitCode {
    let intent = match load_intent(flags) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match build_network(
        flags
            .get("network")
            .map(String::as_str)
            .unwrap_or("ran:200"),
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = scope_nodes(&net);
    match lint(&intent, &net.inventory, &nodes) {
        Ok(report) => {
            if report.findings.is_empty() {
                println!("intent is clean ({} nodes in scope)", nodes.len());
            }
            for f in &report.findings {
                println!("{:?}: [{}] {}", f.level, f.code, f.message);
            }
            if report.is_plannable() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_plan(flags: &BTreeMap<String, String>) -> ExitCode {
    let intent = match load_intent(flags) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match build_network(
        flags
            .get("network")
            .map(String::as_str)
            .unwrap_or("ran:200"),
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = scope_nodes(&net);

    // Lint first — the paper's adoption lesson: surprises at plan time
    // erode operator trust. A lint failure is itself a refusal: planning
    // an unlintable intent would bypass the safety gate.
    match lint(&intent, &net.inventory, &nodes) {
        Ok(report) => {
            for f in &report.findings {
                eprintln!("lint {:?}: [{}] {}", f.level, f.code, f.message);
            }
            if !report.is_plannable() {
                eprintln!("refusing to plan: fix the errors above");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("refusing to plan: lint failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // `--heuristic` is a compatibility alias for `--backend heuristic`;
    // every backend now runs through the same plan() pipeline.
    let backend_name = if flags.contains_key("heuristic") {
        "heuristic"
    } else {
        flags.get("backend").map(String::as_str).unwrap_or("exact")
    };
    let backend = match BackendChoice::parse(backend_name) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let secs: u64 = flags
        .get("time-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let options = PlanOptions {
        solver: cornet::solver::SolverConfig {
            time_limit: std::time::Duration::from_secs(secs),
            ..Default::default()
        },
        backend,
        ..Default::default()
    };
    match plan(&intent, &net.inventory, &net.topology, &nodes, &options) {
        Ok(result) => {
            println!(
                "schedule[{}]: {} scheduled, {} leftovers, {} conflicts, makespan {}, {:?}, discovered in {:?}",
                result.backend.name(),
                result.schedule.scheduled_count(),
                result.schedule.leftovers.len(),
                result.schedule.conflicts,
                result.makespan(),
                result.outcome,
                result.discovery_time,
            );
            for run in &result.backend_runs {
                println!(
                    "  backend {}{}: {:?}, cost {}, {} nodes in {:?}",
                    run.backend,
                    if run.winner { " (winner)" } else { "" },
                    run.outcome,
                    run.cost.map_or_else(|| "-".into(), |c| c.to_string()),
                    run.stats.nodes,
                    run.stats.elapsed,
                );
            }
            if let Some(path) = flags.get("emit-mzn") {
                match cornet::planner::translate(
                    &intent,
                    &net.inventory,
                    &net.topology,
                    &nodes,
                    &Default::default(),
                ) {
                    Ok(t) => {
                        if let Err(e) = std::fs::write(path, t.model.to_minizinc()) {
                            eprintln!("writing {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("MiniZinc model written to {path}");
                    }
                    Err(e) => eprintln!("translation for --emit-mzn failed: {e}"),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("planning failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_demo() -> ExitCode {
    use cornet::core::{testbed_registry, Cornet};
    use cornet::netsim::{Testbed, TestbedConfig};
    use cornet::orchestrator::GlobalState;
    use cornet::types::ParamValue;
    use cornet::workflow::builtin::software_upgrade_workflow;

    let net = Network::generate_cloud(1, 6, 1);
    let tb = Testbed::new(TestbedConfig::default());
    let vces: Vec<NodeId> = net
        .inventory
        .iter()
        .filter(|r| r.nf_type == NfType::VceRouter)
        .map(|r| {
            tb.instantiate(&r.name, r.nf_type, "16.9");
            r.id
        })
        .collect();
    let cornet = Cornet::new(
        net.inventory.clone(),
        net.topology,
        testbed_registry(tb.clone()),
    );
    let war = cornet
        .deploy_workflow(&software_upgrade_workflow(&cornet.catalog))
        .expect("builtin workflow deploys");
    let intent = r#"{
        "scheduling_window": {"start": "2020-07-01 00:00:00",
                               "end": "2020-07-05 23:59:00",
                               "granularity": {"metric": "day", "value": 1}},
        "maintenance_window": {"start": "0:00", "end": "6:00"},
        "schedulable_attribute": "common_id",
        "conflict_attribute": "common_id",
        "constraints": [
            {"name": "concurrency", "base_attribute": "common_id",
             "operator": "<=", "granularity": {"metric": "day", "value": 1},
             "default_capacity": 2}
        ]
    }"#;
    let result = cornet
        .plan_from_json(intent, &vces, &PlanOptions::default())
        .expect("demo intent plans");
    println!(
        "planned {} vCEs over {} nights",
        result.schedule.scheduled_count(),
        result.makespan()
    );
    let inv = &cornet.inventory;
    let report = cornet
        .dispatch(&war, &result.schedule, 2, |node| {
            let mut g = GlobalState::new();
            g.insert(
                "node".into(),
                ParamValue::from(inv.record(node).name.clone()),
            );
            g.insert("software_version".into(), ParamValue::from("17.3"));
            g
        })
        .expect("dispatch runs");
    println!(
        "executed {} workflow instances, {} completed",
        report.instances.len(),
        report.completed()
    );
    for &v in &vces {
        let name = &cornet.inventory.record(v).name;
        println!("  {name}: {}", tb.state(name).unwrap().sw_version);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "catalog" => cmd_catalog(),
        "workflows" => cmd_workflows(),
        "lint" => cmd_lint(&flags),
        "plan" => cmd_plan(&flags),
        "demo" => cmd_demo(),
        _ => usage(),
    }
}
