//! `cornetd` — the CORNET campaign service.
//!
//! A long-lived daemon exposing campaign management over an HTTP/JSON
//! API. Tenants submit MOP bundles (gate-checked on entry), watch
//! per-block progress as JSONL, and pause/resume/cancel campaigns; every
//! campaign is journaled under the state directory, so `kill -9` followed
//! by a restart resumes every interrupted campaign with zero re-executed
//! blocks.
//!
//! ```text
//! cornetd [--listen ADDR] [--state-dir DIR] [--fsync POLICY]
//!         [--pool N] [--default-quota N] [--quota TENANT=N[,TENANT=N]]
//!         [--max-campaigns N] [--http-workers N] [--trace FILE]
//! ```

use cornet::daemon::{ApiServer, CampaignManager, ManagerConfig};
use cornet::journal::FsyncPolicy;
use cornet::obs::{write_trace, ChromeTraceSink, TraceSummary, Tracer};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cornetd [options]\n\
         \n\
         options:\n\
           --listen <addr>        bind address              (default 127.0.0.1:7171)\n\
           --state-dir <dir>      campaign state directory  (default ./cornetd-state)\n\
           --fsync <policy>       always | every-n=N | never (default every-n=64)\n\
           --pool <n>             global execution slots    (default 8)\n\
           --default-quota <n>    per-tenant execution cap  (default 2)\n\
           --quota <t=n,...>      per-tenant overrides, e.g. acme=4,zephyr=1\n\
           --max-campaigns <n>    concurrent campaigns      (default 4)\n\
           --http-workers <n>     HTTP worker threads       (default 4)\n\
           --trace <file>         write a Chrome trace on shutdown"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        let value = if it.peek().is_some_and(|n| !n.starts_with("--")) {
            it.next().unwrap().clone()
        } else {
            "true".to_string()
        };
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn parse_quota_overrides(spec: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (tenant, cap) = part
            .split_once('=')
            .ok_or_else(|| format!("bad quota {part:?}: expected tenant=N"))?;
        let cap: usize = cap
            .parse()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("bad quota {part:?}: N must be a positive integer"))?;
        out.insert(tenant.to_string(), cap);
    }
    Ok(out)
}

fn numeric(flags: &BTreeMap<String, String>, name: &str, default: usize) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("bad --{name} {v:?}: want a positive integer")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args)?;
    for key in flags.keys() {
        if !matches!(
            key.as_str(),
            "listen"
                | "state-dir"
                | "fsync"
                | "pool"
                | "default-quota"
                | "quota"
                | "max-campaigns"
                | "http-workers"
                | "trace"
        ) {
            return Err(format!("unknown option --{key}"));
        }
    }
    let listen = flags
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7171");
    let state_dir = flags
        .get("state-dir")
        .map(String::as_str)
        .unwrap_or("cornetd-state");
    let fsync = match flags.get("fsync") {
        Some(text) => FsyncPolicy::parse(text).map_err(|e| e.to_string())?,
        None => FsyncPolicy::EveryN(64),
    };
    let tracer = if flags.contains_key("trace") {
        Tracer::wall()
    } else {
        Tracer::noop()
    };
    let config = ManagerConfig {
        state_dir: state_dir.into(),
        fsync,
        pool: numeric(&flags, "pool", 8)?,
        default_quota: numeric(&flags, "default-quota", 2)?,
        quota_overrides: match flags.get("quota") {
            Some(spec) => parse_quota_overrides(spec)?,
            None => BTreeMap::new(),
        },
        max_campaigns: numeric(&flags, "max-campaigns", 4)?,
        tracer: tracer.clone(),
    };
    let http_workers = numeric(&flags, "http-workers", 4)?;

    let manager = CampaignManager::start(config).map_err(|e| e.to_string())?;
    let server =
        ApiServer::bind(listen, http_workers, manager.clone()).map_err(|e| e.to_string())?;
    println!("cornetd listening on {}", server.local_addr());
    println!("cornetd state directory: {state_dir} (fsync {fsync})");

    // Serve until a `POST /v1/shutdown` arrives, then drain runners —
    // journals make an impatient exit safe, so the drain is bounded.
    server.wait_for_shutdown();
    println!("cornetd shutting down; draining campaigns…");
    let drained = manager.drain(Duration::from_secs(60));
    server.shutdown();
    if !drained {
        eprintln!("cornetd: drain timed out; interrupted campaigns will resume on restart");
    }
    if let Some(path) = flags.get("trace") {
        let trace = tracer.snapshot();
        write_trace(path, &ChromeTraceSink, &trace).map_err(|e| format!("writing {path}: {e}"))?;
        print!("{}", TraceSummary::from_trace(&trace).render());
        println!("trace written to {path}");
    }
    println!("cornetd stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.starts_with("unknown option") || e.starts_with("unexpected argument") {
                return usage();
            }
            ExitCode::FAILURE
        }
    }
}
