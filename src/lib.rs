//! # CORNET — a composition framework for change management
//!
//! Umbrella crate for the CORNET workspace, a from-scratch Rust
//! reproduction of *"A Composition Framework for Change Management"*
//! (Mahimkar, Andrade, Sinha, Rana — SIGCOMM 2021).
//!
//! The interesting code lives in the member crates; this crate re-exports
//! them for the runnable examples in `examples/` and the cross-crate
//! integration tests in `tests/`:
//!
//! | crate | role |
//! |---|---|
//! | [`types`] | shared vocabulary (ids, attributes, time, inventory, topology) |
//! | [`obs`] | spans, metrics, trace exporters (Chrome trace / JSON lines) |
//! | [`netsim`] | network/KPI/change-log/usage simulators |
//! | [`stats`] | robust statistics substrate |
//! | [`model`] | constraint-model IR + MiniZinc emission |
//! | [`solver`] | propagation + branch-and-bound CP solver |
//! | [`catalog`] | building-block catalog (Table 2) |
//! | [`workflow`] | BPMN-like designer, validation, WAR packaging |
//! | [`orchestrator`] | execution engine, dispatcher, event-driven alternative |
//! | [`journal`] | durable campaign journal (write-ahead log, crash recovery) |
//! | [`planner`] | intent → model translation, decomposition, Appendix C heuristic |
//! | [`verifier`] | impact verification (rules, control groups, analysis) |
//! | [`analysis`] | shared static-analysis framework (diagnostics, passes, baselines) |
//! | [`core`] | the `Cornet` facade + reuse accounting + the `check` gate |
//! | [`daemon`] | `cornetd` service mode: HTTP/JSON campaign API, multi-tenant manager |
//!
//! Start with `examples/quickstart.rs`.

#![forbid(unsafe_code)]
pub use cornet_analysis as analysis;
pub use cornet_catalog as catalog;
pub use cornet_core as core;
pub use cornet_daemon as daemon;
pub use cornet_journal as journal;
pub use cornet_model as model;
pub use cornet_netsim as netsim;
pub use cornet_obs as obs;
pub use cornet_orchestrator as orchestrator;
pub use cornet_planner as planner;
pub use cornet_solver as solver;
pub use cornet_stats as stats;
pub use cornet_types as types;
pub use cornet_verifier as verifier;
pub use cornet_workflow as workflow;

pub use cornet_core::Cornet;
