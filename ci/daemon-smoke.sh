#!/usr/bin/env bash
# End-to-end smoke for the cornetd service mode, run from the repo root
# with release binaries already built:
#
#   1. gate      clean bundle accepted (201), defective bundle refused (422)
#   2. complete  the accepted campaign runs to phase=completed
#   2b. blast    a bundle whose declared campaign races a live one is
#                refused (409 + CN0601 JSONL) while a disjoint bundle is
#                admitted (201); blast radii are owner-only (403 foreign)
#   3. kill      SIGKILL mid-campaign, restart on the same state dir; the
#                campaign resumes from its journal (blocks_recovered > 0)
#                and lands on the same fingerprint as an uninterrupted run
#                of the same spec
#   4. ingest    /v1/ingest accepts a JSONL sample feed, streams live
#                detections, and reports a go verdict on a clean uplift
#   5. shutdown  POST /v1/shutdown drains and the process exits cleanly
set -euo pipefail

CORNET=${CORNET:-target/release/cornet}
CORNETD=${CORNETD:-target/release/cornetd}
WORK=$(mktemp -d)
STATE="$WORK/state"
PID=""
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  [ -f "$WORK/daemon.out" ] && sed 's/^/  daemon: /' "$WORK/daemon.out" >&2
  exit 1
}

start_daemon() {
  "$CORNETD" --listen 127.0.0.1:0 --state-dir "$STATE" --fsync always \
    --pool 4 --default-quota 2 >"$WORK/daemon.out" 2>&1 &
  PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    # tail -n1: never scrape a stale announcement if the log ever carries
    # more than one "listening on" line (e.g. extra startup output).
    ADDR=$(sed -n 's/^cornetd listening on //p' "$WORK/daemon.out" | tail -n1)
    [ -n "$ADDR" ] && return
    kill -0 "$PID" 2>/dev/null || fail "cornetd exited during startup"
    sleep 0.1
  done
  fail "cornetd never announced its listen address"
}

cli() { "$CORNET" "$@" --daemon "$ADDR"; }
snap() { cli status "$1"; }

# Poll a campaign to a terminal phase; print its final snapshot.
wait_terminal() {
  local id=$1 p
  for _ in $(seq 1 600); do
    p=$(snap "$id" | jq -r .phase)
    case "$p" in
      completed) snap "$id"; return ;;
      failed | cancelled) fail "campaign $id ended $p" ;;
    esac
    sleep 0.1
  done
  fail "campaign $id did not reach a terminal phase"
}

echo "== start cornetd =="
start_daemon
echo "   listening on $ADDR (state dir $STATE)"

echo "== gate: clean bundle accepted =="
ACCEPT=$(cli submit examples/check/clean.json)
echo "   $ACCEPT"
CID=$(echo "$ACCEPT" | jq -r .id)

echo "== gate: defective bundle refused =="
if cli submit examples/check/defective.json 2>"$WORK/refused.txt"; then
  fail "defective bundle was accepted"
fi
grep -q 'refused by the pre-deploy check gate' "$WORK/refused.txt"
echo "   refused with $(grep -c '"severity"' "$WORK/refused.txt") diagnostics"

echo "== accepted campaign completes =="
wait_terminal "$CID" >/dev/null

echo "== interference gate: racing live campaign refused, disjoint admitted =="
# Two bundles that declare campaigns on the same inventory node at the
# same slot (a CN0601 write-write race) and a third on a disjoint node.
# Scenario latency is simulated (virtual clock), so wall-clock runtime
# cannot keep the first campaign live; pausing it does, deterministically.
declared_bundle() {
  cat <<EOF
{"name": "ci-blast-$1", "scenario": {"nodes": $3, "latency_ms": 1},
 "workflows": [{"name": "wave-$1",
                "inputs": {"node": "string", "software_version": "string"},
                "sequence": ["software_upgrade"]}],
 "inventory": [{"name": "$2", "nf_type": "enb"}],
 "campaigns": [{"workflow": "wave-$1", "assignments": [[0, 1]]}]}
EOF
}
declared_bundle a smoke-enb-0 160 >"$WORK/decl-a.json"
declared_bundle b smoke-enb-0 6 >"$WORK/decl-b.json"
declared_bundle c smoke-gnb-9 6 >"$WORK/decl-c.json"

AID=$(cli submit "$WORK/decl-a.json" | jq -r .id)
PHASE=$(curl -s -X POST -H 'X-Cornet-Tenant: default' \
  "http://$ADDR/v1/campaigns/$AID/pause" | jq -r .phase)
[ "$PHASE" = paused ] || fail "campaign $AID is $PHASE, not paused"
CODE=$(curl -s -o "$WORK/conflict.jsonl" -w '%{http_code}' -X POST \
  -H 'X-Cornet-Tenant: default' --data-binary @"$WORK/decl-b.json" \
  "http://$ADDR/v1/campaigns")
[ "$CODE" = 409 ] || fail "interfering submission returned HTTP $CODE (want 409)"
grep -q '"code":"CN0601"' "$WORK/conflict.jsonl" \
  || fail "409 body carries no CN0601 diagnostic: $(cat "$WORK/conflict.jsonl")"
CODE=$(curl -s -o "$WORK/disjoint.json" -w '%{http_code}' -X POST \
  -H 'X-Cornet-Tenant: default' --data-binary @"$WORK/decl-c.json" \
  "http://$ADDR/v1/campaigns")
[ "$CODE" = 201 ] || fail "disjoint submission returned HTTP $CODE (want 201)"
DID=$(jq -r .id "$WORK/disjoint.json")

# Blast radii are owner-only.
CODE=$(curl -s -o "$WORK/blast.json" -w '%{http_code}' \
  -H 'X-Cornet-Tenant: default' "http://$ADDR/v1/campaigns/$AID/blast")
[ "$CODE" = 200 ] || fail "GET blast for the owner returned HTTP $CODE"
grep -q '"writes"' "$WORK/blast.json" || fail "blast body has no effect sets"
CODE=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'X-Cornet-Tenant: intruder' "http://$ADDR/v1/campaigns/$AID/blast")
[ "$CODE" = 403 ] || fail "GET blast for a foreign tenant returned HTTP $CODE (want 403)"

curl -s -o /dev/null -X POST -H 'X-Cornet-Tenant: default' \
  "http://$ADDR/v1/campaigns/$AID/resume"
wait_terminal "$AID" >/dev/null
wait_terminal "$DID" >/dev/null
echo "   racing bundle refused with 409/CN0601, disjoint admitted as $DID, blast owner-only"

echo "== kill-safety: SIGKILL mid-campaign, restart, resume =="
cat >"$WORK/big.json" <<'EOF'
{"name": "ci-kill-smoke", "scenario": {"nodes": 160, "latency_ms": 1, "fault_rate_milli": 0}}
EOF
KID=$(cli submit "$WORK/big.json" | jq -r .id)
LIVE=0
for _ in $(seq 1 600); do
  LIVE=$(snap "$KID" | jq -r .blocks_live)
  [ "$LIVE" -ge 1 ] && break
  sleep 0.05
done
[ "$LIVE" -ge 1 ] || fail "campaign $KID never got a block in flight"
{ kill -9 "$PID" && wait "$PID"; } 2>/dev/null || true
echo "   killed cornetd with $LIVE blocks journaled on campaign $KID"

start_daemon
FINAL=$(wait_terminal "$KID")
RECOVERED=$(echo "$FINAL" | jq -r .blocks_recovered)
FP=$(echo "$FINAL" | jq -r .outcome.fingerprint)
[ "$RECOVERED" -ge 1 ] || fail "resumed campaign recovered no journaled blocks"

# An uninterrupted run of the same spec must land on the same fingerprint.
RID=$(cli submit "$WORK/big.json" | jq -r .id)
REF=$(wait_terminal "$RID" | jq -r .outcome.fingerprint)
[ "$FP" = "$REF" ] || fail "fingerprint mismatch: resumed $FP vs uninterrupted $REF"
echo "   resumed $RECOVERED recovered blocks, fingerprint $FP matches clean run"

echo "== streaming ingest =="
# 100 ticks × 4 streams (2 study + 2 control) on a 60-minute grid; the
# study streams gain +25 from minute 1800 on, so the online verifier
# should both fire changepoint detections and report a "go" verdict for
# expect=improve. Mirrors the in-crate snapshot test configuration.
awk 'BEGIN {
  for (k = 0; k < 100; k++) {
    m = k * 60
    v = 100 + (k % 5) * 0.2
    shift = (m >= 1800) ? 25 : 0
    printf "{\"node\":\"study-0\",\"kpi\":\"thr\",\"minute\":%d,\"value\":%.1f}\n", m, v + shift
    printf "{\"node\":\"study-1\",\"kpi\":\"thr\",\"minute\":%d,\"value\":%.1f}\n", m, v + shift
    printf "{\"node\":\"control-0\",\"kpi\":\"thr\",\"minute\":%d,\"value\":%.1f}\n", m, v
    printf "{\"node\":\"control-1\",\"kpi\":\"thr\",\"minute\":%d,\"value\":%.1f}\n", m, v
  }
}' >"$WORK/ingest.jsonl"
INGEST_URL="http://$ADDR/v1/ingest?nodes=2&kpi=thr&change_minute=1800&expect=improve"

CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @"$WORK/ingest.jsonl" "$INGEST_URL")
[ "$CODE" = 400 ] || fail "POST /v1/ingest without tenant header returned HTTP $CODE (want 400)"

CODE=$(curl -s -o "$WORK/receipt.json" -w '%{http_code}' -X POST \
  -H 'X-Cornet-Tenant: smoke' --data-binary @"$WORK/ingest.jsonl" "$INGEST_URL")
[ "$CODE" = 200 ] || fail "POST /v1/ingest returned HTTP $CODE"
ACCEPTED=$(jq -r .accepted "$WORK/receipt.json")
[ "$ACCEPTED" = 400 ] || fail "ingest accepted $ACCEPTED of 400 samples"

curl -s -H 'X-Cornet-Tenant: smoke' "http://$ADDR/v1/ingest" >"$WORK/ingest-snap.json"
PROCESSED=$(jq -r .stats.processed "$WORK/ingest-snap.json")
DECISION=$(jq -r '.verdicts[0].decision' "$WORK/ingest-snap.json")
DETS=$(jq -r '.detections | length' "$WORK/ingest-snap.json")
[ "$PROCESSED" = 400 ] || fail "ingest session processed $PROCESSED of 400 samples"
[ "$DECISION" = go ] || fail "streaming verdict was '$DECISION' (want go)"
[ "$DETS" -ge 1 ] || fail "streaming session reported no changepoint detections"

CODE=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE -H 'X-Cornet-Tenant: smoke' "http://$ADDR/v1/ingest")
[ "$CODE" = 405 ] || fail "DELETE /v1/ingest returned HTTP $CODE (want 405)"
echo "   ingested 400 samples, $DETS detections, verdict go"

echo "== clean shutdown =="
CODE=$(curl -s -o "$WORK/shutdown.json" -w '%{http_code}' -X POST "http://$ADDR/v1/shutdown")
[ "$CODE" = 202 ] || fail "POST /v1/shutdown returned HTTP $CODE"
for _ in $(seq 1 100); do
  if ! kill -0 "$PID" 2>/dev/null; then
    PID=""
    break
  fi
  sleep 0.1
done
[ -z "$PID" ] || fail "cornetd still running after shutdown"

echo "daemon smoke OK: gate, completion, interference 409/201, SIGKILL+resume ($RECOVERED blocks recovered, fingerprint $FP), streaming ingest ($DETS detections, verdict go), clean shutdown"
