#!/usr/bin/env bash
# End-to-end smoke for the cornetd service mode, run from the repo root
# with release binaries already built:
#
#   1. gate      clean bundle accepted (201), defective bundle refused (422)
#   2. complete  the accepted campaign runs to phase=completed
#   3. kill      SIGKILL mid-campaign, restart on the same state dir; the
#                campaign resumes from its journal (blocks_recovered > 0)
#                and lands on the same fingerprint as an uninterrupted run
#                of the same spec
#   4. shutdown  POST /v1/shutdown drains and the process exits cleanly
set -euo pipefail

CORNET=${CORNET:-target/release/cornet}
CORNETD=${CORNETD:-target/release/cornetd}
WORK=$(mktemp -d)
STATE="$WORK/state"
PID=""
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  [ -f "$WORK/daemon.out" ] && sed 's/^/  daemon: /' "$WORK/daemon.out" >&2
  exit 1
}

start_daemon() {
  "$CORNETD" --listen 127.0.0.1:0 --state-dir "$STATE" --fsync always \
    --pool 4 --default-quota 2 >"$WORK/daemon.out" 2>&1 &
  PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^cornetd listening on //p' "$WORK/daemon.out")
    [ -n "$ADDR" ] && return
    kill -0 "$PID" 2>/dev/null || fail "cornetd exited during startup"
    sleep 0.1
  done
  fail "cornetd never announced its listen address"
}

cli() { "$CORNET" "$@" --daemon "$ADDR"; }
snap() { cli status "$1"; }

# Poll a campaign to a terminal phase; print its final snapshot.
wait_terminal() {
  local id=$1 p
  for _ in $(seq 1 600); do
    p=$(snap "$id" | jq -r .phase)
    case "$p" in
      completed) snap "$id"; return ;;
      failed | cancelled) fail "campaign $id ended $p" ;;
    esac
    sleep 0.1
  done
  fail "campaign $id did not reach a terminal phase"
}

echo "== start cornetd =="
start_daemon
echo "   listening on $ADDR (state dir $STATE)"

echo "== gate: clean bundle accepted =="
ACCEPT=$(cli submit examples/check/clean.json)
echo "   $ACCEPT"
CID=$(echo "$ACCEPT" | jq -r .id)

echo "== gate: defective bundle refused =="
if cli submit examples/check/defective.json 2>"$WORK/refused.txt"; then
  fail "defective bundle was accepted"
fi
grep -q 'refused by the pre-deploy check gate' "$WORK/refused.txt"
echo "   refused with $(grep -c '"severity"' "$WORK/refused.txt") diagnostics"

echo "== accepted campaign completes =="
wait_terminal "$CID" >/dev/null

echo "== kill-safety: SIGKILL mid-campaign, restart, resume =="
cat >"$WORK/big.json" <<'EOF'
{"name": "ci-kill-smoke", "scenario": {"nodes": 160, "latency_ms": 1, "fault_rate_milli": 0}}
EOF
KID=$(cli submit "$WORK/big.json" | jq -r .id)
LIVE=0
for _ in $(seq 1 600); do
  LIVE=$(snap "$KID" | jq -r .blocks_live)
  [ "$LIVE" -ge 1 ] && break
  sleep 0.05
done
[ "$LIVE" -ge 1 ] || fail "campaign $KID never got a block in flight"
{ kill -9 "$PID" && wait "$PID"; } 2>/dev/null || true
echo "   killed cornetd with $LIVE blocks journaled on campaign $KID"

start_daemon
FINAL=$(wait_terminal "$KID")
RECOVERED=$(echo "$FINAL" | jq -r .blocks_recovered)
FP=$(echo "$FINAL" | jq -r .outcome.fingerprint)
[ "$RECOVERED" -ge 1 ] || fail "resumed campaign recovered no journaled blocks"

# An uninterrupted run of the same spec must land on the same fingerprint.
RID=$(cli submit "$WORK/big.json" | jq -r .id)
REF=$(wait_terminal "$RID" | jq -r .outcome.fingerprint)
[ "$FP" = "$REF" ] || fail "fingerprint mismatch: resumed $FP vs uninterrupted $REF"
echo "   resumed $RECOVERED recovered blocks, fingerprint $FP matches clean run"

echo "== clean shutdown =="
CODE=$(curl -s -o "$WORK/shutdown.json" -w '%{http_code}' -X POST "http://$ADDR/v1/shutdown")
[ "$CODE" = 202 ] || fail "POST /v1/shutdown returned HTTP $CODE"
for _ in $(seq 1 100); do
  if ! kill -0 "$PID" 2>/dev/null; then
    PID=""
    break
  fi
  sleep 0.1
done
[ -z "$PID" ] || fail "cornetd still running after shutdown"

echo "daemon smoke OK: gate, completion, SIGKILL+resume ($RECOVERED blocks recovered, fingerprint $FP), clean shutdown"
