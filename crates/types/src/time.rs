//! Simulated civil time, maintenance windows, and schedulable timeslots.
//!
//! The paper schedules changes into discrete *timeslots* derived from a
//! scheduling window plus a nightly maintenance window (Listing 1 lines
//! 2–12). We model civil time as minutes since the Unix epoch with our own
//! Gregorian conversion so the workspace needs no external date crate.

use crate::error::CornetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minutes in one day.
pub const MINUTES_PER_DAY: u64 = 24 * 60;

/// A point in simulated civil time, stored as minutes since the Unix epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Construct from a civil date and time (UTC).
    ///
    /// `month` is 1..=12, `day` is 1..=31. Panics on out-of-range fields;
    /// use [`SimTime::parse`] for fallible construction from text.
    pub fn from_ymd_hm(year: i64, month: u32, day: u32, hour: u32, minute: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        assert!(
            hour < 24 && minute < 60,
            "time out of range: {hour}:{minute}"
        );
        let days = days_from_civil(year, month, day);
        assert!(days >= 0, "dates before 1970 are not representable");
        SimTime(days as u64 * MINUTES_PER_DAY + hour as u64 * 60 + minute as u64)
    }

    /// Parse the `"YYYY-MM-DD HH:MM:SS"` format used in the paper's JSON
    /// intent API (seconds are accepted and truncated to minutes).
    pub fn parse(s: &str) -> Result<Self, CornetError> {
        let bad = || CornetError::Parse(format!("invalid datetime: {s:?}"));
        let (date, time) = s.trim().split_once(' ').ok_or_else(bad)?;
        let mut dp = date.split('-');
        let year: i64 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u32 = dp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if dp.next().is_some() {
            return Err(bad());
        }
        let mut tp = time.split(':');
        let hour: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let minute: u32 = tp.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        // Optional seconds component, ignored.
        if let Some(sec) = tp.next() {
            let _: u32 = sec.parse().map_err(|_| bad())?;
        }
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) || hour >= 24 || minute >= 60 {
            return Err(bad());
        }
        if year < 1970 {
            return Err(CornetError::Parse(format!(
                "dates before 1970 are not representable: {s:?}"
            )));
        }
        // Reject nonexistent dates (Feb 30, Apr 31, Feb 29 off-leap) —
        // days_from_civil would silently normalize them.
        let days = days_from_civil(year, month, day);
        if civil_from_days(days) != (year, month, day) {
            return Err(CornetError::Parse(format!(
                "nonexistent calendar date: {s:?}"
            )));
        }
        Ok(Self::from_ymd_hm(year, month, day, hour, minute))
    }

    /// Minutes since the epoch.
    #[inline]
    pub fn minutes(self) -> u64 {
        self.0
    }

    /// Whole days since the epoch.
    #[inline]
    pub fn days(self) -> u64 {
        self.0 / MINUTES_PER_DAY
    }

    /// Minute of the day, 0..1440.
    #[inline]
    pub fn minute_of_day(self) -> u64 {
        self.0 % MINUTES_PER_DAY
    }

    /// Civil `(year, month, day)` of this instant.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days(self.days() as i64)
    }

    /// Add a number of whole days.
    pub fn plus_days(self, days: u64) -> Self {
        SimTime(self.0 + days * MINUTES_PER_DAY)
    }

    /// Add a number of minutes.
    pub fn plus_minutes(self, minutes: u64) -> Self {
        SimTime(self.0 + minutes)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let mod_ = self.minute_of_day();
        write!(
            f,
            "{y:04}-{m:02}-{d:02} {:02}:{:02}:00",
            mod_ / 60,
            mod_ % 60
        )
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy as u64; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Calendar unit of a granularity specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum TimeUnit {
    /// One minute.
    Minute,
    /// One hour.
    Hour,
    /// One day.
    Day,
    /// Seven days.
    Week,
}

impl TimeUnit {
    /// Length of the unit in minutes.
    pub fn minutes(self) -> u64 {
        match self {
            TimeUnit::Minute => 1,
            TimeUnit::Hour => 60,
            TimeUnit::Day => MINUTES_PER_DAY,
            TimeUnit::Week => 7 * MINUTES_PER_DAY,
        }
    }
}

/// Granularity of a timeslot or constraint, e.g. `{"metric":"day","value":1}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Granularity {
    /// Calendar unit.
    pub metric: TimeUnit,
    /// Multiplier of the unit.
    pub value: u32,
}

impl Granularity {
    /// Granularity of `value` × `metric`.
    pub fn new(metric: TimeUnit, value: u32) -> Self {
        Self { metric, value }
    }

    /// One day — the paper's most common timeslot granularity.
    pub fn daily() -> Self {
        Self::new(TimeUnit::Day, 1)
    }

    /// Span of the granularity in minutes.
    pub fn minutes(self) -> u64 {
        self.metric.minutes() * self.value as u64
    }
}

/// Nightly window during which changes may execute (e.g. 00:00–06:00 local).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// Start minute-of-day (inclusive).
    pub start_minute: u32,
    /// End minute-of-day (exclusive).
    pub end_minute: u32,
}

impl MaintenanceWindow {
    /// Window spanning `[start_hour:00, end_hour:00)` each day.
    pub fn overnight(start_hour: u32, end_hour: u32) -> Self {
        assert!(start_hour <= 24 && end_hour <= 24);
        Self {
            start_minute: start_hour * 60,
            end_minute: end_hour * 60,
        }
    }

    /// Duration of one window in minutes.
    pub fn duration_minutes(&self) -> u64 {
        (self.end_minute.saturating_sub(self.start_minute)) as u64
    }

    /// Whether an instant falls inside the window (ignoring timezone shift).
    pub fn contains(&self, t: SimTime) -> bool {
        let m = t.minute_of_day() as u32;
        m >= self.start_minute && m < self.end_minute
    }
}

impl Default for MaintenanceWindow {
    /// The paper's canonical midnight–6AM window.
    fn default() -> Self {
        Self::overnight(0, 6)
    }
}

/// Discrete schedulable slot index, 1-based to match the paper's models.
///
/// Slot 0 is reserved to mean "unscheduled" in solver encodings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timeslot(pub u32);

impl Timeslot {
    /// Sentinel for "not scheduled".
    pub const UNSCHEDULED: Timeslot = Timeslot(0);

    /// True when this is a real slot (not the unscheduled sentinel).
    pub fn is_scheduled(self) -> bool {
        self.0 > 0
    }

    /// 0-based index into per-slot vectors. Panics on the sentinel.
    pub fn index(self) -> usize {
        assert!(self.is_scheduled(), "UNSCHEDULED has no index");
        (self.0 - 1) as usize
    }

    /// Construct from a 0-based index.
    pub fn from_index(i: usize) -> Self {
        Timeslot(i as u32 + 1)
    }
}

impl fmt::Debug for Timeslot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_scheduled() {
            write!(f, "slot{}", self.0)
        } else {
            f.write_str("unscheduled")
        }
    }
}

/// The calendar horizon over which a change plan is discovered.
///
/// Mirrors Listing 1: a start/end instant, a slot granularity, the nightly
/// maintenance window, and excluded periods (holidays, Super Bowl, …).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulingWindow {
    /// First instant of the window (inclusive).
    pub start: SimTime,
    /// Last instant of the window (inclusive, per the paper's examples).
    pub end: SimTime,
    /// Width of one schedulable timeslot.
    pub granularity: Granularity,
    /// Nightly execution window within each slot.
    pub maintenance: MaintenanceWindow,
    /// Calendar periods during which nothing may be scheduled.
    pub excluded: Vec<(SimTime, SimTime)>,
}

impl SchedulingWindow {
    /// A window of `num_days` daily slots starting at `start`, with the
    /// default 00:00–06:00 maintenance window and no exclusions.
    pub fn daily(start: SimTime, num_days: u32) -> Self {
        Self {
            start,
            end: start
                .plus_days(num_days.saturating_sub(1) as u64)
                .plus_minutes(MINUTES_PER_DAY - 1),
            granularity: Granularity::daily(),
            maintenance: MaintenanceWindow::default(),
            excluded: Vec::new(),
        }
    }

    /// Exclude a calendar period from scheduling (builder style).
    pub fn exclude(mut self, from: SimTime, to: SimTime) -> Self {
        self.excluded.push((from, to));
        self
    }

    /// Total number of raw slots in the window (before exclusions).
    pub fn raw_slot_count(&self) -> u32 {
        let span = self.end.minutes().saturating_sub(self.start.minutes()) + 1;
        span.div_ceil(self.granularity.minutes()) as u32
    }

    /// Start instant of a slot.
    pub fn slot_start(&self, slot: Timeslot) -> SimTime {
        self.start
            .plus_minutes(slot.index() as u64 * self.granularity.minutes())
    }

    /// Whether a slot overlaps any excluded period.
    pub fn slot_excluded(&self, slot: Timeslot) -> bool {
        let s = self.slot_start(slot).minutes();
        let e = s + self.granularity.minutes() - 1;
        self.excluded
            .iter()
            .any(|(from, to)| s <= to.minutes() && e >= from.minutes())
    }

    /// The usable slots of the window, in order, with exclusions removed.
    pub fn usable_slots(&self) -> Vec<Timeslot> {
        (0..self.raw_slot_count() as usize)
            .map(Timeslot::from_index)
            .filter(|s| !self.slot_excluded(*s))
            .collect()
    }

    /// Calendar period `[start, end]` covered by a slot (inclusive).
    pub fn slot_period(&self, slot: Timeslot) -> (SimTime, SimTime) {
        let start = self.slot_start(slot);
        (start, start.plus_minutes(self.granularity.minutes() - 1))
    }

    /// Slot containing a given instant, if it is inside the window.
    pub fn slot_of(&self, t: SimTime) -> Option<Timeslot> {
        if t < self.start || t > self.end {
            return None;
        }
        let offset = t.minutes() - self.start.minutes();
        Some(Timeslot::from_index(
            (offset / self.granularity.minutes()) as usize,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_conversion_round_trips() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2020, 7, 1),
            (2021, 8, 23),
            (2024, 12, 31),
        ] {
            let t = SimTime::from_ymd_hm(y, m, d, 3, 30);
            assert_eq!(t.ymd(), (y, m, d));
            assert_eq!(t.minute_of_day(), 3 * 60 + 30);
        }
    }

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::from_ymd_hm(1970, 1, 1, 0, 0).minutes(), 0);
    }

    #[test]
    fn parse_paper_format() {
        let t = SimTime::parse("2020-07-01 00:00:00").unwrap();
        assert_eq!(t.ymd(), (2020, 7, 1));
        assert_eq!(t.to_string(), "2020-07-01 00:00:00");
        assert!(SimTime::parse("not a date").is_err());
        assert!(SimTime::parse("2020-13-01 00:00:00").is_err());
        assert!(SimTime::parse("2020-07-01 25:00:00").is_err());
    }

    #[test]
    fn parse_rejects_nonexistent_dates() {
        assert!(
            SimTime::parse("2021-02-29 00:00:00").is_err(),
            "2021 is not a leap year"
        );
        assert!(SimTime::parse("2020-02-29 00:00:00").is_ok(), "2020 is");
        assert!(SimTime::parse("2020-04-31 00:00:00").is_err());
        assert!(
            SimTime::parse("1969-12-31 00:00:00").is_err(),
            "pre-epoch errors, not panics"
        );
    }

    #[test]
    fn parse_without_seconds() {
        assert!(SimTime::parse("2020-07-01 06:30").is_ok());
    }

    #[test]
    fn leap_year_day_counts() {
        let feb28 = SimTime::from_ymd_hm(2020, 2, 28, 0, 0);
        let mar1 = SimTime::from_ymd_hm(2020, 3, 1, 0, 0);
        assert_eq!(mar1.days() - feb28.days(), 2, "2020 is a leap year");
    }

    #[test]
    fn maintenance_window_contains() {
        let mw = MaintenanceWindow::default();
        assert!(mw.contains(SimTime::from_ymd_hm(2020, 7, 1, 3, 0)));
        assert!(!mw.contains(SimTime::from_ymd_hm(2020, 7, 1, 6, 0)));
        assert_eq!(mw.duration_minutes(), 360);
    }

    #[test]
    fn scheduling_window_slots() {
        let start = SimTime::from_ymd_hm(2020, 7, 1, 0, 0);
        let w = SchedulingWindow::daily(start, 7);
        assert_eq!(w.raw_slot_count(), 7);
        assert_eq!(w.usable_slots().len(), 7);
        assert_eq!(w.slot_start(Timeslot(1)), start);
        assert_eq!(w.slot_start(Timeslot(3)), start.plus_days(2));
    }

    #[test]
    fn scheduling_window_exclusions_match_listing1() {
        // Listing 1: July 1–7 window, excluding July 1 and July 4–5.
        let start = SimTime::parse("2020-07-01 00:00:00").unwrap();
        let w = SchedulingWindow::daily(start, 7)
            .exclude(
                SimTime::parse("2020-07-01 00:00:00").unwrap(),
                SimTime::parse("2020-07-01 23:59:00").unwrap(),
            )
            .exclude(
                SimTime::parse("2020-07-04 00:00:00").unwrap(),
                SimTime::parse("2020-07-05 23:59:00").unwrap(),
            );
        let usable = w.usable_slots();
        // Slots 2, 3, 6, 7 remain (July 2, 3, 6, 7).
        assert_eq!(
            usable,
            vec![Timeslot(2), Timeslot(3), Timeslot(6), Timeslot(7)]
        );
    }

    #[test]
    fn slot_of_maps_instants() {
        let start = SimTime::from_ymd_hm(2020, 7, 1, 0, 0);
        let w = SchedulingWindow::daily(start, 3);
        assert_eq!(w.slot_of(start.plus_days(1)), Some(Timeslot(2)));
        assert_eq!(w.slot_of(start.plus_days(10)), None);
    }

    #[test]
    fn timeslot_sentinel() {
        assert!(!Timeslot::UNSCHEDULED.is_scheduled());
        assert_eq!(Timeslot::from_index(0), Timeslot(1));
        assert_eq!(Timeslot(5).index(), 4);
    }

    #[test]
    #[should_panic(expected = "UNSCHEDULED")]
    fn unscheduled_index_panics() {
        let _ = Timeslot::UNSCHEDULED.index();
    }

    #[test]
    fn granularity_minutes() {
        assert_eq!(Granularity::daily().minutes(), 1440);
        assert_eq!(Granularity::new(TimeUnit::Week, 2).minutes(), 2 * 7 * 1440);
        assert_eq!(Granularity::new(TimeUnit::Hour, 6).minutes(), 360);
    }
}
