//! Minimal recursive-descent JSON reader for externally authored text.
//!
//! The workspace runs in offline containers whose vendored `serde_json` is
//! a same-process round-trip shim; it cannot parse JSON text arriving from
//! outside (intent files handed to the CLI, check bundles, baselines, the
//! Listing 1 corpus baked into tests). This module is a small,
//! dependency-free JSON reader covering objects, arrays, strings (with
//! escapes), numbers, booleans and null. Consumers that accept external
//! JSON (the planner's intent API, the static-analysis bundle loader) try
//! `serde_json` first and fall back to this reader.

use crate::{CornetError, Result};

/// A parsed JSON value. Object keys keep their source order so downstream
/// consumers (e.g. frozen-element selectors) see deterministic iteration.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the intent API never exceeds 2^53).
    Number(f64),
    /// String with escapes resolved.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as an ordered key/value list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries, if it is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Parse a JSON document. The whole input must be consumed (trailing
/// whitespace aside) — garbage after the document is an error.
pub fn parse(input: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> CornetError {
        CornetError::Parse(format!("JSON at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..\uDFFF`.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 sequence starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), JsonValue::Number(-25.0));
        assert_eq!(
            parse(r#""a\n\"bé""#).unwrap(),
            JsonValue::String("a\n\"bé".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().entries(), Some(&[][..]));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<_> = v
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{ not json").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err(), "trailing tokens");
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap(),
            JsonValue::String("😀".into())
        );
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            JsonValue::String("😀".into()),
            "raw multi-byte UTF-8 passes through"
        );
    }
}
