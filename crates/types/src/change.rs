//! Change-management domain types: change categories, tickets, requests,
//! and the conflict table fed to the planner.
//!
//! Table 1 of the paper breaks network changes into four categories with
//! very different durations and roll-out profiles; Listing 1 shows the
//! conflict table keyed by node with ticketed busy periods.

use crate::id::NodeId;
use crate::time::{SimTime, Timeslot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Category of a network change (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ChangeType {
    /// Software upgrade of a node.
    SoftwareUpgrade,
    /// Configuration change.
    ConfigChange,
    /// Spectrum re-tuning (e.g. carving LTE carriers for 5G).
    NodeRetuning,
    /// Construction work (tower adds, hardware swaps) requiring site visits.
    ConstructionWork,
}

impl ChangeType {
    /// All categories in Table 1 order.
    pub const ALL: [ChangeType; 4] = [
        ChangeType::SoftwareUpgrade,
        ChangeType::ConfigChange,
        ChangeType::NodeRetuning,
        ChangeType::ConstructionWork,
    ];

    /// Whether the change requires humans on site (drives the long-duration
    /// behaviour of re-tuning and construction in Table 1 / Table 6).
    pub fn requires_site_visit(self) -> bool {
        matches!(
            self,
            ChangeType::NodeRetuning | ChangeType::ConstructionWork
        )
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ChangeType::SoftwareUpgrade => "software_upgrade",
            ChangeType::ConfigChange => "config_change",
            ChangeType::NodeRetuning => "node_retuning",
            ChangeType::ConstructionWork => "construction_work",
        }
    }
}

impl fmt::Display for ChangeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A change to be planned and executed on a set of nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChangeRequest {
    /// Ticket-style identifier, e.g. `"CHG000005482383"`.
    pub ticket: String,
    /// Category of the change.
    pub change_type: ChangeType,
    /// Nodes the change applies to.
    pub nodes: Vec<NodeId>,
    /// Duration per node, in maintenance windows (Fig. 12: usually 1, but
    /// construction work reserves more).
    pub duration_windows: u32,
}

impl ChangeRequest {
    /// Construct a single-window change request.
    pub fn new(ticket: impl Into<String>, change_type: ChangeType, nodes: Vec<NodeId>) -> Self {
        Self {
            ticket: ticket.into(),
            change_type,
            nodes,
            duration_windows: 1,
        }
    }

    /// Builder-style override of the per-node duration.
    pub fn with_duration(mut self, windows: u32) -> Self {
        self.duration_windows = windows.max(1);
        self
    }
}

/// An executed (or scheduled) change on one node — a row of the change log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChangeTicket {
    /// Ticket identifier shared by all nodes of one change activity.
    pub ticket: String,
    /// Node the work happened on.
    pub node: NodeId,
    /// Category.
    pub change_type: ChangeType,
    /// When the work started.
    pub start: SimTime,
    /// Duration in maintenance windows.
    pub duration_windows: u32,
}

/// A busy period from the ticketing system: the node cannot take other
/// changes while an existing ticket occupies it (Listing 1 lines 42–63).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictEntry {
    /// Start of the busy period (inclusive).
    pub start: SimTime,
    /// End of the busy period (inclusive).
    pub end: SimTime,
    /// Tickets responsible for the busy period.
    pub tickets: Vec<String>,
}

impl ConflictEntry {
    /// Whether the busy period overlaps `[from, to]`.
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.start <= to && self.end >= from
    }
}

/// Per-node busy periods extracted from the ticketing system.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConflictTable {
    entries: BTreeMap<NodeId, Vec<ConflictEntry>>,
}

impl ConflictTable {
    /// Empty conflict table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a busy period for a node.
    pub fn add(&mut self, node: NodeId, entry: ConflictEntry) {
        self.entries.entry(node).or_default().push(entry);
    }

    /// Busy periods of a node.
    pub fn entries_of(&self, node: NodeId) -> &[ConflictEntry] {
        self.entries.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes with at least one busy period.
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of busy periods.
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Count conflicting tickets if `node` were worked during `[from, to]`.
    pub fn conflicts_in(&self, node: NodeId, from: SimTime, to: SimTime) -> usize {
        self.entries_of(node)
            .iter()
            .filter(|e| e.overlaps(from, to))
            .map(|e| e.tickets.len().max(1))
            .sum()
    }

    /// Nodes that have any busy period.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.keys().copied()
    }
}

/// A discovered schedule: one timeslot per node, plus leftovers that did
/// not fit in the scheduling window (Algorithm 1 lines 8–10).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Node → assigned slot. Nodes absent from the map are unscheduled.
    pub assignments: BTreeMap<NodeId, Timeslot>,
    /// Nodes that could not be placed inside the window.
    pub leftovers: Vec<NodeId>,
    /// Number of ticket conflicts the schedule incurs (0 under zero
    /// conflict tolerance).
    pub conflicts: usize,
}

impl Schedule {
    /// Latest used slot (the makespan), or `None` for an empty schedule.
    pub fn makespan(&self) -> Option<Timeslot> {
        self.assignments.values().max().copied()
    }

    /// Weighted total completion time: Σ slot × (#nodes in slot) (Eq. 6).
    pub fn weighted_completion_time(&self) -> u64 {
        let mut per_slot: BTreeMap<Timeslot, u64> = BTreeMap::new();
        for slot in self.assignments.values() {
            *per_slot.entry(*slot).or_default() += 1;
        }
        per_slot.iter().map(|(slot, n)| slot.0 as u64 * n).sum()
    }

    /// Number of scheduled nodes.
    pub fn scheduled_count(&self) -> usize {
        self.assignments.len()
    }

    /// Nodes assigned to a given slot, in id order.
    pub fn nodes_in_slot(&self, slot: Timeslot) -> Vec<NodeId> {
        self.assignments
            .iter()
            .filter(|(_, s)| **s == slot)
            .map(|(n, _)| *n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u32) -> SimTime {
        SimTime::from_ymd_hm(2020, 7, day, 0, 0)
    }

    #[test]
    fn conflict_overlap() {
        let e = ConflictEntry {
            start: t(1),
            end: t(4),
            tickets: vec!["A".into()],
        };
        assert!(e.overlaps(t(4), t(6)));
        assert!(e.overlaps(t(2), t(3)));
        assert!(!e.overlaps(t(5), t(6)));
    }

    #[test]
    fn conflict_table_counts_tickets() {
        let mut ct = ConflictTable::new();
        ct.add(
            NodeId(1),
            ConflictEntry {
                start: t(3),
                end: t(5),
                tickets: vec!["A".into(), "B".into()],
            },
        );
        ct.add(
            NodeId(1),
            ConflictEntry {
                start: t(7),
                end: t(15),
                tickets: vec!["C".into()],
            },
        );
        assert_eq!(ct.conflicts_in(NodeId(1), t(4), t(4)), 2);
        assert_eq!(ct.conflicts_in(NodeId(1), t(6), t(6)), 0);
        assert_eq!(ct.conflicts_in(NodeId(1), t(4), t(8)), 3);
        assert_eq!(ct.conflicts_in(NodeId(2), t(1), t(30)), 0);
        assert_eq!(ct.entry_count(), 2);
        assert_eq!(ct.node_count(), 1);
    }

    #[test]
    fn schedule_metrics() {
        let mut s = Schedule::default();
        s.assignments.insert(NodeId(0), Timeslot(1));
        s.assignments.insert(NodeId(1), Timeslot(1));
        s.assignments.insert(NodeId(2), Timeslot(3));
        assert_eq!(s.makespan(), Some(Timeslot(3)));
        // 1*2 + 3*1 = 5
        assert_eq!(s.weighted_completion_time(), 5);
        assert_eq!(s.nodes_in_slot(Timeslot(1)), vec![NodeId(0), NodeId(1)]);
        assert_eq!(s.scheduled_count(), 3);
    }

    #[test]
    fn change_request_duration_floor() {
        let r = ChangeRequest::new("CHG1", ChangeType::ConfigChange, vec![]).with_duration(0);
        assert_eq!(r.duration_windows, 1);
    }

    #[test]
    fn site_visit_flags() {
        assert!(ChangeType::ConstructionWork.requires_site_visit());
        assert!(ChangeType::NodeRetuning.requires_site_visit());
        assert!(!ChangeType::SoftwareUpgrade.requires_site_visit());
        assert!(!ChangeType::ConfigChange.requires_site_visit());
    }
}
