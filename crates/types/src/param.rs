//! Typed parameters flowing between building blocks.
//!
//! Each building block is defined by an input/output parameter list (§3.1),
//! and the workflow designer must "ensure proper propagation of parameter
//! values across building blocks". `ParamType` gives the designer enough
//! type information to reject incompatible compositions at design time,
//! while `ParamValue` is the runtime value carried in the workflow's global
//! state.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Static type of a building-block parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum ParamType {
    /// UTF-8 text (node names, software versions, status strings).
    String,
    /// Signed integer.
    Int,
    /// Floating-point number (KPI values, thresholds).
    Float,
    /// Boolean flag (health status, go/no-go decisions).
    Bool,
    /// Homogeneous list (node lists, KPI vectors).
    List,
    /// String-keyed map (structured results such as pre/post reports).
    Map,
}

/// Runtime value of a building-block parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Text value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// List value.
    List(Vec<ParamValue>),
    /// Map value.
    Map(BTreeMap<String, ParamValue>),
}

impl ParamValue {
    /// The [`ParamType`] this value inhabits.
    pub fn param_type(&self) -> ParamType {
        match self {
            ParamValue::Str(_) => ParamType::String,
            ParamValue::Int(_) => ParamType::Int,
            ParamValue::Float(_) => ParamType::Float,
            ParamValue::Bool(_) => ParamType::Bool,
            ParamValue::List(_) => ParamType::List,
            ParamValue::Map(_) => ParamType::Map,
        }
    }

    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view (ints widen to floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrow as integer if this is an int.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrow the list contents if this is a list.
    pub fn as_list(&self) -> Option<&[ParamValue]> {
        match self {
            ParamValue::List(l) => Some(l),
            _ => None,
        }
    }

    /// Borrow the map contents if this is a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, ParamValue>> {
        match self {
            ParamValue::Map(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Str(s) => f.write_str(s),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            ParamValue::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Str(s.to_owned())
    }
}

impl From<String> for ParamValue {
    fn from(s: String) -> Self {
        ParamValue::Str(s)
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_match_values() {
        assert_eq!(ParamValue::from("x").param_type(), ParamType::String);
        assert_eq!(ParamValue::from(1i64).param_type(), ParamType::Int);
        assert_eq!(ParamValue::from(1.5).param_type(), ParamType::Float);
        assert_eq!(ParamValue::from(true).param_type(), ParamType::Bool);
        assert_eq!(ParamValue::List(vec![]).param_type(), ParamType::List);
        assert_eq!(
            ParamValue::Map(BTreeMap::new()).param_type(),
            ParamType::Map
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(ParamValue::from("hi").as_str(), Some("hi"));
        assert_eq!(ParamValue::from(2i64).as_f64(), Some(2.0));
        assert_eq!(ParamValue::from(2i64).as_i64(), Some(2));
        assert_eq!(ParamValue::from(false).as_bool(), Some(false));
        assert_eq!(ParamValue::from("hi").as_bool(), None);
    }

    #[test]
    fn display_nested() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), ParamValue::from(1i64));
        let v = ParamValue::List(vec![ParamValue::Map(m), ParamValue::from("z")]);
        assert_eq!(v.to_string(), "[{a: 1}, z]");
    }

    #[test]
    fn serde_untagged_round_trip() {
        // The vendored serde_json is a same-process round-trip shim; it
        // does not emit literal JSON text, so assert on the round-trip.
        let v = ParamValue::List(vec![ParamValue::from(1i64), ParamValue::from("two")]);
        let json = serde_json::to_string(&v).unwrap();
        let back: ParamValue = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.param_type(), ParamType::List);
    }
}
