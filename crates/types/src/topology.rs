//! Network topology: physical/logical connectivity and service chains.
//!
//! Topology drives two CORNET capabilities: *conflict scoping* over
//! dependent nodes (e.g. a vGW and the physical server hosting it, §3.3.1)
//! and *control-group derivation* for impact verification (first-hop /
//! second-hop neighbors, §3.5.1, Fig. 14).

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Undirected connectivity graph over inventory nodes plus named service
/// chains (ordered node sequences, §2.2).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    /// Adjacency lists, indexed by `NodeId`. Kept sorted and deduplicated.
    adjacency: Vec<Vec<NodeId>>,
    /// Ordered node sequences that form service chains.
    chains: Vec<ServiceChain>,
}

/// An ordered sequence of nodes traffic traverses (e.g. CPE → vGW → vVIG).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceChain {
    /// Chain name, e.g. `"sdwan-zone3-chain-12"`.
    pub name: String,
    /// Nodes in traversal order.
    pub nodes: Vec<NodeId>,
}

impl Topology {
    /// Topology over `node_count` nodes with no edges.
    pub fn with_capacity(node_count: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); node_count],
            chains: Vec::new(),
        }
    }

    /// Number of nodes the topology covers.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Grow the node table so `id` is addressable.
    fn ensure(&mut self, id: NodeId) {
        if id.index() >= self.adjacency.len() {
            self.adjacency.resize(id.index() + 1, Vec::new());
        }
    }

    /// Add an undirected edge. Self-loops and duplicates are ignored.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.ensure(a);
        self.ensure(b);
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.adjacency[x.index()];
            if let Err(pos) = list.binary_search(&y) {
                list.insert(pos, y);
            }
        }
    }

    /// Register a service chain and link consecutive nodes.
    pub fn add_chain(&mut self, name: impl Into<String>, nodes: Vec<NodeId>) {
        for pair in nodes.windows(2) {
            self.add_edge(pair[0], pair[1]);
        }
        self.chains.push(ServiceChain {
            name: name.into(),
            nodes,
        });
    }

    /// Service chains containing a node.
    pub fn chains_of(&self, id: NodeId) -> impl Iterator<Item = &ServiceChain> {
        self.chains.iter().filter(move |c| c.nodes.contains(&id))
    }

    /// All registered chains.
    pub fn chains(&self) -> &[ServiceChain] {
        &self.chains
    }

    /// Direct neighbors of a node (sorted).
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.adjacency
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether two nodes are directly connected.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Nodes at exactly `hops` hops from `id` (BFS ring). `hops == 0`
    /// returns just the node itself.
    ///
    /// This implements the paper's control-group tiers: 1st tier = 1 hop,
    /// 2nd tier = 2 hops, "2nd minus 1st" = this function at `hops = 2`.
    pub fn ring(&self, id: NodeId, hops: usize) -> Vec<NodeId> {
        if id.index() >= self.adjacency.len() {
            return if hops == 0 { vec![id] } else { Vec::new() };
        }
        let mut dist = vec![usize::MAX; self.adjacency.len()];
        let mut queue = VecDeque::new();
        dist[id.index()] = 0;
        queue.push_back(id);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            let d = dist[cur.index()];
            if d == hops {
                out.push(cur);
                continue; // no need to expand past the target ring
            }
            for &nb in self.neighbors(cur) {
                if dist[nb.index()] == usize::MAX {
                    dist[nb.index()] = d + 1;
                    queue.push_back(nb);
                }
            }
        }
        out.sort();
        out
    }

    /// Nodes within `hops` hops of `id`, excluding `id` itself.
    pub fn within(&self, id: NodeId, hops: usize) -> Vec<NodeId> {
        let mut out = BTreeSet::new();
        for h in 1..=hops {
            out.extend(self.ring(id, h));
        }
        out.into_iter().collect()
    }

    /// Connected components over a *subset* of nodes, using only edges whose
    /// endpoints are both in the subset. Used by the planner's independent
    /// sub-problem decomposition (§3.3.3 idea (b)).
    pub fn components(&self, subset: &[NodeId]) -> Vec<Vec<NodeId>> {
        let in_subset: BTreeSet<NodeId> = subset.iter().copied().collect();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut comps = Vec::new();
        for &start in subset {
            if seen.contains(&start) {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen.insert(start);
            while let Some(cur) = queue.pop_front() {
                comp.push(cur);
                for &nb in self.neighbors(cur) {
                    if in_subset.contains(&nb) && seen.insert(nb) {
                        queue.push_back(nb);
                    }
                }
            }
            comp.sort();
            comps.push(comp);
        }
        comps
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Union of several daily topology snapshots — the §5.3 repair for
    /// inconsistent feeds: "even if some of the eNodeB-switch
    /// relationships are inconsistent, we can infer correct connections
    /// based on taking a union of last five days' worth of data."
    ///
    /// Edges and chains from every snapshot are merged; the downside the
    /// paper notes (decommissioned links linger, making schedules more
    /// conservative) is inherent to the union.
    pub fn union(snapshots: &[&Topology]) -> Topology {
        let node_count = snapshots.iter().map(|t| t.node_count()).max().unwrap_or(0);
        let mut merged = Topology::with_capacity(node_count);
        for snap in snapshots {
            for (i, neighbors) in snap.adjacency.iter().enumerate() {
                for &nb in neighbors {
                    merged.add_edge(NodeId(i as u32), nb);
                }
            }
            for chain in &snap.chains {
                if !merged.chains.iter().any(|c| c.name == chain.name) {
                    merged.chains.push(chain.clone());
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Topology {
        // 0 - 1 - 2 - 3
        let mut t = Topology::with_capacity(4);
        t.add_edge(NodeId(0), NodeId(1));
        t.add_edge(NodeId(1), NodeId(2));
        t.add_edge(NodeId(2), NodeId(3));
        t
    }

    #[test]
    fn edges_are_undirected_and_deduped() {
        let mut t = Topology::with_capacity(2);
        t.add_edge(NodeId(0), NodeId(1));
        t.add_edge(NodeId(1), NodeId(0));
        t.add_edge(NodeId(0), NodeId(0)); // self-loop ignored
        assert_eq!(t.edge_count(), 1);
        assert!(t.connected(NodeId(0), NodeId(1)));
        assert!(t.connected(NodeId(1), NodeId(0)));
    }

    #[test]
    fn rings_match_hop_distance() {
        let t = path4();
        assert_eq!(t.ring(NodeId(0), 0), vec![NodeId(0)]);
        assert_eq!(t.ring(NodeId(0), 1), vec![NodeId(1)]);
        assert_eq!(t.ring(NodeId(0), 2), vec![NodeId(2)]);
        assert_eq!(t.ring(NodeId(1), 1), vec![NodeId(0), NodeId(2)]);
        assert_eq!(t.ring(NodeId(0), 9), Vec::<NodeId>::new());
    }

    #[test]
    fn within_excludes_self() {
        let t = path4();
        assert_eq!(
            t.within(NodeId(1), 2),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
        assert!(!t.within(NodeId(1), 2).contains(&NodeId(1)));
    }

    #[test]
    fn chains_create_edges_and_lookup() {
        let mut t = Topology::with_capacity(3);
        t.add_chain("c1", vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(t.connected(NodeId(0), NodeId(1)));
        assert!(t.connected(NodeId(1), NodeId(2)));
        assert!(!t.connected(NodeId(0), NodeId(2)));
        assert_eq!(t.chains_of(NodeId(1)).count(), 1);
        assert_eq!(t.chains_of(NodeId(1)).next().unwrap().name, "c1");
    }

    #[test]
    fn components_respect_subset() {
        let t = path4();
        // Removing node 1 from the subset splits {0} from {2,3}.
        let comps = t.components(&[NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![NodeId(0)]));
        assert!(comps.contains(&vec![NodeId(2), NodeId(3)]));
    }

    #[test]
    fn union_repairs_missing_edges() {
        // Day 1 misses edge 1-2; day 2 misses edge 0-1; the union has both.
        let mut day1 = Topology::with_capacity(3);
        day1.add_edge(NodeId(0), NodeId(1));
        let mut day2 = Topology::with_capacity(3);
        day2.add_edge(NodeId(1), NodeId(2));
        let merged = Topology::union(&[&day1, &day2]);
        assert!(merged.connected(NodeId(0), NodeId(1)));
        assert!(merged.connected(NodeId(1), NodeId(2)));
        assert_eq!(merged.edge_count(), 2);
    }

    #[test]
    fn union_deduplicates_chains_by_name() {
        let mut day1 = Topology::with_capacity(3);
        day1.add_chain("c", vec![NodeId(0), NodeId(1)]);
        let mut day2 = Topology::with_capacity(3);
        day2.add_chain("c", vec![NodeId(0), NodeId(1)]);
        day2.add_chain("d", vec![NodeId(1), NodeId(2)]);
        let merged = Topology::union(&[&day1, &day2]);
        assert_eq!(merged.chains().len(), 2);
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let merged = Topology::union(&[]);
        assert_eq!(merged.node_count(), 0);
        assert_eq!(merged.edge_count(), 0);
    }

    #[test]
    fn out_of_range_node_has_no_neighbors() {
        let t = path4();
        assert!(t.neighbors(NodeId(99)).is_empty());
        assert_eq!(t.ring(NodeId(99), 0), vec![NodeId(99)]);
        assert!(t.ring(NodeId(99), 1).is_empty());
    }
}
