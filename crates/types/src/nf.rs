//! Network-function taxonomy.
//!
//! The paper's evaluation spans 4G/5G radio access (eNodeB, gNodeB),
//! transport (SIAD switches), core routers, and the virtualized functions of
//! three cloud services: VPN (vCE), SDWAN (vGW, portal, CPE, vVIG), and the
//! virtualized cellular core (vCOM, vRAR) — see Appendix A. Physical servers
//! appear as a layer below VNFs for cross-layer conflict scoping (§2.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a network-function instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum NfType {
    /// 4G LTE base station.
    ENodeB,
    /// 5G base station.
    GNodeB,
    /// Smart Integrated Access Device — transport switch aggregating
    /// co-located base stations.
    Siad,
    /// Transport-layer switch (e.g. top-of-rack in a cloud zone).
    TransportSwitch,
    /// Core router (VPN backbone).
    CoreRouter,
    /// Mobility management entity (4G core).
    Mme,
    /// Serving/packet gateway (4G/5G core).
    SPGateway,
    /// Virtual customer-edge router (VPN service).
    VceRouter,
    /// Virtual gateway (SDWAN traffic tunneling).
    VGateway,
    /// SDWAN configuration & monitoring portal.
    Portal,
    /// Virtualized internet gateway (SDWAN).
    Vvig,
    /// Customer premise equipment (SDWAN edge).
    Cpe,
    /// Centralized operations management VNF (VoLTE core).
    Vcom,
    /// Revenue assurance reporting VNF (VoLTE core).
    Vrar,
    /// Physical server hosting VNFs (cross-layer dependency target).
    PhysicalServer,
}

impl NfType {
    /// All variants, in declaration order.
    pub const ALL: [NfType; 15] = [
        NfType::ENodeB,
        NfType::GNodeB,
        NfType::Siad,
        NfType::TransportSwitch,
        NfType::CoreRouter,
        NfType::Mme,
        NfType::SPGateway,
        NfType::VceRouter,
        NfType::VGateway,
        NfType::Portal,
        NfType::Vvig,
        NfType::Cpe,
        NfType::Vcom,
        NfType::Vrar,
        NfType::PhysicalServer,
    ];

    /// Whether instances of this type are virtualized network functions
    /// (and thus carry a cross-layer dependency on a hosting server).
    pub fn is_virtualized(self) -> bool {
        matches!(
            self,
            NfType::VceRouter
                | NfType::VGateway
                | NfType::Portal
                | NfType::Vvig
                | NfType::Vcom
                | NfType::Vrar
        )
    }

    /// Whether this type sits in the radio access network.
    pub fn is_ran(self) -> bool {
        matches!(self, NfType::ENodeB | NfType::GNodeB)
    }

    /// Short lowercase name used in inventories and model comments.
    pub fn name(self) -> &'static str {
        match self {
            NfType::ENodeB => "enodeb",
            NfType::GNodeB => "gnodeb",
            NfType::Siad => "siad",
            NfType::TransportSwitch => "transport_switch",
            NfType::CoreRouter => "core_router",
            NfType::Mme => "mme",
            NfType::SPGateway => "sp_gateway",
            NfType::VceRouter => "vce_router",
            NfType::VGateway => "vgateway",
            NfType::Portal => "portal",
            NfType::Vvig => "vvig",
            NfType::Cpe => "cpe",
            NfType::Vcom => "vcom",
            NfType::Vrar => "vrar",
            NfType::PhysicalServer => "physical_server",
        }
    }
}

impl fmt::Display for NfType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtualization_flags() {
        assert!(NfType::VceRouter.is_virtualized());
        assert!(NfType::Vcom.is_virtualized());
        assert!(!NfType::ENodeB.is_virtualized());
        assert!(!NfType::PhysicalServer.is_virtualized());
    }

    #[test]
    fn ran_flags() {
        assert!(NfType::ENodeB.is_ran());
        assert!(NfType::GNodeB.is_ran());
        assert!(!NfType::Siad.is_ran());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = NfType::ALL.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NfType::ALL.len());
    }

    #[test]
    fn serde_round_trip() {
        // The vendored serde_json is a same-process round-trip shim; it
        // does not emit literal JSON text, so assert on the round-trip.
        let s = serde_json::to_string(&NfType::VceRouter).unwrap();
        let t: NfType = serde_json::from_str(&s).unwrap();
        assert_eq!(t, NfType::VceRouter);
    }
}
