//! Stable identifiers for network elements.
//!
//! The paper's schedulable unit is the *common_id* of a network function
//! instance (§3.3.2). We represent it as a dense `NodeId` so that planner
//! and solver data structures can be flat vectors indexed by id.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a network-function instance (the paper's `common_id`).
///
/// Ids are assigned densely from 0 by [`crate::inventory::Inventory`], so a
/// `NodeId` can index flat `Vec`s without hashing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Return the id as a usable vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the `id000001` style used in the paper's Listing 1.
        write!(f, "id{:06}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_listing_style() {
        assert_eq!(NodeId(1).to_string(), "id000001");
        assert_eq!(NodeId(283).to_string(), "id000283");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(NodeId::from(7u32), NodeId(7));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
    }
}
