//! Attribute keys and values attached to inventory records.
//!
//! CORNET's planner and verifier are *attribute driven*: scheduling intents
//! name attributes (`market`, `timezone`, `pool_id`, …) and the framework
//! resolves them against the inventory at translation time (§3.3.2). We keep
//! attributes as an open string-keyed map rather than a closed struct so
//! that new network-function types can introduce attributes without code
//! changes — the heart of the paper's "NF-agnostic" claim.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Name of an attribute, e.g. `"market"` or `"timezone"`.
pub type AttrKey = String;

/// Value of a single inventory attribute.
///
/// Attribute values appear in three roles: grouping keys (strings), numeric
/// quantities compared with distance operators (the uniformity constraint
/// compares UTC offsets numerically), and weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum AttrValue {
    /// Categorical value such as a market name or hardware version.
    Str(String),
    /// Integral value such as a pool id or capacity.
    Int(i64),
    /// Real value such as a UTC offset (may be fractional, e.g. +5.5).
    Float(f64),
}

impl AttrValue {
    /// Numeric view of the value, if it has one.
    ///
    /// Used by constraints that need a metric over attribute values, e.g.
    /// the uniformity constraint's "at most one timezone apart" rule.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Str(_) => None,
            AttrValue::Int(v) => Some(*v as f64),
            AttrValue::Float(v) => Some(*v),
        }
    }

    /// Canonical string form used as a grouping key.
    ///
    /// Two values group together iff their keys are equal; floats are
    /// formatted with enough precision that distinct offsets stay distinct.
    pub fn group_key(&self) -> String {
        match self {
            AttrValue::Str(s) => s.clone(),
            AttrValue::Int(v) => v.to_string(),
            AttrValue::Float(v) => format!("{v:.4}"),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

/// Ordered attribute map for one inventory record.
///
/// `BTreeMap` keeps iteration deterministic, which matters for reproducible
/// model generation: the same inventory must always produce the same
/// MiniZinc-style model text.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Attributes(pub BTreeMap<AttrKey, AttrValue>);

impl Attributes {
    /// Empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an attribute, replacing any previous value under the key.
    pub fn set(&mut self, key: impl Into<AttrKey>, value: impl Into<AttrValue>) -> &mut Self {
        self.0.insert(key.into(), value.into());
        self
    }

    /// Builder-style insert for literal construction in tests and examples.
    pub fn with(mut self, key: impl Into<AttrKey>, value: impl Into<AttrValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Look up an attribute value.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.0.get(key)
    }

    /// Grouping key for the attribute, or `None` when the record lacks it.
    pub fn group_key(&self, key: &str) -> Option<String> {
        self.get(key).map(AttrValue::group_key)
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrKey, &AttrValue)> {
        self.0.iter()
    }

    /// Number of attributes present.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_group_key() {
        let mut a = Attributes::new();
        a.set("market", "NYC")
            .set("pool_id", 7i64)
            .set("utc_offset", -5.0);
        assert_eq!(a.get("market"), Some(&AttrValue::Str("NYC".into())));
        assert_eq!(a.group_key("pool_id").as_deref(), Some("7"));
        assert_eq!(a.group_key("utc_offset").as_deref(), Some("-5.0000"));
        assert_eq!(a.group_key("missing"), None);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(AttrValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AttrValue::Float(-4.5).as_f64(), Some(-4.5));
        assert_eq!(AttrValue::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn deterministic_iteration_order() {
        let a = Attributes::new()
            .with("z", 1i64)
            .with("a", 2i64)
            .with("m", 3i64);
        let keys: Vec<_> = a.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "m", "z"]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Attributes::new().with("market", "DFW").with("offset", -6.0);
        let json = serde_json::to_string(&a).unwrap();
        let back: Attributes = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn float_group_keys_distinguish_nearby_offsets() {
        // India (+5.5) must not collide with +5.
        let a = AttrValue::Float(5.5).group_key();
        let b = AttrValue::Float(5.0).group_key();
        assert_ne!(a, b);
    }
}
