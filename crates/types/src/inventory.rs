//! Inventory: the attribute database the planner and verifier resolve
//! high-level intents against.
//!
//! The paper's constraint rules name attributes (`market`, `timezone`,
//! `pool_id`, …) and CORNET "must figure out the mapping between the ESA
//! common_id and the non-ESA" attribute (§3.3.2). [`Inventory`] owns the
//! records and builds those sparse ESA↔attribute mappings on demand.

use crate::attr::{AttrValue, Attributes};
use crate::id::NodeId;
use crate::nf::NfType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One network-function instance and its attributes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InventoryRecord {
    /// Dense instance id (the paper's `common_id`).
    pub id: NodeId,
    /// Human-readable instance name, e.g. `"enb-NYC-00017"`.
    pub name: String,
    /// Network-function type.
    pub nf_type: NfType,
    /// Open attribute map: market, tac, usid, ems, timezone/utc_offset,
    /// hw_version, sw_version, pool_id, …
    pub attrs: Attributes,
}

impl InventoryRecord {
    /// Construct a record; attributes can be added afterwards via `attrs`.
    pub fn new(id: NodeId, name: impl Into<String>, nf_type: NfType) -> Self {
        Self {
            id,
            name: name.into(),
            nf_type,
            attrs: Attributes::new(),
        }
    }
}

/// Collection of inventory records with dense ids and attribute indexes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Inventory {
    records: Vec<InventoryRecord>,
}

impl Inventory {
    /// Empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, assigning it the next dense [`NodeId`].
    pub fn push(&mut self, name: impl Into<String>, nf_type: NfType, attrs: Attributes) -> NodeId {
        let id = NodeId(self.records.len() as u32);
        self.records.push(InventoryRecord {
            id,
            name: name.into(),
            nf_type,
            attrs,
        });
        id
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the inventory holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow a record by id.
    pub fn get(&self, id: NodeId) -> Option<&InventoryRecord> {
        self.records.get(id.index())
    }

    /// Borrow a record by id, panicking on an unknown id.
    ///
    /// Planner internals use this after validating ids once at the intent
    /// boundary, so a miss here is a programming error.
    pub fn record(&self, id: NodeId) -> &InventoryRecord {
        &self.records[id.index()]
    }

    /// Iterate over all records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &InventoryRecord> {
        self.records.iter()
    }

    /// All node ids in the inventory.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.records.len() as u32).map(NodeId)
    }

    /// Find a record by its human-readable name (linear scan; intended for
    /// tests and small intent inputs, not hot paths).
    pub fn find_by_name(&self, name: &str) -> Option<&InventoryRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Attribute value of a node, with `nf_type` and `common_id` exposed as
    /// virtual attributes so intents can group by them uniformly.
    pub fn attr_of(&self, id: NodeId, key: &str) -> Option<AttrValue> {
        let rec = self.get(id)?;
        match key {
            "common_id" => Some(AttrValue::Str(id.to_string())),
            "nf_type" => Some(AttrValue::Str(rec.nf_type.name().to_owned())),
            _ => rec.attrs.get(key).cloned(),
        }
    }

    /// Grouping key of a node under an attribute, if present.
    pub fn group_key_of(&self, id: NodeId, key: &str) -> Option<String> {
        self.attr_of(id, key).map(|v| v.group_key())
    }

    /// The sparse ESA↔attribute mapping Q of §3.3.2: distinct attribute
    /// values in first-seen order, plus each node's group index (or `None`
    /// when the node lacks the attribute).
    ///
    /// Restricting to `nodes` keeps the mapping as small as the request.
    pub fn group_by(&self, nodes: &[NodeId], key: &str) -> AttributeGroups {
        let mut value_to_group: BTreeMap<String, usize> = BTreeMap::new();
        let mut values: Vec<String> = Vec::new();
        let mut membership: Vec<Option<usize>> = Vec::with_capacity(nodes.len());
        for &id in nodes {
            match self.group_key_of(id, key) {
                Some(v) => {
                    let g = *value_to_group.entry(v.clone()).or_insert_with(|| {
                        values.push(v.clone());
                        values.len() - 1
                    });
                    membership.push(Some(g));
                }
                None => membership.push(None),
            }
        }
        AttributeGroups {
            key: key.to_owned(),
            values,
            membership,
        }
    }

    /// Distinct values of an attribute across the whole inventory.
    pub fn distinct_values(&self, key: &str) -> Vec<String> {
        let ids: Vec<NodeId> = self.ids().collect();
        self.group_by(&ids, key).values
    }
}

/// Result of grouping a node list by one attribute: the paper's sparse
/// mapping Q between schedulable units and a non-ESA attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeGroups {
    /// Attribute key that was grouped on.
    pub key: String,
    /// Distinct attribute values, indexed by group id.
    pub values: Vec<String>,
    /// For each input node (parallel to the `nodes` slice passed to
    /// [`Inventory::group_by`]): its group id, or `None` if the attribute
    /// was absent on that node.
    pub membership: Vec<Option<usize>>,
}

impl AttributeGroups {
    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        self.values.len()
    }

    /// Indices of input nodes in each group (group id → node positions).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.values.len()];
        for (pos, g) in self.membership.iter().enumerate() {
            if let Some(g) = g {
                out[*g].push(pos);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Inventory {
        let mut inv = Inventory::new();
        for (name, market, tz) in [
            ("enb-1", "NYC", -5.0),
            ("enb-2", "NYC", -5.0),
            ("enb-3", "DFW", -6.0),
            ("enb-4", "LAX", -8.0),
        ] {
            inv.push(
                name,
                NfType::ENodeB,
                Attributes::new()
                    .with("market", market)
                    .with("utc_offset", tz),
            );
        }
        inv
    }

    #[test]
    fn push_assigns_dense_ids() {
        let inv = sample();
        assert_eq!(inv.len(), 4);
        assert_eq!(inv.get(NodeId(2)).unwrap().name, "enb-3");
        assert!(inv.get(NodeId(9)).is_none());
    }

    #[test]
    fn virtual_attributes() {
        let inv = sample();
        assert_eq!(
            inv.attr_of(NodeId(0), "common_id"),
            Some(AttrValue::Str("id000000".into()))
        );
        assert_eq!(
            inv.attr_of(NodeId(0), "nf_type"),
            Some(AttrValue::Str("enodeb".into()))
        );
    }

    #[test]
    fn group_by_builds_sparse_mapping() {
        let inv = sample();
        let nodes: Vec<NodeId> = inv.ids().collect();
        let g = inv.group_by(&nodes, "market");
        assert_eq!(g.values, vec!["NYC", "DFW", "LAX"]);
        assert_eq!(g.membership, vec![Some(0), Some(0), Some(1), Some(2)]);
        assert_eq!(g.members(), vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn group_by_missing_attribute() {
        let inv = sample();
        let nodes: Vec<NodeId> = inv.ids().collect();
        let g = inv.group_by(&nodes, "nonexistent");
        assert_eq!(g.group_count(), 0);
        assert!(g.membership.iter().all(Option::is_none));
    }

    #[test]
    fn group_by_subset_only_sees_subset_values() {
        let inv = sample();
        let g = inv.group_by(&[NodeId(2), NodeId(3)], "market");
        assert_eq!(g.values, vec!["DFW", "LAX"]);
    }

    #[test]
    fn find_by_name() {
        let inv = sample();
        assert_eq!(inv.find_by_name("enb-4").unwrap().id, NodeId(3));
        assert!(inv.find_by_name("nope").is_none());
    }

    #[test]
    fn distinct_values() {
        let inv = sample();
        assert_eq!(inv.distinct_values("market").len(), 3);
        assert_eq!(inv.distinct_values("nf_type"), vec!["enodeb"]);
    }
}
