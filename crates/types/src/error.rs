//! Workspace-wide error type.
//!
//! CORNET components fail for a small number of reasons — malformed intent,
//! unknown attributes, workflow validation failures, infeasible models,
//! execution fall-outs — and every crate reports them through this enum so
//! callers compose phases without per-crate error plumbing.

use std::fmt;

/// Error type shared across the CORNET workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CornetError {
    /// Text or JSON input could not be parsed.
    Parse(String),
    /// An intent referenced an attribute, node, or block that does not exist.
    UnknownReference(String),
    /// A workflow failed structural validation (e.g. zombie blocks, §3.2).
    InvalidWorkflow(String),
    /// An intent is self-contradictory or unsupported.
    InvalidIntent(String),
    /// The generated model admits no solution under zero conflict tolerance.
    Infeasible(String),
    /// A building block failed during orchestration.
    ExecutionFailed(String),
    /// An operation was attempted in the wrong state (e.g. resuming a
    /// workflow instance that is not paused).
    InvalidState(String),
    /// Input data failed an integrity check (§5.3: missing measurements,
    /// inconsistent topology snapshots).
    DataIntegrity(String),
}

impl fmt::Display for CornetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CornetError::Parse(m) => write!(f, "parse error: {m}"),
            CornetError::UnknownReference(m) => write!(f, "unknown reference: {m}"),
            CornetError::InvalidWorkflow(m) => write!(f, "invalid workflow: {m}"),
            CornetError::InvalidIntent(m) => write!(f, "invalid intent: {m}"),
            CornetError::Infeasible(m) => write!(f, "infeasible: {m}"),
            CornetError::ExecutionFailed(m) => write!(f, "execution failed: {m}"),
            CornetError::InvalidState(m) => write!(f, "invalid state: {m}"),
            CornetError::DataIntegrity(m) => write!(f, "data integrity: {m}"),
        }
    }
}

impl std::error::Error for CornetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = CornetError::InvalidWorkflow("zombie block 'roll-back'".into());
        let s = e.to_string();
        assert!(s.contains("invalid workflow"));
        assert!(s.contains("zombie block"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CornetError::Parse("x".into()));
    }
}
