//! Workspace-wide error type.
//!
//! CORNET components fail for a small number of reasons — malformed intent,
//! unknown attributes, workflow validation failures, infeasible models,
//! execution fall-outs — and every crate reports them through this enum so
//! callers compose phases without per-crate error plumbing.

use std::fmt;

/// Error type shared across the CORNET workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CornetError {
    /// Text or JSON input could not be parsed.
    Parse(String),
    /// An intent referenced an attribute, node, or block that does not exist.
    UnknownReference(String),
    /// A workflow failed structural validation (e.g. zombie blocks, §3.2).
    InvalidWorkflow(String),
    /// An intent is self-contradictory or unsupported.
    InvalidIntent(String),
    /// The generated model admits no solution under zero conflict tolerance.
    Infeasible(String),
    /// A building block failed during orchestration and retrying cannot
    /// help (wrong credentials, missing artifact, persistent refusal).
    ExecutionFailed(String),
    /// A building block failed for a reason expected to clear on its own —
    /// §5.1's SSH connectivity losses are the canonical case. Retry
    /// policies only re-attempt this class.
    TransientFailure(String),
    /// A building block overran its execution deadline.
    Timeout(String),
    /// A caller passed a structurally invalid argument (e.g. a dispatcher
    /// concurrency of zero).
    InvalidInput(String),
    /// An operation was attempted in the wrong state (e.g. resuming a
    /// workflow instance that is not paused).
    InvalidState(String),
    /// Input data failed an integrity check (§5.3: missing measurements,
    /// inconsistent topology snapshots).
    DataIntegrity(String),
}

/// Retry-eligibility class of an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Expected to clear on re-attempt (connectivity blips, deadline
    /// overruns); retry policies may re-execute the block.
    Transient,
    /// Re-attempting cannot change the outcome; the instance must fail or
    /// back out.
    Permanent,
}

impl CornetError {
    /// Classify the error for retry eligibility.
    pub fn class(&self) -> ErrorClass {
        match self {
            CornetError::TransientFailure(_) | CornetError::Timeout(_) => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }

    /// True when a retry policy may re-attempt after this error.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for CornetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CornetError::Parse(m) => write!(f, "parse error: {m}"),
            CornetError::UnknownReference(m) => write!(f, "unknown reference: {m}"),
            CornetError::InvalidWorkflow(m) => write!(f, "invalid workflow: {m}"),
            CornetError::InvalidIntent(m) => write!(f, "invalid intent: {m}"),
            CornetError::Infeasible(m) => write!(f, "infeasible: {m}"),
            CornetError::ExecutionFailed(m) => write!(f, "execution failed: {m}"),
            CornetError::TransientFailure(m) => write!(f, "transient failure: {m}"),
            CornetError::Timeout(m) => write!(f, "timeout: {m}"),
            CornetError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            CornetError::InvalidState(m) => write!(f, "invalid state: {m}"),
            CornetError::DataIntegrity(m) => write!(f, "data integrity: {m}"),
        }
    }
}

impl std::error::Error for CornetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = CornetError::InvalidWorkflow("zombie block 'roll-back'".into());
        let s = e.to_string();
        assert!(s.contains("invalid workflow"));
        assert!(s.contains("zombie block"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CornetError::Parse("x".into()));
    }

    #[test]
    fn taxonomy_splits_transient_from_permanent() {
        assert!(CornetError::TransientFailure("ssh blip".into()).is_transient());
        assert!(CornetError::Timeout("deadline 5s".into()).is_transient());
        for permanent in [
            CornetError::Parse("x".into()),
            CornetError::ExecutionFailed("bad image".into()),
            CornetError::InvalidInput("concurrency 0".into()),
            CornetError::InvalidState("not paused".into()),
            CornetError::DataIntegrity("gap".into()),
        ] {
            assert_eq!(permanent.class(), ErrorClass::Permanent, "{permanent}");
        }
    }
}
