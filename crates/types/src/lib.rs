//! # cornet-types
//!
//! Shared vocabulary for the CORNET workspace: identifiers, attribute maps,
//! inventory records, network topology, simulated time, and change-management
//! domain types (change types, tickets, conflict tables).
//!
//! Every other crate in the workspace builds on these types, so this crate
//! deliberately has no dependency on the rest of CORNET and only depends on
//! `serde` for interchange (the paper's user-facing intent API is JSON).

#![forbid(unsafe_code)]
pub mod attr;
pub mod change;
pub mod error;
pub mod id;
pub mod inventory;
pub mod json;
pub mod nf;
pub mod param;
pub mod time;
pub mod topology;

pub use attr::{AttrKey, AttrValue, Attributes};
pub use change::{ChangeRequest, ChangeTicket, ChangeType, ConflictEntry, ConflictTable, Schedule};
pub use error::{CornetError, ErrorClass};
pub use id::NodeId;
pub use inventory::{Inventory, InventoryRecord};
pub use nf::NfType;
pub use param::{ParamType, ParamValue};
pub use time::{Granularity, MaintenanceWindow, SchedulingWindow, SimTime, TimeUnit, Timeslot};
pub use topology::{ServiceChain, Topology};

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, CornetError>;
