//! # rayon (in-tree stand-in)
//!
//! A miniature, API-compatible substitute for the subset of the `rayon`
//! crate this workspace uses: `par_iter().map(..).collect::<Vec<_>>()`
//! over slices, plus [`join`] and [`current_num_threads`]. The build
//! environment resolves crates.io from a fixed vendor set that does not
//! include rayon, so the workspace vendors this shim as a path crate;
//! swapping it for the real crate is a one-line change in the workspace
//! `Cargo.toml` and no call sites move.
//!
//! Semantics the callers rely on (and the real rayon provides):
//!
//! * **Order preservation** — `collect` returns results in the input
//!   order regardless of which worker computed them.
//! * **Work stealing-ish scheduling** — items are handed to workers one
//!   at a time through an atomic cursor, so one slow item does not stall
//!   a statically assigned chunk behind it.
//! * **Panic propagation** — a panicking closure aborts the `collect`
//!   with the original panic payload.
//!
//! The worker count is `std::thread::available_parallelism()`, capped by
//! the item count; with a single hardware thread (or a single item) the
//! whole map runs inline on the caller's thread, which keeps tiny inputs
//! allocation-free and makes single-core CI behave exactly like a plain
//! `iter().map().collect()`.

#![forbid(unsafe_code)]
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Number of worker threads a parallel map would use right now.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Conversion of a borrowed collection into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f`; evaluation happens at `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Evaluate the map across worker threads and collect the results in
    /// input order.
    pub fn collect<C: FromOrderedResults<R>>(self) -> C {
        let n = self.items.len();
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            return C::from_ordered(self.items.iter().map(&self.f).collect());
        }
        let cursor = AtomicUsize::new(0);
        let f = &self.f;
        let items = self.items;
        let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
        for bucket in buckets.drain(..) {
            indexed.extend(bucket);
        }
        indexed.sort_by_key(|(i, _)| *i);
        C::from_ordered(indexed.into_iter().map(|(_, r)| r).collect())
    }
}

/// Sink for ordered parallel results (rayon's `FromParallelIterator`).
pub trait FromOrderedResults<R> {
    /// Build the collection from results already in input order.
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromOrderedResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Make early items slow so late items finish first on any
        // multi-threaded run; order must survive.
        let xs: Vec<u64> = (0..64).collect();
        let ys: Vec<u64> = xs
            .par_iter()
            .map(|&x| {
                if x < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x
            })
            .collect();
        assert_eq!(ys, xs);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let xs = vec![1, 2, 3];
        let _: Vec<i32> = xs
            .par_iter()
            .map(|&x| if x == 2 { panic!("boom") } else { x })
            .collect();
    }
}
