//! The `cornet check` gate: one driver running every static-analysis
//! pass over a MOP bundle.
//!
//! A MOP ("method of procedure") bundle is everything a change ships
//! with: the workflows to execute, the scheduling intent, the
//! verification rules, the resilience configuration, and the campaigns
//! already planned against the same network. Each piece has its own
//! analyzer (`cornet_workflow::analyze`, `cornet_planner::analyze_intent`,
//! `cornet_planner::analyze_campaigns`,
//! `cornet_orchestrator::analyze_resilience`,
//! `cornet_verifier::analyze_rules`); this module instantiates the
//! generic [`Driver`] over the concrete bundle so they all run as one
//! pipeline producing one deterministic [`Report`] — the artifact the CLI
//! renders and the deployment gate consults.

use cornet_analysis::{Code, Diagnostic, Driver, Report, SourceRef};
use cornet_catalog::{builtin_catalog, Catalog};
use cornet_orchestrator::resilience::{CircuitBreaker, RetryPolicy};
use cornet_orchestrator::ResilienceSpec;
use cornet_planner::{analyze_campaigns, analyze_intent, Campaign, PlanIntent};
use cornet_types::json::{parse, JsonValue};
use cornet_types::{
    Attributes, CornetError, Inventory, NfType, NodeId, ParamType, Result, Schedule, Timeslot,
};
use cornet_verifier::{analyze_rules, ControlSelection, Expectation, KpiQuery, VerificationRule};
use cornet_workflow::{Designer, Workflow};
use std::collections::BTreeMap;
use std::time::Duration;

/// Everything one change ships with, assembled for static analysis.
pub struct MopBundle {
    /// Building-block catalog the workflows draw from.
    pub catalog: Catalog,
    /// Workflows the change executes.
    pub workflows: Vec<Workflow>,
    /// Scheduling intent, if the change is planner-scheduled.
    pub intent: Option<PlanIntent>,
    /// Inventory the intent and rules are resolved against.
    pub inventory: Inventory,
    /// Node scope of the change (defaults to the whole inventory).
    pub scope: Vec<NodeId>,
    /// Verification rules gating the change.
    pub rules: Vec<VerificationRule>,
    /// The data adapter's KPI names, when enumerable.
    pub known_kpis: Option<Vec<String>>,
    /// Retry/deadline/breaker configuration, when declared.
    pub resilience: Option<ResilienceSpec>,
    /// Already-planned campaigns over the same network.
    pub campaigns: Vec<Campaign>,
}

impl Default for MopBundle {
    fn default() -> Self {
        MopBundle {
            catalog: builtin_catalog(),
            workflows: Vec::new(),
            intent: None,
            inventory: Inventory::new(),
            scope: Vec::new(),
            rules: Vec::new(),
            known_kpis: None,
            resilience: None,
            campaigns: Vec::new(),
        }
    }
}

/// The standard pipeline: every analyzer in the workspace, in dependency
/// order (structure before dataflow is internal to the workflow pass).
pub fn standard_driver() -> Driver<MopBundle> {
    let mut driver = Driver::new();
    driver.register_fn("workflow", |b: &MopBundle, report: &mut Report| {
        for wf in &b.workflows {
            report.merge(cornet_workflow::analyze(wf, &b.catalog));
        }
    });
    driver.register_fn("intent-lint", |b: &MopBundle, report: &mut Report| {
        if let Some(intent) = &b.intent {
            match analyze_intent(intent, &b.inventory, &b.scope) {
                Ok(r) => report.merge(r),
                Err(e) => report.push(Diagnostic::error(
                    Code("CN0417"),
                    SourceRef::Intent,
                    format!("intent could not be analyzed: {e}"),
                )),
            }
        }
    });
    driver.register_fn(
        "campaign-conflicts",
        |b: &MopBundle, report: &mut Report| {
            analyze_campaigns(&b.campaigns, b.intent.as_ref(), report);
        },
    );
    driver.register_fn("interference", |b: &MopBundle, report: &mut Report| {
        crate::blast::analyze_interference(b, report);
    });
    driver.register_fn("resilience", |b: &MopBundle, report: &mut Report| {
        if let Some(spec) = &b.resilience {
            cornet_orchestrator::analyze_resilience(spec, report);
        }
    });
    driver.register_fn("replay-safety", |b: &MopBundle, report: &mut Report| {
        for wf in &b.workflows {
            cornet_orchestrator::analyze_replay_safety(wf, &b.catalog, report);
        }
    });
    driver.register_fn(
        "verification-rules",
        |b: &MopBundle, report: &mut Report| {
            analyze_rules(&b.rules, &b.inventory, b.known_kpis.as_deref(), report);
        },
    );
    driver
}

/// Run the standard pipeline over a bundle.
pub fn check(bundle: &MopBundle) -> Report {
    standard_driver().run(bundle)
}

/// The check gate as a pre-deploy step: `Ok(report)` when the bundle may
/// deploy (warnings allowed), `Err(report)` when error diagnostics refuse
/// it. WAR deployment and the daemon's submit endpoint both consult this,
/// so a bundle rejected at the CLI is rejected identically over the API.
pub fn gate(bundle: &MopBundle) -> std::result::Result<Report, Report> {
    let report = check(bundle);
    if report.has_errors() {
        Err(report)
    } else {
        Ok(report)
    }
}

/// Parse a bundle specification from JSON text (see `examples/check/` for
/// the format). Malformed specs fail here, before any pass runs —
/// loading errors are not diagnostics.
pub fn load_bundle(text: &str) -> Result<MopBundle> {
    bundle_from_value(&parse(text)?)
}

fn bad(msg: impl Into<String>) -> CornetError {
    CornetError::InvalidInput(msg.into())
}

fn as_u32(v: &JsonValue, what: &str) -> Result<u32> {
    v.as_f64()
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as u32)
        .ok_or_else(|| bad(format!("{what} must be a non-negative integer")))
}

fn req_str<'a>(obj: &'a JsonValue, key: &str, what: &str) -> Result<&'a str> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad(format!("{what} needs a string '{key}' field")))
}

fn param_type(name: &str) -> Result<ParamType> {
    Ok(match name {
        "string" => ParamType::String,
        "int" => ParamType::Int,
        "float" => ParamType::Float,
        "bool" => ParamType::Bool,
        "list" => ParamType::List,
        "map" => ParamType::Map,
        other => return Err(bad(format!("unknown parameter type '{other}'"))),
    })
}

fn nf_type(name: &str) -> Result<NfType> {
    Ok(match name {
        "enodeb" | "enb" => NfType::ENodeB,
        "gnodeb" | "gnb" => NfType::GNodeB,
        "siad" => NfType::Siad,
        "transport_switch" => NfType::TransportSwitch,
        "core_router" => NfType::CoreRouter,
        "mme" => NfType::Mme,
        "sp_gateway" => NfType::SPGateway,
        "vce_router" => NfType::VceRouter,
        "v_gateway" => NfType::VGateway,
        "portal" => NfType::Portal,
        "vvig" => NfType::Vvig,
        "cpe" => NfType::Cpe,
        "vcom" => NfType::Vcom,
        "vrar" => NfType::Vrar,
        other => return Err(bad(format!("unknown nf_type '{other}'"))),
    })
}

/// A builtin workflow by its bundle-spec name.
fn builtin_workflow(name: &str, catalog: &Catalog) -> Result<Workflow> {
    use cornet_workflow::builtin as wf;
    Ok(match name {
        "software_upgrade" | "fig4" => wf::software_upgrade_workflow(catalog),
        "config_change" => wf::config_change_workflow(catalog),
        "vce_download" => wf::vce_download_workflow(catalog),
        "vce_activate" => wf::vce_activate_workflow(catalog),
        "sdwan_upgrade" => wf::sdwan_upgrade_workflow(catalog),
        "schedule_planning" => wf::schedule_planning_workflow(catalog),
        "impact_verification" => wf::impact_verification_workflow(catalog),
        other => return Err(bad(format!("unknown builtin workflow '{other}'"))),
    })
}

/// An inline workflow spec: declared inputs, a linear block sequence, and
/// an optional linear backout.
fn inline_workflow(spec: &JsonValue, catalog: &Catalog) -> Result<Workflow> {
    let name = req_str(spec, "name", "an inline workflow")?;
    let mut d = Designer::new(catalog, name);
    if let Some(inputs) = spec.get("inputs") {
        for (param, ty) in inputs
            .entries()
            .ok_or_else(|| bad("workflow 'inputs' must be an object"))?
        {
            let ty = ty
                .as_str()
                .ok_or_else(|| bad("parameter types are strings"))?;
            d.input(param, param_type(ty)?);
        }
    }
    let sequence = spec
        .get("sequence")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad(format!("workflow '{name}' needs a 'sequence' array")))?;
    let mut prev = d.start();
    for block in sequence {
        let block = block
            .as_str()
            .ok_or_else(|| bad("'sequence' entries are block names"))?;
        let t = d.task(block)?;
        d.connect(prev, t);
        prev = t;
    }
    let end = d.end();
    d.connect(prev, end);
    if let Some(backout) = spec.get("backout").and_then(JsonValue::as_array) {
        let blocks: Vec<&str> = backout.iter().filter_map(JsonValue::as_str).collect();
        if blocks.len() != backout.len() {
            return Err(bad("'backout' entries are block names"));
        }
        d.backout_sequence(&blocks)?;
    }
    Ok(d.build())
}

fn load_inventory(spec: &[JsonValue]) -> Result<Inventory> {
    let mut inv = Inventory::new();
    for rec in spec {
        let name = req_str(rec, "name", "an inventory record")?;
        let nf = match rec.get("nf_type").and_then(JsonValue::as_str) {
            Some(t) => nf_type(t)?,
            None => NfType::ENodeB,
        };
        let mut attrs = Attributes::new();
        if let Some(entries) = rec.get("attrs").and_then(JsonValue::entries) {
            for (k, v) in entries {
                match v {
                    JsonValue::String(s) => {
                        attrs.set(k.as_str(), s.as_str());
                    }
                    JsonValue::Number(n) => {
                        attrs.set(k.as_str(), *n);
                    }
                    other => {
                        return Err(bad(format!(
                            "attribute '{k}' must be a string or number, got {other:?}"
                        )))
                    }
                }
            }
        }
        inv.push(name, nf, attrs);
    }
    Ok(inv)
}

fn load_rule(spec: &JsonValue) -> Result<VerificationRule> {
    let name = req_str(spec, "name", "a verification rule")?;
    let mut kpis = Vec::new();
    for q in spec
        .get("kpis")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad(format!("rule '{name}' needs a 'kpis' array")))?
    {
        let kpi = req_str(q, "kpi", "a KPI query")?;
        let upward_good = !matches!(q.get("upward_good"), Some(JsonValue::Bool(false)));
        let expected = match q.get("expected").and_then(JsonValue::as_str) {
            None | Some("any") => Expectation::Any,
            Some("improve") => Expectation::Improve,
            Some("degrade") => Expectation::Degrade,
            Some("no_change") => Expectation::NoChange,
            Some(other) => return Err(bad(format!("unknown expectation '{other}'"))),
        };
        kpis.push(KpiQuery {
            kpi: kpi.into(),
            upward_good,
            expected,
            carrier: None,
        });
    }
    let mut rule = VerificationRule::standard(name, kpis);
    if let Some(attrs) = spec
        .get("location_attributes")
        .and_then(JsonValue::as_array)
    {
        rule.location_attributes = attrs
            .iter()
            .filter_map(JsonValue::as_str)
            .map(str::to_owned)
            .collect();
    }
    match spec.get("control") {
        None => {}
        Some(JsonValue::String(s)) => {
            rule.control = match s.as_str() {
                "first_tier" => ControlSelection::FirstTier,
                "second_tier" => ControlSelection::SecondTier,
                "second_minus_first" => ControlSelection::SecondMinusFirst,
                other => return Err(bad(format!("unknown control selection '{other}'"))),
            }
        }
        Some(obj) => {
            let attr = req_str(obj, "same_attribute", "a control object")?;
            rule.control = ControlSelection::SameAttribute(attr.into());
        }
    }
    if let Some(filter) = spec.get("control_attr_filter").and_then(JsonValue::as_str) {
        rule.control_attr_filter = Some(filter.into());
    }
    if let Some(ts) = spec.get("timescales").and_then(JsonValue::as_array) {
        rule.timescales = ts
            .iter()
            .map(|t| as_u32(t, "a timescale").map(|v| v as usize))
            .collect::<Result<_>>()?;
    }
    if let Some(alpha) = spec.get("alpha").and_then(JsonValue::as_f64) {
        rule.alpha = alpha;
    }
    if let Some(shift) = spec.get("min_relative_shift").and_then(JsonValue::as_f64) {
        rule.min_relative_shift = shift;
    }
    Ok(rule)
}

fn load_retry_policy(spec: &JsonValue) -> Result<RetryPolicy> {
    let mut p = RetryPolicy::default();
    if let Some(v) = spec.get("max_attempts") {
        p.max_attempts = as_u32(v, "'max_attempts'")?;
    }
    if let Some(v) = spec.get("base_backoff_ms") {
        p.base_backoff = Duration::from_millis(as_u32(v, "'base_backoff_ms'")? as u64);
    }
    if let Some(v) = spec.get("multiplier").and_then(JsonValue::as_f64) {
        p.multiplier = v;
    }
    if let Some(v) = spec.get("max_backoff_ms") {
        p.max_backoff = Duration::from_millis(as_u32(v, "'max_backoff_ms'")? as u64);
    }
    Ok(p)
}

fn load_resilience(spec: &JsonValue) -> Result<ResilienceSpec> {
    let mut res = ResilienceSpec::default();
    if let Some(entries) = spec.get("retry").and_then(JsonValue::entries) {
        for (block, policy) in entries {
            res.policies
                .insert(block.clone(), load_retry_policy(policy)?);
        }
    }
    if let Some(policy) = spec.get("default_retry") {
        res.default_policy = Some(load_retry_policy(policy)?);
    }
    if let Some(entries) = spec.get("deadlines_ms").and_then(JsonValue::entries) {
        for (block, ms) in entries {
            res.deadlines.insert(
                block.clone(),
                Duration::from_millis(as_u32(ms, "a deadline")? as u64),
            );
        }
    }
    if let Some(breaker) = spec.get("breaker") {
        let mut b = CircuitBreaker::default();
        if let Some(t) = breaker.get("failure_threshold").and_then(JsonValue::as_f64) {
            b.failure_threshold = t;
        }
        if let Some(m) = breaker.get("min_samples") {
            b.min_samples = as_u32(m, "'min_samples'")? as usize;
        }
        res.breaker = Some(b);
    }
    if let Some(n) = spec.get("planned_instances") {
        res.planned_instances = Some(as_u32(n, "'planned_instances'")? as usize);
    }
    Ok(res)
}

fn load_campaign(spec: &JsonValue) -> Result<Campaign> {
    let workflow = req_str(spec, "workflow", "a campaign")?;
    let mut assignments = BTreeMap::new();
    for pair in spec
        .get("assignments")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            bad(format!(
                "campaign '{workflow}' needs an 'assignments' array"
            ))
        })?
    {
        let pair = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| bad("campaign assignments are [node, slot] pairs"))?;
        assignments.insert(
            NodeId(as_u32(&pair[0], "a campaign node")?),
            Timeslot(as_u32(&pair[1], "a campaign slot")?),
        );
    }
    Ok(Campaign::new(
        workflow,
        Schedule {
            assignments,
            ..Default::default()
        },
    ))
}

fn bundle_from_value(root: &JsonValue) -> Result<MopBundle> {
    let mut bundle = MopBundle::default();
    if let Some(workflows) = root.get("workflows").and_then(JsonValue::as_array) {
        for spec in workflows {
            bundle.workflows.push(match spec {
                JsonValue::String(name) => builtin_workflow(name, &bundle.catalog)?,
                obj => inline_workflow(obj, &bundle.catalog)?,
            });
        }
    }
    if let Some(inv) = root.get("inventory").and_then(JsonValue::as_array) {
        bundle.inventory = load_inventory(inv)?;
    }
    bundle.scope = match root.get("scope").and_then(JsonValue::as_array) {
        Some(ids) => ids
            .iter()
            .map(|v| as_u32(v, "a scope node id").map(NodeId))
            .collect::<Result<_>>()?,
        None => bundle.inventory.ids().collect(),
    };
    if let Some(intent) = root.get("intent") {
        bundle.intent = Some(PlanIntent::from_value(intent)?);
    }
    if let Some(rules) = root.get("rules").and_then(JsonValue::as_array) {
        bundle.rules = rules.iter().map(load_rule).collect::<Result<_>>()?;
    }
    bundle.known_kpis = match root.get("known_kpis") {
        None => None,
        Some(JsonValue::String(s)) if s == "table5" => Some(
            cornet_netsim::KpiCatalog::table5()
                .kpis
                .into_iter()
                .map(|k| k.name)
                .collect(),
        ),
        Some(JsonValue::Array(names)) => Some(
            names
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| bad("'known_kpis' entries are KPI names"))
                })
                .collect::<Result<_>>()?,
        ),
        Some(other) => {
            return Err(bad(format!(
                "'known_kpis' must be \"table5\" or an array, got {other:?}"
            )))
        }
    };
    if let Some(res) = root.get("resilience") {
        bundle.resilience = Some(load_resilience(res)?);
    }
    if let Some(campaigns) = root.get("campaigns").and_then(JsonValue::as_array) {
        bundle.campaigns = campaigns.iter().map(load_campaign).collect::<Result<_>>()?;
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_analysis::Severity;

    #[test]
    fn standard_driver_registers_every_pass() {
        assert_eq!(
            standard_driver().pass_names(),
            vec![
                "workflow",
                "intent-lint",
                "campaign-conflicts",
                "interference",
                "resilience",
                "replay-safety",
                "verification-rules"
            ]
        );
    }

    #[test]
    fn empty_bundle_is_clean() {
        assert!(check(&MopBundle::default()).is_clean());
    }

    #[test]
    fn builtin_workflows_by_name_pass_the_gate() {
        let bundle = load_bundle(r#"{"workflows": ["fig4", "config_change"]}"#).unwrap();
        assert_eq!(bundle.workflows.len(), 2);
        let report = check(&bundle);
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn inline_workflow_dataflow_defect_surfaces_through_the_driver() {
        // software_upgrade consumes 'version', which nothing provides.
        let text = r#"{
            "workflows": [{
                "name": "underfed",
                "inputs": {"node": "string"},
                "sequence": ["health_check", "software_upgrade"]
            }]
        }"#;
        let report = check(&load_bundle(text).unwrap());
        assert!(report.has_errors(), "{}", report.render_text());
        let d = report
            .iter()
            .find(|d| d.code == Code("CN0201"))
            .expect("never-produced input");
        assert_eq!(d.pass, "workflow");
        assert!(d.message.contains("version"), "{}", d.message);
    }

    #[test]
    fn multi_pass_defects_combine_into_one_sorted_report() {
        let text = r#"{
            "resilience": {
                "breaker": {"failure_threshold": 1.5, "min_samples": 50},
                "planned_instances": 10
            },
            "rules": [{"name": "hollow", "kpis": []}],
            "campaigns": [
                {"workflow": "a", "assignments": [[1, 2]]},
                {"workflow": "b", "assignments": [[1, 2]]}
            ]
        }"#;
        let report = check(&load_bundle(text).unwrap());
        let codes: Vec<&str> = report.iter().map(|d| d.code.0).collect();
        for code in ["CN0303", "CN0305", "CN0416", "CN0501"] {
            assert!(codes.contains(&code), "missing {code} in {codes:?}");
        }
        // Passes stamped, errors first.
        assert!(report.iter().all(|d| !d.pass.is_empty()));
        assert!(report.diagnostics[0].severity == Severity::Error);
    }

    #[test]
    fn unknown_builtin_workflow_is_a_load_error_not_a_diagnostic() {
        assert!(load_bundle(r#"{"workflows": ["no_such_flow"]}"#).is_err());
    }

    #[test]
    fn known_kpis_table5_feeds_the_rule_check() {
        let text = r#"{
            "known_kpis": "table5",
            "rules": [{"name": "r", "kpis": [{"kpi": "scorecard_kpi_000"},
                                             {"kpi": "bogus_kpi"}]}]
        }"#;
        let report = check(&load_bundle(text).unwrap());
        assert_eq!(report.error_count(), 1, "{}", report.render_text());
        assert_eq!(report.diagnostics[0].code, Code("CN0502"));
        assert!(report.diagnostics[0].message.contains("bogus_kpi"));
    }
}
