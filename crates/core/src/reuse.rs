//! Code-reuse accounting: the arithmetic behind §4.1–4.3 and Table 3.
//!
//! A *module* is one implementation artifact a team must write and
//! maintain: a building-block implementation for one NF type, an
//! NF-agnostic building block, or a workflow. A custom (pre-CORNET)
//! solution reimplements every block and every workflow per NF type and
//! per composition; CORNET implements NF-agnostic blocks and workflows
//! once.

use cornet_catalog::Catalog;
use serde::Serialize;

/// One reuse experiment: which blocks, how many NF types, how many
/// workflow compositions.
#[derive(Clone, Debug, PartialEq)]
pub struct ReuseScenario {
    /// Scenario name (Table 3 row).
    pub name: String,
    /// Building blocks used by the scenario's workflows.
    pub blocks: Vec<String>,
    /// Network-function types supported.
    pub nf_count: usize,
    /// Distinct workflow compositions required (constraint combinations in
    /// §4.2, rule compositions in §4.3, one per service in §4.1).
    pub workflow_variants: usize,
    /// Whether a custom solution would also reimplement the *blocks* per
    /// composition (true for the impact verifier, §4.3, where aggregation
    /// attributes change the block implementations; false for the planner,
    /// §4.2, where compositions only multiply the workflows/solvers).
    pub blocks_per_composition: bool,
    /// Loss in efficiency vs the custom solution, as a fraction (§4 Table
    /// 3's third column; measured, not derived — stored for reporting).
    pub efficiency_loss: f64,
}

/// A computed Table 3 row.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ReuseRow {
    /// Scenario name.
    pub name: String,
    /// Modules a custom solution needs.
    pub custom_modules: usize,
    /// Modules CORNET needs.
    pub cornet_modules: usize,
    /// Code re-use percentage: `(custom − cornet) / custom`.
    pub reuse_pct: f64,
    /// Loss in efficiency (fraction).
    pub efficiency_loss: f64,
}

impl ReuseScenario {
    /// §4.1: designer & orchestrator over six vNFs with three blocks and
    /// one workflow per service in the custom world.
    pub fn designer_orchestrator() -> Self {
        ReuseScenario {
            name: "Designer and orchestrator".into(),
            blocks: vec![
                "health_check".into(),
                "software_upgrade".into(),
                "pre_post_comparison".into(),
            ],
            nf_count: 6,
            workflow_variants: 1,
            blocks_per_composition: false,
            efficiency_loss: 0.0,
        }
    }

    /// §4.2: schedule planner over six NF types (two RAN, two transport,
    /// two core) and 16 constraint compositions.
    pub fn schedule_planner() -> Self {
        ReuseScenario {
            name: "Schedule planner".into(),
            blocks: vec![
                "detect_conflicts".into(),
                "extract_topology".into(),
                "extract_inventory".into(),
                "model_translation".into(),
                "optimization_solver".into(),
            ],
            nf_count: 6,
            workflow_variants: 16,
            blocks_per_composition: false,
            efficiency_loss: 0.07,
        }
    }

    /// §4.3: impact verifier over three NF types and three compositions of
    /// attributes and verification rules.
    pub fn impact_verifier() -> Self {
        ReuseScenario {
            name: "Impact verifier".into(),
            blocks: vec![
                "change_scope".into(),
                "extract_kpi".into(),
                "extract_topology_verify".into(),
                "extract_inventory_verify".into(),
                "aggregate_kpi".into(),
                "impact_detection".into(),
            ],
            nf_count: 3,
            workflow_variants: 3,
            blocks_per_composition: true,
            efficiency_loss: 0.0,
        }
    }

    /// Modules a custom solution needs: every block per NF type, plus a
    /// workflow per NF type per composition.
    pub fn custom_modules(&self, catalog: &Catalog) -> usize {
        let blocks: Vec<&str> = self.blocks.iter().map(String::as_str).collect();
        let block_multiplier = if self.blocks_per_composition {
            self.workflow_variants
        } else {
            1
        };
        catalog.modules_custom(&blocks, self.nf_count) * block_multiplier
            + self.nf_count * self.workflow_variants
    }

    /// Modules CORNET needs: NF-agnostic blocks once, NF-specific blocks
    /// per NF type, and a single NF-agnostic workflow.
    pub fn cornet_modules(&self, catalog: &Catalog) -> usize {
        let blocks: Vec<&str> = self.blocks.iter().map(String::as_str).collect();
        catalog.modules_with_cornet(&blocks, self.nf_count) + 1
    }

    /// Compute the Table 3 row.
    pub fn row(&self, catalog: &Catalog) -> ReuseRow {
        let custom = self.custom_modules(catalog);
        let cornet = self.cornet_modules(catalog);
        ReuseRow {
            name: self.name.clone(),
            custom_modules: custom,
            cornet_modules: cornet,
            reuse_pct: 100.0 * (custom - cornet) as f64 / custom as f64,
            efficiency_loss: self.efficiency_loss,
        }
    }
}

/// All three Table 3 rows.
pub fn table3(catalog: &Catalog) -> Vec<ReuseRow> {
    [
        ReuseScenario::designer_orchestrator(),
        ReuseScenario::schedule_planner(),
        ReuseScenario::impact_verifier(),
    ]
    .iter()
    .map(|s| s.row(catalog))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_catalog::builtin_catalog;

    #[test]
    fn designer_orchestrator_matches_section_4_1() {
        // Paper: 24 custom (18 NF-specific BB + 6 NF-specific WF) vs 14
        // CORNET (1 NF-agnostic BB + 12 NF-specific BB + 1 NF-agnostic
        // WF) → 42% reuse.
        let cat = builtin_catalog();
        let s = ReuseScenario::designer_orchestrator();
        assert_eq!(s.custom_modules(&cat), 24);
        assert_eq!(s.cornet_modules(&cat), 14);
        let row = s.row(&cat);
        assert!((row.reuse_pct - 42.0).abs() < 1.0, "{}", row.reuse_pct);
    }

    #[test]
    fn schedule_planner_matches_section_4_2() {
        // Paper: 126 custom (30 NF-specific BB + 96 NF-specific WF) vs 11
        // CORNET (6 NF-specific BB + 4 NF-agnostic BB + 1 WF) → 91% reuse.
        let cat = builtin_catalog();
        let s = ReuseScenario::schedule_planner();
        assert_eq!(s.custom_modules(&cat), 126);
        assert_eq!(s.cornet_modules(&cat), 11);
        let row = s.row(&cat);
        assert!((row.reuse_pct - 91.0).abs() < 1.0, "{}", row.reuse_pct);
    }

    #[test]
    fn impact_verifier_matches_section_4_3() {
        // Paper: 63 custom (54 NF-specific BB + 9 NF-specific WF) vs 11
        // CORNET (6 NF-specific BB + 4 NF-agnostic BB + 1 WF) → 83% reuse.
        let cat = builtin_catalog();
        let s = ReuseScenario::impact_verifier();
        assert_eq!(s.custom_modules(&cat), 63);
        assert_eq!(s.cornet_modules(&cat), 11);
        let row = s.row(&cat);
        assert!((row.reuse_pct - 83.0).abs() < 1.0, "{}", row.reuse_pct);
    }

    #[test]
    fn table3_summarizes_all_rows() {
        let cat = builtin_catalog();
        let rows = table3(&cat);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].efficiency_loss, 0.07, "planner pays 7% makespan");
        assert_eq!(rows[0].efficiency_loss, 0.0);
        assert_eq!(rows[2].efficiency_loss, 0.0);
    }
}
