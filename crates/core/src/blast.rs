//! Campaign blast-radius inference and cross-campaign interference
//! detection (the CN06xx pass).
//!
//! ROADMAP item 4 asks for "only the blast radius changed" guarantees.
//! The first half of that is knowing the blast radius *before* the
//! change runs: this module summarizes each campaign of a MOP bundle as
//! the set of `(node, state dimension, time window)` triples its
//! workflow may touch — workflow effects from
//! [`cornet_workflow::effects`], node targets and waves from the
//! campaign schedule, wall-clock windows from the bundle's scheduling
//! intent when it carries one.
//!
//! On top of the summaries runs a happens-before interference check:
//! two campaigns conflict when they touch the same dimension of the
//! same node in overlapping windows. Node identity is the inventory
//! *name* (stable across bundles), so the same detector serves both the
//! in-bundle pass registered in [`crate::check::standard_driver`] and
//! the daemon's cross-tenant admission gate (a submitted campaign
//! against every live one).
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | CN0601 | error    | write-write race: both campaigns mutate the same dimension in overlapping windows |
//! | CN0602 | warning  | a backout flow races another campaign's mainline writes |
//! | CN0603 | error    | declared-scope escape: a campaign schedules a node outside the bundle's TAC |
//! | CN0604 | warning  | read-write hazard: one campaign's verification reads a dimension another mutates |
//! | CN0605 | info     | a conflicting campaign's effects were conservatively assumed |

use crate::check::MopBundle;
use cornet_analysis::{Code, Diagnostic, Report, SourceRef};
use cornet_catalog::StateDim;
use cornet_obs::json_escape;
use cornet_types::NodeId;
use cornet_workflow::workflow_effects;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One `(node, window)` element of a campaign's blast radius.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeTouch {
    /// Node id within the owning bundle.
    pub node: u32,
    /// Global node identity: the inventory name when the bundle has one,
    /// `node #<id>` otherwise. Cross-bundle comparison keys on this.
    pub name: String,
    /// Scheduled wave.
    pub slot: u32,
    /// Inclusive window the wave occupies: wall-clock minutes when the
    /// bundle's intent resolves a scheduling window, raw slot indices
    /// otherwise (see [`NodeTouch::wall`]).
    pub window: (u64, u64),
    /// Whether [`NodeTouch::window`] is wall-clock minutes (`true`) or
    /// abstract slot units (`false`). Windows in different bases are
    /// conservatively treated as overlapping.
    pub wall: bool,
}

/// The symbolic blast radius of one campaign: which dimensions of which
/// nodes it may touch, and when.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignBlast {
    /// Workflow the campaign dispatches.
    pub workflow: String,
    /// Index of the campaign in its bundle.
    pub index: usize,
    /// Dimensions the mainline may write.
    pub writes: BTreeSet<StateDim>,
    /// Dimensions every mainline path writes.
    pub must_writes: BTreeSet<StateDim>,
    /// Dimensions the mainline may read.
    pub reads: BTreeSet<StateDim>,
    /// Dimensions the backout flow may write (the backout executes in
    /// the same wave window as the mainline instance it unwinds).
    pub backout_writes: BTreeSet<StateDim>,
    /// Whether any effect set was conservatively assumed (workflow not
    /// defined in the bundle, or unannotated mutating blocks).
    pub assumed: bool,
    /// Every node the campaign schedules, with its wave window.
    pub touches: Vec<NodeTouch>,
}

impl CampaignBlast {
    /// Render the blast summary as a JSON object (hand-rolled like every
    /// other wire rendering in the workspace).
    pub fn render_json(&self) -> String {
        let dims = |set: &BTreeSet<StateDim>| {
            let inner = set
                .iter()
                .map(|d| format!("\"{d}\""))
                .collect::<Vec<_>>()
                .join(",");
            format!("[{inner}]")
        };
        let mut out = format!(
            "{{\"workflow\":\"{}\",\"writes\":{},\"must_writes\":{},\"reads\":{},\
             \"backout_writes\":{},\"assumed\":{},\"nodes\":[",
            json_escape(&self.workflow),
            dims(&self.writes),
            dims(&self.must_writes),
            dims(&self.reads),
            dims(&self.backout_writes),
            self.assumed,
        );
        for (i, t) in self.touches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":\"{}\",\"slot\":{},\"window\":[{},{}],\"basis\":\"{}\"}}",
                json_escape(&t.name),
                t.slot,
                t.window.0,
                t.window.1,
                if t.wall { "minutes" } else { "slots" },
            );
        }
        out.push_str("]}");
        out
    }
}

/// One detected interference between two campaigns on one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlastConflict {
    /// Diagnostic code: CN0601 (write-write), CN0602 (backout-vs-
    /// mainline), or CN0604 (read-write).
    pub code: &'static str,
    /// Global node identity the campaigns collide on.
    pub node: String,
    /// Node id as the *left* campaign's bundle numbers it.
    pub node_id: u32,
    /// The left claim's wave.
    pub slot: u32,
    /// Contested state dimensions.
    pub dims: BTreeSet<StateDim>,
    /// Workflow name of the left (first) campaign.
    pub left: String,
    /// Workflow name of the right (second) campaign.
    pub right: String,
    /// Whether either side's effects were conservatively assumed.
    pub assumed: bool,
}

fn dims_list(dims: &BTreeSet<StateDim>) -> String {
    dims.iter()
        .map(|d| d.label())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Compute the blast radius of every campaign in a bundle.
pub fn campaign_blasts(bundle: &MopBundle) -> Vec<CampaignBlast> {
    let window = bundle.intent.as_ref().and_then(|it| it.window().ok());
    bundle
        .campaigns
        .iter()
        .enumerate()
        .map(|(index, campaign)| {
            let mut blast = match bundle
                .workflows
                .iter()
                .find(|wf| wf.name == campaign.workflow)
            {
                Some(wf) => {
                    let eff = workflow_effects(wf, &bundle.catalog);
                    CampaignBlast {
                        workflow: campaign.workflow.clone(),
                        index,
                        assumed: eff.is_assumed(),
                        backout_writes: eff.backout_writes(),
                        writes: eff.may_writes,
                        must_writes: eff.must_writes,
                        reads: eff.may_reads,
                        touches: Vec::new(),
                    }
                }
                // A campaign naming a workflow the bundle does not carry:
                // nothing to analyze, so assume it can write anything.
                None => CampaignBlast {
                    workflow: campaign.workflow.clone(),
                    index,
                    writes: StateDim::ALL.into_iter().collect(),
                    must_writes: BTreeSet::new(),
                    reads: BTreeSet::new(),
                    backout_writes: BTreeSet::new(),
                    assumed: true,
                    touches: Vec::new(),
                },
            };
            for (&node, &slot) in &campaign.schedule.assignments {
                let name = bundle
                    .inventory
                    .get(node)
                    .map(|r| r.name.clone())
                    .unwrap_or_else(|| format!("node #{}", node.0));
                let (win, wall) = match &window {
                    Some(w) => {
                        let (s, e) = w.slot_period(slot);
                        ((s.minutes(), e.minutes()), true)
                    }
                    None => ((slot.0 as u64, slot.0 as u64), false),
                };
                blast.touches.push(NodeTouch {
                    node: node.0,
                    name,
                    slot: slot.0,
                    window: win,
                    wall,
                });
            }
            blast
        })
        .collect()
}

fn windows_overlap(a: &NodeTouch, b: &NodeTouch) -> bool {
    if a.wall != b.wall {
        // Incomparable bases (one bundle has a calendar, the other only
        // abstract slots): assume overlap rather than miss a race.
        return true;
    }
    a.window.0 <= b.window.1 && b.window.0 <= a.window.1
}

/// All interferences between one pair of claims on the same node.
fn claim_conflicts(
    a: &CampaignBlast,
    ta: &NodeTouch,
    b: &CampaignBlast,
    tb: &NodeTouch,
) -> Vec<BlastConflict> {
    if !windows_overlap(ta, tb) {
        return Vec::new();
    }
    let assumed = a.assumed || b.assumed;
    let conflict = |code, dims: BTreeSet<StateDim>| BlastConflict {
        code,
        node: ta.name.clone(),
        node_id: ta.node,
        slot: ta.slot,
        dims,
        left: a.workflow.clone(),
        right: b.workflow.clone(),
        assumed,
    };
    let mut out = Vec::new();
    let ww: BTreeSet<StateDim> = &a.writes & &b.writes;
    if !ww.is_empty() {
        out.push(conflict("CN0601", ww.clone()));
    }
    let backout: BTreeSet<StateDim> =
        &(&a.backout_writes & &b.writes) | &(&b.backout_writes & &a.writes);
    if !backout.is_empty() {
        out.push(conflict("CN0602", backout));
    }
    let rw: BTreeSet<StateDim> = &(&(&a.writes & &b.reads) | &(&b.writes & &a.reads)) - &ww;
    if !rw.is_empty() {
        out.push(conflict("CN0604", rw));
    }
    out
}

/// Node-keyed index of every blast's touches (the same shape as
/// `cornet_planner::index_by_node`, keyed on global node names): claims
/// are paired only within a node, so the detector scales with per-node
/// contention, not with the number of campaign pairs.
fn touch_index(blasts: &[CampaignBlast]) -> BTreeMap<&str, Vec<(usize, &NodeTouch)>> {
    let mut index: BTreeMap<&str, Vec<(usize, &NodeTouch)>> = BTreeMap::new();
    for (i, blast) in blasts.iter().enumerate() {
        for touch in &blast.touches {
            index
                .entry(touch.name.as_str())
                .or_default()
                .push((i, touch));
        }
    }
    index
}

/// Interferences among the campaigns of one bundle.
pub fn conflicts_within(blasts: &[CampaignBlast]) -> Vec<BlastConflict> {
    let mut out = Vec::new();
    for claims in touch_index(blasts).values() {
        for (x, &(i, ti)) in claims.iter().enumerate() {
            for &(j, tj) in &claims[x + 1..] {
                if i != j {
                    out.extend(claim_conflicts(&blasts[i], ti, &blasts[j], tj));
                }
            }
        }
    }
    out
}

/// Interferences between two independently computed blast sets (the
/// daemon's admission gate: `left` is the submitted campaign set,
/// `right` one live campaign's).
pub fn conflicts_between(left: &[CampaignBlast], right: &[CampaignBlast]) -> Vec<BlastConflict> {
    let right_index = touch_index(right);
    let mut out = Vec::new();
    for blast in left {
        for touch in &blast.touches {
            if let Some(claims) = right_index.get(touch.name.as_str()) {
                for &(j, tj) in claims {
                    out.extend(claim_conflicts(blast, touch, &right[j], tj));
                }
            }
        }
    }
    out
}

/// Render a conflict as a diagnostic.
pub fn conflict_diagnostic(c: &BlastConflict) -> Diagnostic {
    let source = SourceRef::Target {
        node: c.node_id,
        slot: Some(c.slot),
    };
    match c.code {
        "CN0601" => Diagnostic::error(
            Code("CN0601"),
            source,
            format!(
                "write-write race: campaigns '{}' and '{}' both write {{{}}} of {} in overlapping windows",
                c.left,
                c.right,
                dims_list(&c.dims),
                c.node
            ),
        )
        .with_hint("serialize the campaigns into disjoint waves or split their node scopes"),
        "CN0602" => Diagnostic::warning(
            Code("CN0602"),
            source,
            format!(
                "backout-vs-mainline overlap: a backout of '{}' or '{}' would race the other's \
                 mainline writes to {{{}}} of {}",
                c.left,
                c.right,
                dims_list(&c.dims),
                c.node
            ),
        )
        .with_hint("a failure-triggered backout executes inside the same wave window; stagger the campaigns"),
        _ => Diagnostic::warning(
            Code("CN0604"),
            source,
            format!(
                "read-write hazard: one of campaigns '{}' and '{}' reads {{{}}} of {} while the \
                 other mutates it, polluting pre/post verification",
                c.left,
                c.right,
                dims_list(&c.dims),
                c.node
            ),
        )
        .with_hint("verification readings taken during another campaign's change window are unreliable"),
    }
}

/// The CN06xx pass body: blast-radius inference, declared-scope escape
/// detection, and in-bundle interference over the node-keyed index.
pub fn analyze_interference(bundle: &MopBundle, report: &mut Report) {
    let blasts = campaign_blasts(bundle);

    // Declared-scope escapes: the bundle's scope (explicit, or the whole
    // inventory) is the change's TAC; scheduling a node outside it means
    // the blast radius exceeds what was declared.
    let scope: BTreeSet<NodeId> = bundle.scope.iter().copied().collect();
    for blast in &blasts {
        for touch in &blast.touches {
            if !scope.contains(&NodeId(touch.node)) {
                report.push(
                    Diagnostic::error(
                        Code("CN0603"),
                        SourceRef::Target {
                            node: touch.node,
                            slot: Some(touch.slot),
                        },
                        format!(
                            "declared-scope escape: campaign '{}' schedules {} which is outside \
                             the bundle's {}-node declared scope",
                            blast.workflow,
                            touch.name,
                            scope.len()
                        ),
                    )
                    .with_hint(
                        "add the node to the bundle scope/inventory or drop it from the campaign",
                    ),
                );
            }
        }
    }

    let conflicts = conflicts_within(&blasts);
    let mut suspicious: BTreeSet<&str> = BTreeSet::new();
    for c in &conflicts {
        if c.assumed {
            if blasts.iter().any(|b| b.workflow == c.left && b.assumed) {
                suspicious.insert(&c.left);
            }
            if blasts.iter().any(|b| b.workflow == c.right && b.assumed) {
                suspicious.insert(&c.right);
            }
        }
        report.push(conflict_diagnostic(c));
    }
    // Explain conservatism only when it contributed to a finding, so
    // clean bundles stay CN06xx-silent even with unknown workflows.
    for workflow in suspicious {
        report.push(Diagnostic::info(
            Code("CN0605"),
            SourceRef::Global,
            format!(
                "effects of campaign '{workflow}' were conservatively assumed (workflow not in \
                 the bundle or unannotated mutating blocks); its conflicts may be wider than real"
            ),
        ));
    }
}

/// Text rendering of a bundle's blast radii for `cornet blast`.
pub fn render_blast_text(blasts: &[CampaignBlast]) -> String {
    let mut out = String::new();
    for b in blasts {
        let _ = writeln!(
            out,
            "campaign '{}'{}: writes {{{}}}{} reads {{{}}} backout {{{}}} over {} node(s)",
            b.workflow,
            if b.assumed { " (assumed)" } else { "" },
            dims_list(&b.writes),
            if b.must_writes == b.writes {
                String::new()
            } else {
                format!(" (always {{{}}})", dims_list(&b.must_writes))
            },
            dims_list(&b.reads),
            dims_list(&b.backout_writes),
            b.touches.len(),
        );
        for t in &b.touches {
            let _ = writeln!(
                out,
                "  {} @ slot {} window [{}, {}] {}",
                t.name,
                t.slot,
                t.window.0,
                t.window.1,
                if t.wall { "min" } else { "slots" },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::load_bundle;

    fn two_campaign_bundle(slot_b: u32) -> String {
        format!(
            r#"{{
            "workflows": [
                {{"name": "upgrade",
                  "inputs": {{"node": "string", "software_version": "string"}},
                  "sequence": ["software_upgrade"]}},
                {{"name": "patch",
                  "inputs": {{"node": "string", "software_version": "string"}},
                  "sequence": ["software_upgrade"]}}
            ],
            "inventory": [{{"name": "enb-0", "nf_type": "enb"}},
                          {{"name": "enb-1", "nf_type": "enb"}}],
            "campaigns": [
                {{"workflow": "upgrade", "assignments": [[0, 1]]}},
                {{"workflow": "patch", "assignments": [[0, {slot_b}]]}}
            ]
        }}"#
        )
    }

    #[test]
    fn same_node_same_dim_overlapping_windows_is_a_write_write_race() {
        let bundle = load_bundle(&two_campaign_bundle(1)).unwrap();
        let mut report = Report::new();
        analyze_interference(&bundle, &mut report);
        let d = report
            .iter()
            .find(|d| d.code == Code("CN0601"))
            .expect("write-write race");
        assert!(d.message.contains("enb-0"), "{}", d.message);
        assert!(d.message.contains("version"), "{}", d.message);
        // Both workflows are fully annotated builtin blocks: no CN0605.
        assert!(report.iter().all(|d| d.code != Code("CN0605")));
    }

    #[test]
    fn serialized_waves_do_not_interfere() {
        let bundle = load_bundle(&two_campaign_bundle(2)).unwrap();
        let mut report = Report::new();
        analyze_interference(&bundle, &mut report);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn scope_escape_is_flagged() {
        let text = r#"{
            "workflows": [{"name": "up",
                           "inputs": {"node": "string", "software_version": "string"},
                           "sequence": ["software_upgrade"]}],
            "inventory": [{"name": "enb-0", "nf_type": "enb"}],
            "campaigns": [{"workflow": "up", "assignments": [[9, 1]]}]
        }"#;
        let bundle = load_bundle(text).unwrap();
        let mut report = Report::new();
        analyze_interference(&bundle, &mut report);
        let d = report
            .iter()
            .find(|d| d.code == Code("CN0603"))
            .expect("scope escape");
        assert!(d.message.contains("node #9"), "{}", d.message);
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn admission_order_does_not_change_the_verdict() {
        let a = load_bundle(&two_campaign_bundle(1)).unwrap();
        let mut swapped = load_bundle(&two_campaign_bundle(1)).unwrap();
        swapped.campaigns.reverse();
        let (mut ra, mut rb) = (Report::new(), Report::new());
        analyze_interference(&a, &mut ra);
        analyze_interference(&swapped, &mut rb);
        ra.sort();
        rb.sort();
        let codes = |r: &Report| {
            r.iter()
                .map(|d| (d.code, d.source.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(codes(&ra), codes(&rb));
        assert!(!ra.is_clean());
    }

    #[test]
    fn backout_races_other_mainline_and_reads_see_writes() {
        // 'upgrade' has a traffic_restore backout (routing write);
        // 'reroute' mainline writes routing in the same wave → CN0602.
        // 'reroute' also runs health_check while 'upgrade' mutates → the
        // write-read hazard is reported for health only if one writes it.
        let text = r#"{
            "workflows": [
                {"name": "upgrade",
                 "inputs": {"node": "string", "software_version": "string"},
                 "sequence": ["software_upgrade"],
                 "backout": ["traffic_restore"]},
                {"name": "reroute",
                 "inputs": {"node": "string"},
                 "sequence": ["traffic_redirect", "pre_post_comparison"]}
            ],
            "inventory": [{"name": "enb-0", "nf_type": "enb"}],
            "campaigns": [
                {"workflow": "upgrade", "assignments": [[0, 1]]},
                {"workflow": "reroute", "assignments": [[0, 1]]}
            ]
        }"#;
        let bundle = load_bundle(text).unwrap();
        let blasts = campaign_blasts(&bundle);
        let conflicts = conflicts_within(&blasts);
        assert!(
            conflicts
                .iter()
                .any(|c| c.code == "CN0602" && c.dims.contains(&StateDim::Routing)),
            "{conflicts:?}"
        );
        // No shared write dim between version and routing mainlines.
        assert!(
            conflicts.iter().all(|c| c.code != "CN0601"),
            "{conflicts:?}"
        );
    }

    #[test]
    fn cross_set_detection_matches_in_bundle_detection() {
        let bundle = load_bundle(&two_campaign_bundle(1)).unwrap();
        let blasts = campaign_blasts(&bundle);
        let within = conflicts_within(&blasts);
        let between = conflicts_between(&blasts[..1], &blasts[1..]);
        assert_eq!(within.len(), between.len());
        assert_eq!(within[0].code, between[0].code);
        assert_eq!(within[0].dims, between[0].dims);
    }

    #[test]
    fn windows_come_from_the_intent_when_present() {
        let text = r#"{
            "workflows": [{"name": "up",
                           "inputs": {"node": "string", "software_version": "string"},
                           "sequence": ["software_upgrade"]}],
            "inventory": [{"name": "enb-0", "nf_type": "enb"}],
            "intent": {
                "scheduling_window": {"start": "2020-07-01 00:00:00",
                                      "end": "2020-07-04 23:59:00",
                                      "granularity": {"metric": "day", "value": 1}},
                "maintenance_window": {"start": "0:00", "end": "6:00"},
                "schedulable_attribute": "common_id",
                "conflict_attribute": "common_id",
                "constraints": []
            },
            "campaigns": [{"workflow": "up", "assignments": [[0, 2]]}]
        }"#;
        let bundle = load_bundle(text).unwrap();
        let blasts = campaign_blasts(&bundle);
        let touch = &blasts[0].touches[0];
        assert!(touch.wall);
        // Slot 2 is the second day of the window: a full-day window.
        assert_eq!(touch.window.1 - touch.window.0 + 1, 24 * 60);
    }
}
