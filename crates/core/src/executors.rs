//! Executor bindings from catalog blocks to the simulated VNF testbed.
//!
//! In production these are Ansible playbooks and vendor CLI scripts behind
//! each block's REST endpoint (§4.1); here each binding drives
//! `cornet_netsim::Testbed`, whose observable state (software version,
//! health, traffic position) is exactly what those scripts touch. The
//! §4.1 correctness check — "we verified that the software versions were
//! successfully updated" — runs against this state.

use cornet_netsim::Testbed;
use cornet_orchestrator::executor::{require_str, ExecutorRegistry, GlobalState};
use cornet_types::ParamValue;
use std::collections::BTreeMap;

/// Build an executor registry over a shared testbed. Covers the design &
/// orchestration blocks of Table 2; the analytics blocks (pre/post
/// comparison and friends) are NF-agnostic native capabilities.
pub fn testbed_registry(testbed: Testbed) -> ExecutorRegistry {
    let mut reg = ExecutorRegistry::new();

    let tb = testbed.clone();
    reg.register("health_check", move |state: &mut GlobalState| {
        let node = require_str(state, "node")?;
        let healthy = tb.health_check(&node)?;
        state.insert("healthy".into(), ParamValue::from(healthy));
        // The catalog spec promises a status_detail map; downstream
        // NF-agnostic blocks may consume it.
        let mut detail = BTreeMap::new();
        if let Some(vnf) = tb.state(&node) {
            detail.insert("sw_version".to_string(), ParamValue::from(vnf.sw_version));
            detail.insert(
                "traffic_redirected".to_string(),
                ParamValue::from(vnf.traffic_redirected),
            );
        }
        state.insert("status_detail".into(), ParamValue::Map(detail));
        Ok(())
    });

    let tb = testbed.clone();
    reg.register("software_upgrade", move |state: &mut GlobalState| {
        let node = require_str(state, "node")?;
        let version = require_str(state, "software_version")?;
        let previous = tb.software_upgrade(&node, &version)?;
        state.insert("previous_version".into(), ParamValue::from(previous));
        state.insert("upgraded".into(), ParamValue::from(true));
        Ok(())
    });

    let tb = testbed.clone();
    reg.register("roll_back", move |state: &mut GlobalState| {
        let node = require_str(state, "node")?;
        let previous = require_str(state, "previous_version")?;
        tb.roll_back(&node, &previous)?;
        state.insert("rolled_back".into(), ParamValue::from(true));
        Ok(())
    });

    let tb = testbed.clone();
    reg.register("traffic_redirect", move |state: &mut GlobalState| {
        let node = require_str(state, "node")?;
        tb.traffic_redirect(&node)?;
        state.insert("redirected".into(), ParamValue::from(true));
        Ok(())
    });

    let tb = testbed.clone();
    reg.register("traffic_restore", move |state: &mut GlobalState| {
        let node = require_str(state, "node")?;
        tb.traffic_restore(&node)?;
        state.insert("restored".into(), ParamValue::from(true));
        Ok(())
    });

    let tb = testbed.clone();
    reg.register("config_change", move |state: &mut GlobalState| {
        let node = require_str(state, "node")?;
        let changes: BTreeMap<String, String> = state
            .get("config")
            .and_then(|v| v.as_map())
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
                    .collect()
            })
            .unwrap_or_default();
        let previous = tb.config_change(&node, &changes)?;
        state.insert(
            "previous_config".into(),
            ParamValue::Map(
                previous
                    .into_iter()
                    .map(|(k, v)| (k, ParamValue::from(v)))
                    .collect(),
            ),
        );
        state.insert("applied".into(), ParamValue::from(true));
        Ok(())
    });

    let tb = testbed;
    reg.register("pre_post_comparison", move |state: &mut GlobalState| {
        // Cheap health-based pre/post gate; deep KPI verification runs in
        // the verifier out of band. A post-change unhealthy node fails.
        let node = require_str(state, "node")?;
        let healthy = tb.health_check(&node)?;
        let mut report = BTreeMap::new();
        report.insert("healthy_after".to_string(), ParamValue::from(healthy));
        if let Some(s) = tb.state(&node) {
            report.insert("sw_version".to_string(), ParamValue::from(s.sw_version));
            report.insert("reboots".to_string(), ParamValue::Int(s.reboots as i64));
        }
        state.insert("report".into(), ParamValue::Map(report));
        state.insert("passed".into(), ParamValue::from(healthy));
        Ok(())
    });

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_catalog::builtin_catalog;
    use cornet_netsim::TestbedConfig;
    use cornet_orchestrator::{Engine, InstanceStatus};
    use cornet_types::NfType;
    use cornet_workflow::builtin::software_upgrade_workflow;

    fn setup() -> (Testbed, ExecutorRegistry) {
        let tb = Testbed::new(TestbedConfig::default());
        tb.instantiate("vce-0001", NfType::VceRouter, "16.9");
        let reg = testbed_registry(tb.clone());
        (tb, reg)
    }

    fn inputs(node: &str, version: &str) -> GlobalState {
        let mut g = GlobalState::new();
        g.insert("node".into(), ParamValue::from(node));
        g.insert("software_version".into(), ParamValue::from(version));
        g
    }

    #[test]
    fn fig4_workflow_upgrades_real_testbed_state() {
        let (tb, reg) = setup();
        let cat = builtin_catalog();
        let wf = software_upgrade_workflow(&cat);
        let mut engine = Engine::new(wf, reg, inputs("vce-0001", "17.3"));
        assert_eq!(engine.run().unwrap(), &InstanceStatus::Completed);
        // The §4.1 verification: the version on the instance changed.
        assert_eq!(tb.state("vce-0001").unwrap().sw_version, "17.3");
    }

    #[test]
    fn unhealthy_instance_short_circuits() {
        let (tb, reg) = setup();
        tb.set_healthy("vce-0001", false);
        let cat = builtin_catalog();
        let wf = software_upgrade_workflow(&cat);
        let mut engine = Engine::new(wf, reg, inputs("vce-0001", "17.3"));
        assert_eq!(engine.run().unwrap(), &InstanceStatus::Completed);
        assert_eq!(
            tb.state("vce-0001").unwrap().sw_version,
            "16.9",
            "untouched"
        );
    }

    #[test]
    fn config_change_records_previous_values() {
        let (tb, reg) = setup();
        let mut state = inputs("vce-0001", "-");
        let mut cfg = BTreeMap::new();
        cfg.insert("mtu".to_string(), ParamValue::from("9000"));
        state.insert("config".into(), ParamValue::Map(cfg));
        reg.execute("config_change", &mut state).unwrap();
        assert_eq!(tb.state("vce-0001").unwrap().config["mtu"], "9000");
        assert_eq!(state["applied"], ParamValue::from(true));
    }

    #[test]
    fn traffic_cycle_via_registry() {
        let (tb, reg) = setup();
        let mut state = inputs("vce-0001", "-");
        reg.execute("traffic_redirect", &mut state).unwrap();
        assert!(tb.state("vce-0001").unwrap().traffic_redirected);
        reg.execute("traffic_restore", &mut state).unwrap();
        assert!(!tb.state("vce-0001").unwrap().traffic_redirected);
    }
}
