//! Native (NF-agnostic) executors for the schedule-planning and
//! impact-verification workflows.
//!
//! Table 2 flags blocks like `model_translation`, `optimization_solver`,
//! `aggregate_kpi` and `impact_detection` as NF-agnostic "data analytic
//! capabilities". Here they are bound to the real planner and verifier so
//! that *planning and verification themselves run as CORNET workflows* —
//! the composition the §4.2/§4.3 re-use numbers count.
//!
//! Blocks exchange small values through the instance's global state
//! (node-id lists, the intent JSON, the emitted model text, the
//! discovered schedule); heavyweight artifacts (the typed `Translation`,
//! the `ChangeScope`) ride in a shared context the closures capture.

use cornet_orchestrator::executor::{ExecutorRegistry, GlobalState};
use cornet_planner::{intent::parse_display_id, translate, PlanIntent, TranslateOptions};
use cornet_solver::{solve, SolverConfig};
use cornet_types::{CornetError, Inventory, NodeId, ParamValue, Result, Topology};
use cornet_verifier::{
    derive_control_group, verify_rule, ChangeScope, DataAdapter, GoNoGo, VerificationRule,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parse external JSON text into a workflow-state [`ParamValue`] — the
/// entry point for feeding intents (or any operator-supplied document)
/// into a workflow's global state. Tries `serde_json` first and falls
/// back to the planner's self-contained reader, mirroring
/// `PlanIntent::from_json`. JSON `null` has no `ParamValue` analogue and
/// is rejected.
pub fn param_value_from_json(json: &str) -> Result<ParamValue> {
    if let Ok(v) = serde_json::from_str::<ParamValue>(json) {
        return Ok(v);
    }
    fn convert(v: &cornet_planner::json::JsonValue) -> Result<ParamValue> {
        use cornet_planner::json::JsonValue;
        Ok(match v {
            JsonValue::Null => {
                return Err(CornetError::Parse(
                    "JSON null has no workflow-state representation".into(),
                ))
            }
            JsonValue::Bool(b) => ParamValue::Bool(*b),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) {
                    ParamValue::Int(*n as i64)
                } else {
                    ParamValue::Float(*n)
                }
            }
            JsonValue::String(s) => ParamValue::Str(s.clone()),
            JsonValue::Array(items) => {
                ParamValue::List(items.iter().map(convert).collect::<Result<_>>()?)
            }
            JsonValue::Object(entries) => ParamValue::Map(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), convert(v)?)))
                    .collect::<Result<_>>()?,
            ),
        })
    }
    convert(&cornet_planner::json::parse(json)?)
}

/// Render a workflow-state [`ParamValue`] as JSON text — the inverse of
/// [`param_value_from_json`], used to hand state values to JSON-speaking
/// consumers like `PlanIntent::from_json` without relying on `serde_json`
/// being able to serialize externally-constructed values.
pub fn param_value_to_json(value: &ParamValue) -> String {
    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    fn render(v: &ParamValue, out: &mut String) {
        match v {
            ParamValue::Str(s) => escape(s, out),
            ParamValue::Int(i) => out.push_str(&i.to_string()),
            ParamValue::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
            ParamValue::Float(_) => out.push_str("null"),
            ParamValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            ParamValue::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            ParamValue::Map(entries) => {
                out.push('{');
                for (i, (k, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(k, out);
                    out.push(':');
                    render(item, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    render(value, &mut out);
    out
}

/// Read a node-id list (`["id000001", …]`) from the state.
fn read_nodes(state: &GlobalState, key: &str) -> Result<Vec<NodeId>> {
    let list = state
        .get(key)
        .and_then(|v| v.as_list())
        .ok_or_else(|| CornetError::ExecutionFailed(format!("missing list input '{key}'")))?;
    list.iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| CornetError::ExecutionFailed(format!("non-string id in '{key}'")))
                .and_then(parse_display_id)
        })
        .collect()
}

/// Write a node-id list into the state.
fn write_nodes(state: &mut GlobalState, key: &str, nodes: &[NodeId]) {
    state.insert(
        key.to_owned(),
        ParamValue::List(
            nodes
                .iter()
                .map(|n| ParamValue::from(n.to_string()))
                .collect(),
        ),
    );
}

/// Build the executor registry for the schedule-planning workflow
/// (`detect_conflicts → extract_topology → extract_inventory →
/// model_translation → optimization_solver`).
pub fn planning_registry(
    inventory: Inventory,
    topology: Topology,
    solver_config: SolverConfig,
) -> ExecutorRegistry {
    let inventory = Arc::new(inventory);
    let topology = Arc::new(topology);
    // Translation handed from model_translation to optimization_solver.
    let pending = Arc::new(Mutex::new(None::<cornet_planner::Translation>));
    let mut reg = ExecutorRegistry::new();

    let read_intent = |state: &GlobalState| -> Result<PlanIntent> {
        let intent_value = state.get("intent").ok_or_else(|| {
            CornetError::ExecutionFailed("missing 'intent' in workflow state".into())
        })?;
        PlanIntent::from_json(&param_value_to_json(intent_value))
    };

    reg.register("detect_conflicts", move |state: &mut GlobalState| {
        let intent = read_intent(state)?;
        let nodes = read_nodes(state, "nodes")?;
        let conflicts = intent.conflicts()?;
        let mut per_node = BTreeMap::new();
        let window = intent.window()?;
        for &n in &nodes {
            let count: usize = window
                .usable_slots()
                .iter()
                .map(|&s| {
                    let (start, end) = window.slot_period(s);
                    conflicts.conflicts_in(n, start, end)
                })
                .sum();
            if count > 0 {
                per_node.insert(n.to_string(), ParamValue::Int(count as i64));
            }
        }
        state.insert("conflict_table".into(), ParamValue::Map(per_node));
        Ok(())
    });

    let topo = topology.clone();
    reg.register("extract_topology", move |state: &mut GlobalState| {
        let nodes = read_nodes(state, "nodes")?;
        let in_scope: std::collections::BTreeSet<NodeId> = nodes.iter().copied().collect();
        let dependent_pairs = nodes
            .iter()
            .map(|&n| {
                topo.neighbors(n)
                    .iter()
                    .filter(|nb| in_scope.contains(nb))
                    .count()
            })
            .sum::<usize>()
            / 2;
        let mut m = BTreeMap::new();
        m.insert(
            "dependent_pairs".to_string(),
            ParamValue::Int(dependent_pairs as i64),
        );
        m.insert(
            "chains".to_string(),
            ParamValue::Int(topo.chains().len() as i64),
        );
        state.insert("topology".into(), ParamValue::Map(m));
        Ok(())
    });

    let inv = inventory.clone();
    reg.register("extract_inventory", move |state: &mut GlobalState| {
        let nodes = read_nodes(state, "nodes")?;
        let mut m = BTreeMap::new();
        for attr in ["market", "tac", "usid", "ems", "timezone", "hw_version"] {
            let groups = inv.group_by(&nodes, attr);
            if groups.group_count() > 0 {
                m.insert(
                    attr.to_string(),
                    ParamValue::Int(groups.group_count() as i64),
                );
            }
        }
        state.insert("inventory".into(), ParamValue::Map(m));
        Ok(())
    });

    let inv = inventory.clone();
    let topo = topology.clone();
    let pend = pending.clone();
    reg.register("model_translation", move |state: &mut GlobalState| {
        let intent = read_intent(state)?;
        let nodes = read_nodes(state, "nodes")?;
        let translation = translate(&intent, &inv, &topo, &nodes, &TranslateOptions::default())?;
        state.insert(
            "model".into(),
            ParamValue::from(translation.model.to_minizinc()),
        );
        *pend.lock() = Some(translation);
        Ok(())
    });

    let pend = pending;
    reg.register("optimization_solver", move |state: &mut GlobalState| {
        let intent = read_intent(state)?;
        let translation = pend.lock().take().ok_or_else(|| {
            CornetError::ExecutionFailed("optimization_solver ran before model_translation".into())
        })?;
        let result = solve(&translation.model, &solver_config);
        let Some(best) = result.best else {
            return Err(CornetError::Infeasible(
                "no schedule under the intent".into(),
            ));
        };
        let schedule = translation.decode(&best.assignment, &intent.conflicts()?);
        let mut m = BTreeMap::new();
        for (node, slot) in &schedule.assignments {
            m.insert(node.to_string(), ParamValue::Int(slot.0 as i64));
        }
        state.insert("schedule".into(), ParamValue::Map(m));
        state.insert(
            "makespan".into(),
            ParamValue::Int(schedule.makespan().map(|s| s.0 as i64).unwrap_or(0)),
        );
        state.insert(
            "leftovers".into(),
            ParamValue::Int(schedule.leftovers.len() as i64),
        );
        Ok(())
    });

    reg
}

/// Build the executor registry for the impact-verification workflow
/// (`change_scope → extract_kpi → extract_topology_verify →
/// extract_inventory_verify → aggregate_kpi → impact_detection`).
///
/// `ticket_scope` maps ticket ids to the (node, change-minute) pairs the
/// ticketing system records — the data `change_scope` resolves.
pub fn verification_registry(
    adapter: Arc<dyn DataAdapter + Send + Sync>,
    inventory: Inventory,
    topology: Topology,
    rule: VerificationRule,
    ticket_scope: BTreeMap<String, Vec<(NodeId, u64)>>,
) -> ExecutorRegistry {
    let inventory = Arc::new(inventory);
    let topology = Arc::new(topology);
    let rule = Arc::new(rule);
    let scope_ctx = Arc::new(Mutex::new(None::<ChangeScope>));
    let control_ctx = Arc::new(Mutex::new(Vec::<NodeId>::new()));
    let mut reg = ExecutorRegistry::new();

    let tickets_map = Arc::new(ticket_scope);
    let scope_out = scope_ctx.clone();
    reg.register("change_scope", move |state: &mut GlobalState| {
        let tickets = state
            .get("tickets")
            .and_then(|v| v.as_list())
            .ok_or_else(|| CornetError::ExecutionFailed("missing 'tickets' list".into()))?;
        let mut scope = ChangeScope::default();
        for t in tickets {
            let id = t
                .as_str()
                .ok_or_else(|| CornetError::ExecutionFailed("non-string ticket".into()))?;
            let entries = tickets_map.get(id).ok_or_else(|| {
                CornetError::UnknownReference(format!("ticket '{id}' not in the change log"))
            })?;
            for (node, minute) in entries {
                scope.changes.insert(*node, *minute);
            }
        }
        if scope.changes.is_empty() {
            return Err(CornetError::ExecutionFailed(
                "tickets resolve to no nodes".into(),
            ));
        }
        let nodes = scope.nodes();
        write_nodes(state, "nodes", &nodes);
        let times: BTreeMap<String, ParamValue> = scope
            .changes
            .iter()
            .map(|(n, m)| (n.to_string(), ParamValue::Int(*m as i64)))
            .collect();
        state.insert("change_times".into(), ParamValue::Map(times));
        *scope_out.lock() = Some(scope);
        Ok(())
    });

    let ad = adapter.clone();
    reg.register("extract_kpi", move |state: &mut GlobalState| {
        let nodes = read_nodes(state, "nodes")?;
        let kpis = state
            .get("kpi_names")
            .and_then(|v| v.as_list())
            .ok_or_else(|| CornetError::ExecutionFailed("missing 'kpi_names' list".into()))?;
        let mut m = BTreeMap::new();
        for k in kpis {
            let kpi = k
                .as_str()
                .ok_or_else(|| CornetError::ExecutionFailed("non-string KPI name".into()))?;
            let present = nodes
                .iter()
                .filter(|&&n| ad.series(n, kpi, None).is_some())
                .count();
            if present == 0 {
                return Err(CornetError::DataIntegrity(format!(
                    "no data feed carries KPI '{kpi}' for the scope"
                )));
            }
            m.insert(kpi.to_owned(), ParamValue::Int(present as i64));
        }
        state.insert("kpi_data".into(), ParamValue::Map(m));
        Ok(())
    });

    let topo = topology.clone();
    let inv = inventory.clone();
    let r = rule.clone();
    let control_out = control_ctx.clone();
    reg.register("extract_topology_verify", move |state: &mut GlobalState| {
        let nodes = read_nodes(state, "nodes")?;
        let control = derive_control_group(
            &r.control,
            &nodes,
            &topo,
            &inv,
            r.control_attr_filter.as_deref(),
        );
        write_nodes(state, "control_candidates", &control);
        *control_out.lock() = control;
        Ok(())
    });

    let inv = inventory.clone();
    let r = rule.clone();
    reg.register(
        "extract_inventory_verify",
        move |state: &mut GlobalState| {
            let nodes = read_nodes(state, "nodes")?;
            let mut m = BTreeMap::new();
            for attr in &r.location_attributes {
                let groups = inv.group_by(&nodes, attr);
                m.insert(attr.clone(), ParamValue::Int(groups.group_count() as i64));
            }
            state.insert("attributes".into(), ParamValue::Map(m));
            Ok(())
        },
    );

    let r = rule.clone();
    reg.register("aggregate_kpi", move |state: &mut GlobalState| {
        // Summarize the aggregation plan: per KPI, the number of
        // (overall + per-location-value) streams the detector will test.
        let attributes = state
            .get("attributes")
            .and_then(|v| v.as_map())
            .cloned()
            .unwrap_or_default();
        let location_groups: i64 = attributes.values().filter_map(|v| v.as_i64()).sum();
        let mut m = BTreeMap::new();
        for q in &r.kpis {
            m.insert(q.kpi.clone(), ParamValue::Int(1 + location_groups));
        }
        state.insert("aggregated".into(), ParamValue::Map(m));
        Ok(())
    });

    let ad = adapter;
    let inv = inventory;
    let topo = topology;
    let r = rule;
    let scope_in = scope_ctx;
    reg.register("impact_detection", move |state: &mut GlobalState| {
        let scope = scope_in
            .lock()
            .clone()
            .ok_or_else(|| CornetError::ExecutionFailed("change_scope did not run".into()))?;
        let report = verify_rule(ad.as_ref(), &r, &scope, &inv, &topo)?;
        let impacts: Vec<ParamValue> = report
            .kpis
            .iter()
            .map(|k| {
                ParamValue::from(format!(
                    "{}: {:?} (shift {:+.1}%, p={:.2e})",
                    k.query.kpi,
                    k.overall.verdict,
                    k.overall.relative_shift * 100.0,
                    k.overall.p_value
                ))
            })
            .collect();
        state.insert("impacts".into(), ParamValue::List(impacts));
        state.insert(
            "verdict".into(),
            ParamValue::from(match report.decision {
                GoNoGo::Go => "go",
                GoNoGo::NoGo => "no-go",
            }),
        );
        Ok(())
    });

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_catalog::builtin_catalog;
    use cornet_netsim::{ImpactKind, InjectedImpact, KpiGenerator, Network, NetworkConfig};
    use cornet_orchestrator::{Engine, InstanceStatus};
    use cornet_types::NfType;
    use cornet_verifier::{ClosureAdapter, ControlSelection, Expectation, KpiQuery};
    use cornet_workflow::builtin::{impact_verification_workflow, schedule_planning_workflow};

    const INTENT: &str = r#"{
        "scheduling_window": {"start": "2020-07-01 00:00:00",
                               "end": "2020-07-10 23:59:00",
                               "granularity": {"metric": "day", "value": 1}},
        "maintenance_window": {"start": "0:00", "end": "6:00"},
        "schedulable_attribute": "common_id",
        "conflict_attribute": "common_id",
        "constraints": [
            {"name": "concurrency", "base_attribute": "common_id",
             "operator": "<=", "granularity": {"metric": "day", "value": 1},
             "default_capacity": 3}
        ]
    }"#;

    fn ran() -> Network {
        Network::generate_ran(&NetworkConfig {
            markets_per_tz: 1,
            tacs_per_market: 1,
            usids_per_tac: 3,
            gnb_probability: 0.0,
            ..Default::default()
        })
    }

    fn planning_inputs(nodes: &[NodeId]) -> GlobalState {
        let mut state = GlobalState::new();
        write_nodes(&mut state, "nodes", nodes);
        let intent_pv = param_value_from_json(INTENT).unwrap();
        state.insert("intent".into(), intent_pv);
        state
    }

    #[test]
    fn planning_workflow_discovers_schedule() {
        let net = ran();
        let enbs = net.nodes_of_type(NfType::ENodeB);
        let cat = builtin_catalog();
        let wf = schedule_planning_workflow(&cat);
        let budget = SolverConfig {
            max_nodes: 50_000,
            time_limit: std::time::Duration::from_secs(2),
            ..Default::default()
        };
        let reg = planning_registry(net.inventory.clone(), net.topology.clone(), budget);
        let mut engine = Engine::new(wf, reg, planning_inputs(&enbs));
        assert_eq!(engine.run().unwrap(), &InstanceStatus::Completed);
        // All five blocks executed in order.
        let blocks: Vec<&str> = engine.log().iter().map(|b| b.block.as_str()).collect();
        assert_eq!(
            blocks,
            vec![
                "detect_conflicts",
                "extract_topology",
                "extract_inventory",
                "model_translation",
                "optimization_solver"
            ]
        );
        // The schedule landed in the state: 12 eNodeBs at 3/slot → 4 slots.
        let schedule = engine
            .state_var("schedule")
            .and_then(|v| v.as_map())
            .unwrap();
        assert_eq!(schedule.len(), enbs.len());
        assert_eq!(
            engine.state_var("makespan").and_then(|v| v.as_i64()),
            Some(4)
        );
        assert_eq!(
            engine.state_var("leftovers").and_then(|v| v.as_i64()),
            Some(0)
        );
        let model = engine.state_var("model").and_then(|v| v.as_str()).unwrap();
        assert!(model.contains("COMMON_ID_SCHEDULED"));
    }

    #[test]
    fn solver_block_requires_translation_first() {
        let net = ran();
        let reg = planning_registry(
            net.inventory.clone(),
            net.topology.clone(),
            SolverConfig::default(),
        );
        let mut state = planning_inputs(&net.nodes_of_type(NfType::ENodeB));
        let err = reg.execute("optimization_solver", &mut state);
        assert!(
            err.is_err(),
            "running the solver without a model must fail loudly"
        );
    }

    #[test]
    fn verification_workflow_reaches_verdict() {
        let net = ran();
        let enbs = net.nodes_of_type(NfType::ENodeB);
        let study = &enbs[..4];
        // Ground truth: clear improvement on the study nodes.
        let impacts: Vec<InjectedImpact> = study
            .iter()
            .map(|&n| InjectedImpact {
                node: n,
                kpi: "thr".into(),
                carrier: None,
                at_minute: 12_000,
                kind: ImpactKind::LevelShift,
                magnitude: 0.3,
            })
            .collect();
        let gen = KpiGenerator {
            seed: 33,
            noise: 0.02,
            ..Default::default()
        };
        let adapter = Arc::new(ClosureAdapter(
            move |node: NodeId, kpi: &str, carrier: Option<usize>| {
                Some(gen.series(node, kpi, carrier, 500, &impacts))
            },
        ));
        let rule = VerificationRule {
            name: "wf-rule".into(),
            kpis: vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
            location_attributes: vec!["market".into()],
            control: ControlSelection::Explicit(enbs[4..].to_vec()),
            control_attr_filter: None,
            timescales: vec![1, 24],
            alpha: 0.01,
            min_relative_shift: 0.01,
        };
        let mut tickets = BTreeMap::new();
        tickets.insert(
            "CHG-001".to_string(),
            study.iter().map(|&n| (n, 12_000u64)).collect::<Vec<_>>(),
        );
        let cat = builtin_catalog();
        let wf = impact_verification_workflow(&cat);
        let reg = verification_registry(
            adapter,
            net.inventory.clone(),
            net.topology.clone(),
            rule,
            tickets,
        );
        let mut state = GlobalState::new();
        state.insert(
            "tickets".into(),
            ParamValue::List(vec![ParamValue::from("CHG-001")]),
        );
        state.insert(
            "kpi_names".into(),
            ParamValue::List(vec![ParamValue::from("thr")]),
        );
        let mut engine = Engine::new(wf, reg, state);
        assert_eq!(engine.run().unwrap(), &InstanceStatus::Completed);
        assert_eq!(
            engine.state_var("verdict").and_then(|v| v.as_str()),
            Some("go")
        );
        let impacts_out = engine
            .state_var("impacts")
            .and_then(|v| v.as_list())
            .unwrap();
        assert_eq!(impacts_out.len(), 1);
        assert!(impacts_out[0].as_str().unwrap().contains("Improvement"));
    }

    #[test]
    fn unknown_ticket_fails_at_change_scope() {
        let net = ran();
        let reg = verification_registry(
            Arc::new(ClosureAdapter(|_: NodeId, _: &str, _: Option<usize>| None)),
            net.inventory.clone(),
            net.topology.clone(),
            VerificationRule::standard("r", vec![]),
            BTreeMap::new(),
        );
        let cat = builtin_catalog();
        let wf = impact_verification_workflow(&cat);
        let mut state = GlobalState::new();
        state.insert(
            "tickets".into(),
            ParamValue::List(vec![ParamValue::from("GHOST")]),
        );
        state.insert("kpi_names".into(), ParamValue::List(vec![]));
        let mut engine = Engine::new(wf, reg, state);
        let status = engine.run().unwrap().clone();
        assert_eq!(status, InstanceStatus::Failed("change_scope".into()));
    }
}
