//! # cornet-core
//!
//! The CORNET facade: one crate that composes the catalog, workflow
//! designer, orchestrator, schedule planner and impact verifier into the
//! unified experience of Fig. 3, plus the code-reuse accounting behind the
//! §4 evaluation (Table 3).
//!
//! * [`reuse`] — module-count arithmetic for the three reuse experiments;
//! * [`executors`] — bindings from catalog block names to the simulated
//!   VNF testbed (the workspace's Ansible playbooks);
//! * [`cornet`] — the `Cornet` facade used by the examples.
//!
//! Downstream users normally depend on this crate alone; it re-exports
//! the pieces examples need.

#![forbid(unsafe_code)]
pub mod blast;
pub mod check;
pub mod cornet;
pub mod executors;
pub mod native;
pub mod reuse;
pub mod rollout;

pub use blast::{
    analyze_interference, campaign_blasts, conflicts_between, conflicts_within, render_blast_text,
    BlastConflict, CampaignBlast, NodeTouch,
};
pub use check::{check, gate, load_bundle, standard_driver, MopBundle};
pub use cornet::Cornet;
pub use executors::testbed_registry;
pub use native::{planning_registry, verification_registry};
pub use reuse::{table3, ReuseRow, ReuseScenario};
pub use rollout::{staged_rollout, RolloutOutcome, RolloutPlan, RolloutReport};

// Re-exports for one-stop consumption by examples and integration tests.
pub use cornet_catalog as catalog;
pub use cornet_model as model;
pub use cornet_netsim as netsim;
pub use cornet_orchestrator as orchestrator;
pub use cornet_planner as planner;
pub use cornet_solver as solver;
pub use cornet_stats as stats;
pub use cornet_types as types;
pub use cornet_verifier as verifier;
pub use cornet_workflow as workflow;
