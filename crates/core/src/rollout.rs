//! The staged roll-out controller — §2.1's change-management flow as one
//! reusable composition.
//!
//! "The roll out is done in stages. … the change is trialed on a small
//! part of the production network (the First Field Application). A
//! pre/post comparison … is conducted to make a go/no-go decision for a
//! network-wide deployment. … If there is any unexpected performance
//! degradation, a decision is made to halt the roll-out."
//!
//! [`staged_rollout`] runs exactly that: execute the FFA slice, verify it,
//! stop unless certified, then run the network-wide schedule with the
//! verifier consulted as a go/no-go gate between slots.

use crate::cornet::Cornet;
use cornet_orchestrator::resilience::{BreakerTrip, CircuitBreaker};
use cornet_orchestrator::{DispatchReport, FalloutAnalysis, GlobalState};
use cornet_types::{NodeId, Result, Schedule, Timeslot};
use cornet_verifier::{verify_rule, ChangeScope, DataAdapter, GoNoGo, VerificationRule};
use cornet_workflow::WarArtifact;
use serde::Serialize;

/// How a staged roll-out ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RolloutOutcome {
    /// FFA verification failed; the network-wide phase never started.
    NotCertified,
    /// The network-wide phase halted mid-way on a failed gate check.
    Halted {
        /// Slot after which the halt happened.
        after_slot: u32,
    },
    /// Every slot completed with the gate green throughout.
    Completed,
}

/// Full record of one staged roll-out.
#[derive(Debug)]
pub struct RolloutReport {
    /// FFA execution report.
    pub ffa: DispatchReport,
    /// FFA verification decision.
    pub ffa_decision: GoNoGo,
    /// Network-wide execution report (empty when not certified).
    pub network: DispatchReport,
    /// Final outcome.
    pub outcome: RolloutOutcome,
    /// Set when the halt came from the circuit breaker rather than the
    /// KPI verifier — carries the offending block and its failure rate.
    pub breaker_trip: Option<BreakerTrip>,
}

/// Configuration of the staged roll-out.
pub struct RolloutPlan<'a> {
    /// Deployed workflow to execute per node.
    pub war: &'a WarArtifact,
    /// FFA slice: nodes and their slots (typically a handful of nodes in
    /// slot 1).
    pub ffa: Schedule,
    /// Network-wide schedule (the FFA nodes excluded).
    pub network: Schedule,
    /// Verification rule for both the FFA gate and the in-flight gates.
    pub rule: &'a VerificationRule,
    /// Instances run concurrently per wave.
    pub concurrency: usize,
    /// Consult the verifier every `gate_every` slots during the
    /// network-wide phase (1 = every slot).
    pub gate_every: u32,
    /// Optional auto-halt circuit breaker: consulted after *every* slot
    /// (execution fall-out is visible immediately, unlike KPI shifts) and
    /// trips on excessive per-block failure rates.
    pub breaker: Option<CircuitBreaker>,
}

/// Derive a change scope from executed instances: every *completed* node,
/// stamped with its slot's execution time.
fn scope_of(report: &DispatchReport, slot_minutes: impl Fn(Timeslot) -> u64) -> ChangeScope {
    let mut scope = ChangeScope::default();
    for i in &report.instances {
        if i.status == cornet_orchestrator::InstanceStatus::Completed {
            scope.changes.insert(i.node, slot_minutes(i.slot));
        }
    }
    scope
}

/// Run the §2.1 staged roll-out.
///
/// `slot_minutes` maps a timeslot to the execution minute used for KPI
/// alignment (usually `window.slot_start(slot).minutes() + offset`);
/// `inputs_for` supplies workflow inputs per node.
pub fn staged_rollout(
    cornet: &Cornet,
    plan: RolloutPlan<'_>,
    adapter: &(dyn DataAdapter + Sync),
    slot_minutes: impl Fn(Timeslot) -> u64 + Copy,
    inputs_for: impl Fn(NodeId) -> GlobalState + Sync,
) -> Result<RolloutReport> {
    // --- Phase 1: FFA.
    let ffa_report = cornet.dispatch(plan.war, &plan.ffa, plan.concurrency, &inputs_for)?;
    let ffa_scope = scope_of(&ffa_report, slot_minutes);
    let ffa_decision = if ffa_scope.changes.is_empty() {
        GoNoGo::NoGo
    } else {
        verify_rule(
            adapter,
            plan.rule,
            &ffa_scope,
            &cornet.inventory,
            &cornet.topology,
        )?
        .decision
    };
    if ffa_decision == GoNoGo::NoGo {
        return Ok(RolloutReport {
            ffa: ffa_report,
            ffa_decision,
            network: DispatchReport::default(),
            outcome: RolloutOutcome::NotCertified,
            breaker_trip: None,
        });
    }

    // --- Phase 2: network-wide with in-flight gates.
    let gate_every = plan.gate_every.max(1);
    let dispatcher = cornet_orchestrator::Dispatcher::new(
        plan.war.clone(),
        cornet.registry.clone(),
        plan.concurrency,
    )?;
    let mut slots_executed = 0u32;
    let mut breaker_trip: Option<BreakerTrip> = None;
    let (network_report, halted_at) =
        dispatcher.run_gated(&plan.network, &inputs_for, |_slot, so_far| {
            // The circuit breaker sees execution fall-out after every
            // slot: a block failing across instances is visible in the
            // logs immediately, no KPI lag involved.
            if let Some(breaker) = &plan.breaker {
                let fallout = FalloutAnalysis::from_reports([so_far]);
                if let Some(trip) = breaker.check(&fallout) {
                    breaker_trip = Some(trip);
                    return false;
                }
            }
            // Count *executed* slots, not slot numbers — sparse schedules
            // (excluded holidays) must still be verified every Nth slot.
            slots_executed += 1;
            if !slots_executed.is_multiple_of(gate_every) {
                return true;
            }
            // Verify everything changed so far (FFA + network slots).
            let mut scope = scope_of(so_far, slot_minutes);
            for (n, m) in &ffa_scope.changes {
                scope.changes.insert(*n, *m);
            }
            verify_rule(
                adapter,
                plan.rule,
                &scope,
                &cornet.inventory,
                &cornet.topology,
            )
            .map(|r| r.decision == GoNoGo::Go)
            .unwrap_or(true) // data problems alert, but don't halt blindly
        })?;

    let outcome = match halted_at {
        Some(slot) => RolloutOutcome::Halted { after_slot: slot.0 },
        None => RolloutOutcome::Completed,
    };
    Ok(RolloutReport {
        ffa: ffa_report,
        ffa_decision,
        network: network_report,
        outcome,
        breaker_trip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::testbed_registry;
    use cornet_netsim::{
        ImpactKind, InjectedImpact, KpiGenerator, Network, NetworkConfig, Testbed, TestbedConfig,
    };
    use cornet_types::{NfType, ParamValue};
    use cornet_verifier::{ClosureAdapter, ControlSelection, Expectation, KpiQuery};
    use cornet_workflow::builtin::software_upgrade_workflow;

    /// Shared fixture: 16 eNodeBs, testbed-backed registry, 2 FFA nodes
    /// in slot 1, the rest over slots 1..4 of the network phase.
    struct Fixture {
        cornet: Cornet,
        war: WarArtifact,
        ffa: Schedule,
        network: Schedule,
        enbs: Vec<NodeId>,
        testbed: Testbed,
    }

    fn fixture() -> Fixture {
        let net = Network::generate_ran(&NetworkConfig {
            markets_per_tz: 1,
            tacs_per_market: 1,
            usids_per_tac: 4,
            gnb_probability: 0.0,
            ..Default::default()
        });
        let enbs = net.nodes_of_type(NfType::ENodeB);
        let testbed = Testbed::new(TestbedConfig::default());
        for &n in &enbs {
            let rec = net.inventory.record(n);
            testbed.instantiate(&rec.name, rec.nf_type, "19.3");
        }
        let cornet = Cornet::new(
            net.inventory.clone(),
            net.topology.clone(),
            testbed_registry(testbed.clone()),
        );
        let war = cornet
            .deploy_workflow(&software_upgrade_workflow(&cornet.catalog))
            .unwrap();
        let mut ffa = Schedule::default();
        ffa.assignments.insert(enbs[0], Timeslot(1));
        ffa.assignments.insert(enbs[1], Timeslot(1));
        let mut network = Schedule::default();
        for (i, &n) in enbs[2..].iter().enumerate() {
            network.assignments.insert(n, Timeslot(i as u32 / 4 + 1));
        }
        Fixture {
            cornet,
            war,
            ffa,
            network,
            enbs,
            testbed,
        }
    }

    fn adapter_with_magnitude(study: Vec<NodeId>, magnitude: f64) -> impl DataAdapter {
        let impacts: Vec<InjectedImpact> = study
            .iter()
            .map(|&n| InjectedImpact {
                node: n,
                kpi: "thr".into(),
                carrier: None,
                at_minute: 10_000,
                kind: ImpactKind::LevelShift,
                magnitude,
            })
            .collect();
        let gen = KpiGenerator {
            seed: 77,
            noise: 0.02,
            ..Default::default()
        };
        ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
            Some(gen.series(node, kpi, carrier, 500, &impacts))
        })
    }

    fn rule(control: Vec<NodeId>) -> VerificationRule {
        VerificationRule {
            name: "rollout".into(),
            kpis: vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
            location_attributes: vec![],
            control: ControlSelection::Explicit(control),
            control_attr_filter: None,
            timescales: vec![1, 24],
            alpha: 0.01,
            min_relative_shift: 0.01,
        }
    }

    fn inputs(cornet: &Cornet) -> impl Fn(NodeId) -> GlobalState + Sync + '_ {
        move |node| {
            let mut g = GlobalState::new();
            g.insert(
                "node".into(),
                ParamValue::from(cornet.inventory.record(node).name.clone()),
            );
            g.insert("software_version".into(), ParamValue::from("20.1"));
            g
        }
    }

    #[test]
    fn good_change_completes_network_wide() {
        let f = fixture();
        let controls = f
            .cornet
            .inventory
            .iter()
            .filter(|r| r.nf_type == NfType::Siad)
            .map(|r| r.id)
            .collect::<Vec<_>>();
        let adapter = adapter_with_magnitude(f.enbs.clone(), 0.2);
        let r = rule(controls);
        let report = staged_rollout(
            &f.cornet,
            RolloutPlan {
                war: &f.war,
                ffa: f.ffa.clone(),
                network: f.network.clone(),
                rule: &r,
                concurrency: 4,
                gate_every: 1,
                breaker: None,
            },
            &adapter,
            |_slot| 10_000,
            inputs(&f.cornet),
        )
        .unwrap();
        assert_eq!(report.ffa_decision, GoNoGo::Go);
        assert_eq!(report.outcome, RolloutOutcome::Completed);
        assert_eq!(report.network.completed(), 14);
        // Everything upgraded.
        for &n in &f.enbs {
            let name = &f.cornet.inventory.record(n).name;
            assert_eq!(f.testbed.state(name).unwrap().sw_version, "20.1");
        }
    }

    #[test]
    fn bad_change_is_not_certified_at_ffa() {
        let f = fixture();
        let controls = f
            .cornet
            .inventory
            .iter()
            .filter(|r| r.nf_type == NfType::Siad)
            .map(|r| r.id)
            .collect::<Vec<_>>();
        // Degradation everywhere the change lands.
        let adapter = adapter_with_magnitude(f.enbs.clone(), -0.3);
        let r = rule(controls);
        let report = staged_rollout(
            &f.cornet,
            RolloutPlan {
                war: &f.war,
                ffa: f.ffa.clone(),
                network: f.network.clone(),
                rule: &r,
                concurrency: 4,
                gate_every: 1,
                breaker: None,
            },
            &adapter,
            |_slot| 10_000,
            inputs(&f.cornet),
        )
        .unwrap();
        assert_eq!(report.ffa_decision, GoNoGo::NoGo);
        assert_eq!(report.outcome, RolloutOutcome::NotCertified);
        assert_eq!(report.network.instances.len(), 0, "network phase never ran");
        // Only the 2 FFA nodes were touched.
        let upgraded = f
            .enbs
            .iter()
            .filter(|&&n| {
                let name = &f.cornet.inventory.record(n).name;
                f.testbed.state(name).unwrap().sw_version == "20.1"
            })
            .count();
        assert_eq!(upgraded, 2);
    }

    #[test]
    fn latent_degradation_halts_mid_rollout() {
        // FFA nodes improve (the trial looks clean) but the wider
        // population degrades — "the FFA change trials can show the
        // expected performance impacts, but network-wide roll-out can show
        // unexpected impacts" (§2.2).
        let f = fixture();
        let controls = f
            .cornet
            .inventory
            .iter()
            .filter(|r| r.nf_type == NfType::Siad)
            .map(|r| r.id)
            .collect::<Vec<_>>();
        let ffa_nodes = [f.enbs[0], f.enbs[1]];
        let impacts: Vec<InjectedImpact> = f
            .enbs
            .iter()
            .map(|&n| InjectedImpact {
                node: n,
                kpi: "thr".into(),
                carrier: None,
                at_minute: 10_000,
                kind: ImpactKind::LevelShift,
                magnitude: if ffa_nodes.contains(&n) { 0.2 } else { -0.3 },
            })
            .collect();
        let gen = KpiGenerator {
            seed: 78,
            noise: 0.02,
            ..Default::default()
        };
        let adapter = ClosureAdapter(move |node: NodeId, kpi: &str, carrier: Option<usize>| {
            Some(gen.series(node, kpi, carrier, 500, &impacts))
        });
        let r = rule(controls);
        let report = staged_rollout(
            &f.cornet,
            RolloutPlan {
                war: &f.war,
                ffa: f.ffa.clone(),
                network: f.network.clone(),
                rule: &r,
                concurrency: 4,
                gate_every: 1,
                breaker: None,
            },
            &adapter,
            |_slot| 10_000,
            inputs(&f.cornet),
        )
        .unwrap();
        assert_eq!(report.ffa_decision, GoNoGo::Go, "the trial looked clean");
        assert_eq!(
            report.outcome,
            RolloutOutcome::Halted { after_slot: 1 },
            "first gated check after network slot 1 catches the degradation"
        );
        assert!(report.network.instances.len() < 14, "halt spared the tail");
        assert!(report.breaker_trip.is_none(), "no breaker configured");
    }

    #[test]
    fn breaker_trips_before_the_verifier_sees_anything() {
        // KPIs look great everywhere, but the upgrade block itself fails
        // on every network-phase node: the circuit breaker must halt on
        // execution fall-out alone, no KPI degradation required.
        let f = fixture();
        let controls = f
            .cornet
            .inventory
            .iter()
            .filter(|r| r.nf_type == NfType::Siad)
            .map(|r| r.id)
            .collect::<Vec<_>>();
        let adapter = adapter_with_magnitude(f.enbs.clone(), 0.2);
        let r = rule(controls);
        // Rebuild the registry so software_upgrade fails permanently for
        // every non-FFA node.
        let ffa_names: Vec<String> = [f.enbs[0], f.enbs[1]]
            .iter()
            .map(|&n| f.cornet.inventory.record(n).name.clone())
            .collect();
        let mut cornet = Cornet::new(
            f.cornet.inventory.clone(),
            f.cornet.topology.clone(),
            testbed_registry(f.testbed.clone()),
        );
        cornet.registry.register("software_upgrade", move |s| {
            let node = cornet_orchestrator::executor::require_str(s, "node")?;
            if ffa_names.contains(&node) {
                s.insert("previous_version".into(), ParamValue::from("19.3"));
                return Ok(());
            }
            Err(cornet_types::CornetError::ExecutionFailed(
                "firmware image rejected".into(),
            ))
        });
        let war = cornet
            .deploy_workflow(&software_upgrade_workflow(&cornet.catalog))
            .unwrap();
        let report = staged_rollout(
            &cornet,
            RolloutPlan {
                war: &war,
                ffa: f.ffa.clone(),
                network: f.network.clone(),
                rule: &r,
                concurrency: 4,
                gate_every: 1,
                breaker: Some(CircuitBreaker {
                    failure_threshold: 0.5,
                    min_samples: 3,
                }),
            },
            &adapter,
            |_slot| 10_000,
            inputs(&cornet),
        )
        .unwrap();
        assert_eq!(report.ffa_decision, GoNoGo::Go);
        assert_eq!(report.outcome, RolloutOutcome::Halted { after_slot: 1 });
        let trip = report
            .breaker_trip
            .expect("the breaker, not the verifier, halted");
        assert_eq!(trip.block, "software_upgrade");
        assert!(trip.failure_rate >= 0.5, "rate {}", trip.failure_rate);
        assert!(
            report.network.instances.len() < 14,
            "tail slots were spared"
        );
    }
}
