//! The `Cornet` facade — Fig. 3's unified experience.
//!
//! One object holding the catalog, the network (inventory + topology),
//! and the executor registry, with entry points into the four phases:
//! design (workflows), plan (schedules), execute (dispatch), verify
//! (impact). Examples and integration tests drive CORNET through this.

use cornet_catalog::{builtin_catalog, Catalog};
use cornet_obs::Tracer;
use cornet_orchestrator::{DispatchReport, Dispatcher, ExecutorRegistry, GlobalState};
use cornet_planner::{plan, PlanIntent, PlanOptions, PlanResult};
use cornet_types::{Inventory, NodeId, Result, Schedule, Topology};
use cornet_verifier::{
    verify_rule_traced, ChangeScope, DataAdapter, VerificationReport, VerificationRule,
};
use cornet_workflow::{validate, ValidationReport, WarArtifact, Workflow};

/// The composition framework, assembled.
pub struct Cornet {
    /// Building-block catalog (Table 2 plus any user additions).
    pub catalog: Catalog,
    /// Inventory of network-function instances.
    pub inventory: Inventory,
    /// Network topology.
    pub topology: Topology,
    /// Executor registry used at dispatch time.
    pub registry: ExecutorRegistry,
    /// Tracer shared across every phase driven through the facade (noop
    /// by default; see [`Cornet::with_tracer`]).
    pub tracer: Tracer,
}

impl Cornet {
    /// Assemble CORNET over a network with the built-in catalog.
    pub fn new(inventory: Inventory, topology: Topology, registry: ExecutorRegistry) -> Self {
        Cornet {
            catalog: builtin_catalog(),
            inventory,
            topology,
            registry,
            tracer: Tracer::noop(),
        }
    }

    /// Attach a tracer: plan/dispatch/verify runs driven through the
    /// facade record their spans and metrics on it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Validate a workflow against the catalog (§3.2's verification step).
    pub fn validate_workflow(&self, wf: &Workflow) -> ValidationReport {
        validate(wf, &self.catalog)
    }

    /// Package a validated workflow into a deployable WAR artifact.
    pub fn deploy_workflow(&self, wf: &Workflow) -> Result<WarArtifact> {
        WarArtifact::package(wf, &self.catalog)
    }

    /// Discover a change schedule from a high-level JSON intent.
    pub fn plan_from_json(
        &self,
        intent_json: &str,
        nodes: &[NodeId],
        options: &PlanOptions,
    ) -> Result<PlanResult> {
        let intent = PlanIntent::from_json(intent_json)?;
        self.plan(&intent, nodes, options)
    }

    /// Discover a change schedule from a parsed intent.
    pub fn plan(
        &self,
        intent: &PlanIntent,
        nodes: &[NodeId],
        options: &PlanOptions,
    ) -> Result<PlanResult> {
        // The facade tracer backs any plan that didn't bring its own.
        if self.tracer.is_enabled() && !options.tracer.is_enabled() {
            let mut traced = options.clone();
            traced.tracer = self.tracer.clone();
            return plan(intent, &self.inventory, &self.topology, nodes, &traced);
        }
        plan(intent, &self.inventory, &self.topology, nodes, options)
    }

    /// Dispatch a schedule through a deployed workflow.
    pub fn dispatch(
        &self,
        war: &WarArtifact,
        schedule: &Schedule,
        concurrency: usize,
        inputs_for: impl Fn(NodeId) -> GlobalState + Sync,
    ) -> Result<DispatchReport> {
        Dispatcher::new(war.clone(), self.registry.clone(), concurrency)?
            .with_tracer(self.tracer.clone())
            .run(schedule, inputs_for)
    }

    /// Verify the impact of executed changes.
    pub fn verify(
        &self,
        adapter: &dyn DataAdapter,
        rule: &VerificationRule,
        scope: &ChangeScope,
    ) -> Result<VerificationReport> {
        verify_rule_traced(
            adapter,
            rule,
            scope,
            &self.inventory,
            &self.topology,
            &self.tracer,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::testbed_registry;
    use cornet_netsim::{Network, Testbed, TestbedConfig};
    use cornet_types::ParamValue;
    use cornet_workflow::builtin::software_upgrade_workflow;

    /// End-to-end smoke: generate a network, plan, deploy, dispatch,
    /// check testbed state. (The full §4 experiments live in the
    /// workspace-level integration tests.)
    #[test]
    fn design_plan_execute_cycle() {
        let net = Network::generate_cloud(1, 6, 1);
        let tb = Testbed::new(TestbedConfig::default());
        let vces: Vec<NodeId> = net
            .inventory
            .iter()
            .filter(|r| r.nf_type == cornet_types::NfType::VceRouter)
            .map(|r| {
                tb.instantiate(&r.name, r.nf_type, "16.9");
                r.id
            })
            .collect();
        let cornet = Cornet::new(
            net.inventory.clone(),
            net.topology.clone(),
            testbed_registry(tb.clone()),
        );

        // Design + deploy.
        let wf = software_upgrade_workflow(&cornet.catalog);
        assert!(cornet.validate_workflow(&wf).is_valid());
        let war = cornet.deploy_workflow(&wf).unwrap();

        // Plan: 6 vCEs, 2 per night.
        let intent = r#"{
            "scheduling_window": {"start": "2020-07-01 00:00:00",
                                   "end": "2020-07-05 23:59:00",
                                   "granularity": {"metric": "day", "value": 1}},
            "maintenance_window": {"start": "0:00", "end": "6:00"},
            "schedulable_attribute": "common_id",
            "conflict_attribute": "common_id",
            "constraints": [
                {"name": "concurrency", "base_attribute": "common_id",
                 "operator": "<=", "granularity": {"metric": "day", "value": 1},
                 "default_capacity": 2}
            ]
        }"#;
        let result = cornet
            .plan_from_json(intent, &vces, &PlanOptions::default())
            .unwrap();
        assert_eq!(result.schedule.scheduled_count(), 6);
        assert_eq!(result.makespan(), 3);

        // Execute.
        let inv = &cornet.inventory;
        let report = cornet
            .dispatch(&war, &result.schedule, 2, |node| {
                let mut g = GlobalState::new();
                g.insert(
                    "node".into(),
                    ParamValue::from(inv.record(node).name.clone()),
                );
                g.insert("software_version".into(), ParamValue::from("17.3"));
                g
            })
            .unwrap();
        assert_eq!(report.completed(), 6);

        // §4.1's check: versions actually moved.
        for &v in &vces {
            let name = &cornet.inventory.record(v).name;
            assert_eq!(tb.state(name).unwrap().sw_version, "17.3");
        }
    }

    /// Every backend choice is reachable through the facade — the §3.3
    /// "many optimizers behind one intent" seam, end to end.
    #[test]
    fn facade_exposes_every_backend() {
        use cornet_planner::BackendChoice;

        let net = Network::generate_cloud(1, 6, 1);
        let tb = Testbed::new(TestbedConfig::default());
        let vces: Vec<NodeId> = net
            .inventory
            .iter()
            .filter(|r| r.nf_type == cornet_types::NfType::VceRouter)
            .map(|r| r.id)
            .collect();
        let cornet = Cornet::new(
            net.inventory.clone(),
            net.topology.clone(),
            testbed_registry(tb),
        );
        let intent = r#"{
            "scheduling_window": {"start": "2020-07-01 00:00:00",
                                   "end": "2020-07-05 23:59:00",
                                   "granularity": {"metric": "day", "value": 1}},
            "maintenance_window": {"start": "0:00", "end": "6:00"},
            "schedulable_attribute": "common_id",
            "conflict_attribute": "common_id",
            "constraints": [
                {"name": "concurrency", "base_attribute": "common_id",
                 "operator": "<=", "granularity": {"metric": "day", "value": 1},
                 "default_capacity": 2}
            ]
        }"#;
        for backend in [
            BackendChoice::Exact,
            BackendChoice::Greedy,
            BackendChoice::Heuristic,
            BackendChoice::Portfolio,
        ] {
            let options = PlanOptions {
                backend,
                ..Default::default()
            };
            let result = cornet.plan_from_json(intent, &vces, &options).unwrap();
            assert_eq!(
                result.schedule.scheduled_count(),
                6,
                "{backend:?} schedules all nodes"
            );
            assert_eq!(result.backend, backend);
            assert!(!result.backend_runs.is_empty());
        }
    }
}
