//! Fluent workflow construction.
//!
//! The paper's designer is a graphical BPMN editor; its programmatic core
//! is "pick blocks from the catalog, wire them, declare workflow inputs and
//! outputs". `Designer` is that core: it checks block names against the
//! catalog at insertion time so typos fail at design time, not run time.

use crate::graph::{NodeId, NodeKind, Workflow, WorkflowParam};
use cornet_catalog::Catalog;
use cornet_types::{CornetError, ParamType, Result};

/// Incremental workflow builder bound to a catalog.
pub struct Designer<'a> {
    catalog: &'a Catalog,
    wf: Workflow,
    start: NodeId,
}

impl<'a> Designer<'a> {
    /// Start designing a workflow; a start node is created implicitly.
    pub fn new(catalog: &'a Catalog, name: impl Into<String>) -> Self {
        let mut wf = Workflow::new(name);
        let start = wf.add_node("start", NodeKind::Start);
        Designer { catalog, wf, start }
    }

    /// The implicit start node.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// Declare a workflow input parameter.
    pub fn input(&mut self, name: &str, ty: ParamType) -> &mut Self {
        self.wf.inputs.push(WorkflowParam {
            name: name.into(),
            ty,
        });
        self
    }

    /// Declare a workflow output parameter.
    pub fn output(&mut self, name: &str, ty: ParamType) -> &mut Self {
        self.wf.outputs.push(WorkflowParam {
            name: name.into(),
            ty,
        });
        self
    }

    /// Add a task node running a catalog block. Fails on unknown blocks.
    pub fn task(&mut self, block: &str) -> Result<NodeId> {
        if self.catalog.get(block).is_none() {
            return Err(CornetError::UnknownReference(format!(
                "building block '{block}' is not in the catalog"
            )));
        }
        Ok(self.wf.add_node(
            block,
            NodeKind::Task {
                block: block.into(),
            },
        ))
    }

    /// Add a decision gateway on a boolean state variable.
    pub fn decision(&mut self, variable: &str) -> NodeId {
        self.wf.add_node(
            format!("{variable}?"),
            NodeKind::Decision {
                variable: variable.into(),
            },
        )
    }

    /// Add an end node.
    pub fn end(&mut self) -> NodeId {
        self.wf.add_node("end", NodeKind::End)
    }

    /// Unconditional edge.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.wf.add_edge(from, to, None);
        self
    }

    /// Guarded edge out of a decision node.
    pub fn connect_if(&mut self, from: NodeId, to: NodeId, guard: bool) -> &mut Self {
        self.wf.add_edge(from, to, Some(guard));
        self
    }

    /// Designate an explicitly designed backout subgraph, executed by the
    /// engine on permanent failure (MOPs carry backout steps).
    pub fn backout(&mut self, backout: Workflow) -> &mut Self {
        self.wf.set_backout(backout);
        self
    }

    /// Convenience: designate a linear backout flow running the given
    /// catalog blocks in order. Fails on unknown blocks, like [`task`].
    ///
    /// [`task`]: Designer::task
    pub fn backout_sequence(&mut self, blocks: &[&str]) -> Result<&mut Self> {
        let mut d = Designer::new(self.catalog, format!("{}-backout", self.wf.name));
        let mut prev = d.start();
        for block in blocks {
            let t = d.task(block)?;
            d.connect(prev, t);
            prev = t;
        }
        let end = d.end();
        d.connect(prev, end);
        self.wf.set_backout(d.build());
        Ok(self)
    }

    /// Finish, returning the workflow (unvalidated — run
    /// [`crate::validate::validate`] before deployment).
    pub fn build(self) -> Workflow {
        self.wf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_catalog::builtin_catalog;

    #[test]
    fn designer_builds_linear_flow() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "linear");
        d.input("node", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let end = d.end();
        d.connect(start, hc).connect(hc, end);
        let wf = d.build();
        assert_eq!(wf.nodes.len(), 3);
        assert_eq!(wf.blocks(), vec!["health_check"]);
        assert_eq!(wf.inputs.len(), 1);
    }

    #[test]
    fn unknown_block_rejected_at_design_time() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "typo");
        assert!(d.task("helth_check").is_err());
    }

    #[test]
    fn decision_labels() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "dec");
        let dec = d.decision("healthy");
        let wf = d.build();
        assert_eq!(wf.node(dec).label, "healthy?");
        assert!(
            matches!(&wf.node(dec).kind, NodeKind::Decision { variable } if variable == "healthy")
        );
    }
}
