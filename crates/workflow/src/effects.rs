//! Static effect inference for workflows (the CN06xx effect system).
//!
//! Every building block reads and writes certain *state dimensions* of
//! its target node — version, config, routing, health ([`StateDim`]).
//! This module lifts the per-block annotations from the catalog to
//! whole-workflow effect summaries, propagated path-sensitively through
//! the graph with the same may/must discipline as the dataflow analysis
//! in [`crate::validate`]:
//!
//! * **may** effects — the union over all reachable paths: everything the
//!   workflow *can* touch. Interference detection is sound against may
//!   effects.
//! * **must** writes — the intersection over all start→end paths:
//!   everything the workflow writes *no matter which branches are taken*.
//!   A decision that skips the upgrade keeps `version` out of the must
//!   set even though it stays in may.
//!
//! A mutating block with no declared write dimensions is conservatively
//! assumed to write every dimension; such blocks are reported in
//! [`WorkflowEffects::assumed_blocks`] so the interference pass can
//! explain conservative verdicts (CN0605). Backout subgraphs get their
//! own summary: a backout races *other* campaigns' mainlines (CN0602).

use crate::graph::{NodeKind, Workflow};
use cornet_catalog::{BlockSpec, Catalog, StateDim};
use std::collections::{BTreeSet, VecDeque};

/// Read/write effect sets of one block over its target node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockEffects {
    /// Dimensions the block reads.
    pub reads: BTreeSet<StateDim>,
    /// Dimensions the block writes.
    pub writes: BTreeSet<StateDim>,
    /// Whether the write set is a conservative assumption (a mutating
    /// block with no declared write dimensions).
    pub assumed: bool,
}

/// Effect summary of one workflow (and, recursively, its backout flow).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkflowEffects {
    /// Dimensions some path through the workflow may write.
    pub may_writes: BTreeSet<StateDim>,
    /// Dimensions every start→end path writes.
    pub must_writes: BTreeSet<StateDim>,
    /// Dimensions some path may read.
    pub may_reads: BTreeSet<StateDim>,
    /// Blocks whose write sets were conservatively assumed (mutating but
    /// unannotated, or absent from the catalog).
    pub assumed_blocks: Vec<String>,
    /// Effect summary of the backout subgraph, when one is designated.
    pub backout: Option<Box<WorkflowEffects>>,
}

impl WorkflowEffects {
    /// Whether the summary relied on any conservative assumption.
    pub fn is_assumed(&self) -> bool {
        !self.assumed_blocks.is_empty() || self.backout.as_ref().is_some_and(|b| b.is_assumed())
    }

    /// May-write dimensions of the backout flow (empty without one).
    pub fn backout_writes(&self) -> BTreeSet<StateDim> {
        self.backout
            .as_ref()
            .map(|b| b.may_writes.clone())
            .unwrap_or_default()
    }
}

/// Effect sets of one catalog block: declared annotations when present,
/// otherwise a conservative fallback (a mutating block with no declared
/// writes is assumed to write every dimension; a non-mutating block with
/// no declared reads is assumed effect-free).
pub fn block_effects(spec: &BlockSpec) -> BlockEffects {
    let mut eff = BlockEffects {
        reads: spec.reads.iter().copied().collect(),
        writes: spec.writes.iter().copied().collect(),
        assumed: false,
    };
    if spec.mutates && eff.writes.is_empty() {
        eff.writes.extend(StateDim::ALL);
        eff.assumed = true;
    }
    eff
}

/// Conservative effects of a block absent from the catalog: it may do
/// anything.
fn unknown_block_effects() -> BlockEffects {
    BlockEffects {
        reads: StateDim::ALL.into_iter().collect(),
        writes: StateDim::ALL.into_iter().collect(),
        assumed: true,
    }
}

/// Infer the effect summary of a workflow against a catalog.
///
/// Mirrors the may/must propagation of the dataflow analysis: may sets
/// accumulate over every reachable node; must writes run a worklist
/// intersection over in-edges (`None` = unvisited ⊤) and finish as the
/// intersection over all end nodes. Workflows with no analyzable
/// start/end structure degrade to may-only summaries (the structural
/// pass reports those defects separately).
pub fn workflow_effects(wf: &Workflow, catalog: &Catalog) -> WorkflowEffects {
    let mut summary = WorkflowEffects::default();

    let per_node: Vec<BlockEffects> = wf
        .nodes
        .iter()
        .map(|n| match &n.kind {
            NodeKind::Task { block } => catalog
                .get(block)
                .map(block_effects)
                .unwrap_or_else(unknown_block_effects),
            _ => BlockEffects::default(),
        })
        .collect();

    let reachable = wf.reachable();
    for (i, node) in wf.nodes.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        summary
            .may_writes
            .extend(per_node[i].writes.iter().copied());
        summary.may_reads.extend(per_node[i].reads.iter().copied());
        if per_node[i].assumed {
            if let NodeKind::Task { block } = &node.kind {
                summary.assumed_blocks.push(block.clone());
            }
        }
    }
    summary.assumed_blocks.dedup();

    // Must writes: worklist fixpoint, intersection over in-edges.
    if let Some(start) = wf.start() {
        let n = wf.nodes.len();
        let mut must: Vec<Option<BTreeSet<StateDim>>> = vec![None; n];
        must[start.index()] = Some(BTreeSet::new());
        let mut queue = VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            let Some(mut after) = must[cur.index()].clone() else {
                continue;
            };
            after.extend(per_node[cur.index()].writes.iter().copied());
            for e in wf.out_edges(cur) {
                let slot = &mut must[e.to.index()];
                let changed = match slot {
                    None => {
                        *slot = Some(after.clone());
                        true
                    }
                    Some(t) => {
                        let before = t.len();
                        t.retain(|d| after.contains(d));
                        t.len() != before
                    }
                };
                if changed {
                    queue.push_back(e.to);
                }
            }
        }
        let mut at_ends = wf
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::End && reachable[n.id.index()])
            .filter_map(|n| must[n.id.index()].clone());
        if let Some(first) = at_ends.next() {
            summary.must_writes = at_ends.fold(first, |acc, s| &acc & &s);
        }
    }

    if let Some(backout) = &wf.backout {
        summary.backout = Some(Box::new(workflow_effects(backout, catalog)));
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designer::Designer;
    use cornet_catalog::{builtin_catalog, BlockSpec, Phase};
    use StateDim::*;

    #[test]
    fn upgrade_workflow_effects_match_its_blocks() {
        let cat = builtin_catalog();
        let mut wf = crate::builtin::software_upgrade_workflow(&cat);
        let mut d = Designer::new(&cat, "backout");
        let s = d.start();
        let rb = d.task("roll_back").unwrap();
        let e = d.end();
        d.connect(s, rb).connect(rb, e);
        wf.set_backout(d.build());

        let eff = workflow_effects(&wf, &cat);
        assert!(eff.may_writes.contains(&Version));
        assert!(eff.may_reads.contains(&Health));
        assert!(!eff.may_writes.contains(&Config));
        assert!(eff.assumed_blocks.is_empty() && !eff.is_assumed());
        assert_eq!(eff.backout_writes(), BTreeSet::from([Version]));
    }

    #[test]
    fn branch_skipped_write_is_may_but_not_must() {
        // start → health_check → healthy? ──true──→ software_upgrade → end
        //                                └─false──────────────────────→ end
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "conditional-upgrade");
        d.input("node", cornet_types::ParamType::String);
        d.input("software_version", cornet_types::ParamType::String);
        let s = d.start();
        let hc = d.task("health_check").unwrap();
        let dec = d.decision("healthy");
        let up = d.task("software_upgrade").unwrap();
        let e = d.end();
        d.connect(s, hc)
            .connect(hc, dec)
            .connect_if(dec, up, true)
            .connect_if(dec, e, false)
            .connect(up, e);
        let eff = workflow_effects(&d.build(), &cat);
        assert!(eff.may_writes.contains(&Version));
        assert!(!eff.must_writes.contains(&Version), "{:?}", eff.must_writes);
    }

    #[test]
    fn unconditional_write_is_must() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "plain-config");
        d.input("node", cornet_types::ParamType::String);
        d.input("config", cornet_types::ParamType::Map);
        let s = d.start();
        let cc = d.task("config_change").unwrap();
        let e = d.end();
        d.connect(s, cc).connect(cc, e);
        let eff = workflow_effects(&d.build(), &cat);
        assert_eq!(eff.must_writes, BTreeSet::from([Config]));
        assert_eq!(eff.may_writes, BTreeSet::from([Config]));
    }

    #[test]
    fn unannotated_mutating_block_is_assumed_to_write_everything() {
        let mut cat = builtin_catalog();
        cat.register(
            BlockSpec::new("mystery_mutator", Phase::DesignOrchestration, "?", true)
                .mutating()
                .input("node", cornet_types::ParamType::String),
        );
        let mut d = Designer::new(&cat, "mystery");
        d.input("node", cornet_types::ParamType::String);
        let s = d.start();
        let m = d.task("mystery_mutator").unwrap();
        let e = d.end();
        d.connect(s, m).connect(m, e);
        let eff = workflow_effects(&d.build(), &cat);
        assert_eq!(eff.may_writes, StateDim::ALL.into_iter().collect());
        assert_eq!(eff.assumed_blocks, vec!["mystery_mutator".to_string()]);
        assert!(eff.is_assumed());
    }
}
