//! The workflow graph structure.
//!
//! "The building blocks serve as the nodes and the connections between
//! pairs of blocks serve as the edges of the graph" (§3.2). Decisions are
//! exclusive gateways branching on a boolean variable in the workflow's
//! global state; variables flow between blocks through that state.

use cornet_types::ParamType;
use serde::{Deserialize, Serialize};

/// Node handle inside one workflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Vector index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a workflow node does.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Entry point (exactly one per workflow).
    Start,
    /// Terminal point (at least one per workflow).
    End,
    /// Execute a building block from the catalog.
    Task {
        /// Catalog block name.
        block: String,
    },
    /// Exclusive gateway branching on a boolean global-state variable.
    Decision {
        /// Variable consulted for the branch.
        variable: String,
    },
}

/// One node of the workflow graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowNode {
    /// Handle of the node.
    pub id: NodeId,
    /// Display label (defaults to the block name for tasks).
    pub label: String,
    /// Node behaviour.
    pub kind: NodeKind,
}

/// Directed edge; decision out-edges carry a boolean guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowEdge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Guard: `Some(true)` = "yes" branch, `Some(false)` = "no" branch,
    /// `None` = unconditional.
    pub guard: Option<bool>,
}

/// Declared parameter of the workflow itself (its start inputs / end
/// outputs), e.g. Fig. 4's `(node, software_version) → status`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowParam {
    /// Parameter name in the global state.
    pub name: String,
    /// Parameter type.
    pub ty: ParamType,
}

/// A change workflow (the paper's MOP as a graph).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name, e.g. `"software_upgrade_v2"`.
    pub name: String,
    /// Nodes in insertion order; `NodeId` indexes this vector.
    pub nodes: Vec<WorkflowNode>,
    /// Directed edges.
    pub edges: Vec<WorkflowEdge>,
    /// Input parameters the dispatcher must supply.
    pub inputs: Vec<WorkflowParam>,
    /// Output parameters the workflow promises to produce.
    pub outputs: Vec<WorkflowParam>,
    /// Optional backout subgraph — the paper's MOPs carry explicit
    /// backout steps. On a permanent block failure the engine executes
    /// this workflow over the instance's current global state and reports
    /// the instance as rolled back when it completes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub backout: Option<Box<Workflow>>,
}

impl Workflow {
    /// Empty workflow with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Append a node.
    pub fn add_node(&mut self, label: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(WorkflowNode {
            id,
            label: label.into(),
            kind,
        });
        id
    }

    /// Append an edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, guard: Option<bool>) {
        self.edges.push(WorkflowEdge { from, to, guard });
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &WorkflowNode {
        &self.nodes[id.index()]
    }

    /// The unique start node, if the workflow has exactly one.
    pub fn start(&self) -> Option<NodeId> {
        let mut starts = self.nodes.iter().filter(|n| n.kind == NodeKind::Start);
        match (starts.next(), starts.next()) {
            (Some(s), None) => Some(s.id),
            _ => None,
        }
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &WorkflowEdge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &WorkflowEdge> {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// Names of catalog blocks used by the workflow, in node order.
    pub fn blocks(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Task { block } => Some(block.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Designate the backout subgraph executed on permanent failure.
    pub fn set_backout(&mut self, backout: Workflow) {
        self.backout = Some(Box::new(backout));
    }

    /// Nodes reachable from the start by BFS (guards ignored).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let Some(start) = self.start() else {
            return seen;
        };
        let mut queue = std::collections::VecDeque::from([start]);
        seen[start.index()] = true;
        while let Some(cur) = queue.pop_front() {
            for e in self.out_edges(cur) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut wf = Workflow::new("t");
        let s = wf.add_node("start", NodeKind::Start);
        let t = wf.add_node(
            "hc",
            NodeKind::Task {
                block: "health_check".into(),
            },
        );
        let e = wf.add_node("end", NodeKind::End);
        wf.add_edge(s, t, None);
        wf.add_edge(t, e, None);
        assert_eq!(wf.start(), Some(s));
        assert_eq!(wf.out_edges(t).count(), 1);
        assert_eq!(wf.in_edges(t).count(), 1);
        assert_eq!(wf.blocks(), vec!["health_check"]);
    }

    #[test]
    fn two_starts_is_ambiguous() {
        let mut wf = Workflow::new("t");
        wf.add_node("s1", NodeKind::Start);
        wf.add_node("s2", NodeKind::Start);
        assert_eq!(wf.start(), None);
    }

    #[test]
    fn reachability_skips_orphans() {
        let mut wf = Workflow::new("t");
        let s = wf.add_node("start", NodeKind::Start);
        let a = wf.add_node("a", NodeKind::Task { block: "x".into() });
        let orphan = wf.add_node("zombie", NodeKind::Task { block: "y".into() });
        let e = wf.add_node("end", NodeKind::End);
        wf.add_edge(s, a, None);
        wf.add_edge(a, e, None);
        let r = wf.reachable();
        assert!(r[s.index()] && r[a.index()] && r[e.index()]);
        assert!(!r[orphan.index()]);
    }

    #[test]
    fn serde_round_trip() {
        let mut wf = Workflow::new("t");
        let s = wf.add_node("start", NodeKind::Start);
        let d = wf.add_node(
            "ok?",
            NodeKind::Decision {
                variable: "healthy".into(),
            },
        );
        wf.add_edge(s, d, None);
        let json = serde_json::to_string(&wf).unwrap();
        let back: Workflow = serde_json::from_str(&json).unwrap();
        assert_eq!(wf, back);
    }
}
