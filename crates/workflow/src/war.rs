//! WAR artifact generation.
//!
//! "We take the BPMN graphical layout with building blocks captured using
//! the corresponding REST APIs and then dynamically create the WAR file
//! which is the meta-code stitching of the different building blocks into a
//! workflow. … The WAR can then be referenced using a dynamically generated
//! REST API for the newly created change workflow" (§3.2).
//!
//! Our WAR is a manifest (workflow name, version digest, block → endpoint
//! table, the REST path for invoking the workflow) plus the serialized
//! graph, packed into bytes — the artifact the orchestrator deploys.

use crate::graph::Workflow;
use crate::validate::require_valid;
use bytes::Bytes;
use cornet_catalog::Catalog;
use cornet_types::{CornetError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Manifest describing one deployable workflow artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WarManifest {
    /// Workflow name.
    pub workflow: String,
    /// Content digest of the serialized workflow (FNV-1a, hex).
    pub digest: String,
    /// REST path registered for launching this workflow.
    pub rest_api: String,
    /// Block name → REST endpoint path used during execution.
    pub block_endpoints: BTreeMap<String, String>,
}

/// A packaged workflow: manifest + serialized graph bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct WarArtifact {
    /// Deployment manifest.
    pub manifest: WarManifest,
    /// Serialized workflow payload.
    pub payload: Bytes,
}

/// 64-bit FNV-1a — content digest for WAR versioning. Collision-resistant
/// enough for artifact identity inside one deployment, with zero deps.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

impl WarArtifact {
    /// Validate and package a workflow. Fails if [`crate::validate::analyze`]
    /// reports any error-severity diagnostic — unverified workflows never
    /// reach the orchestrator (warnings do not block packaging).
    pub fn package(wf: &Workflow, catalog: &Catalog) -> Result<WarArtifact> {
        require_valid(wf, catalog)?;
        let payload = serde_json::to_vec(wf)
            .map_err(|e| CornetError::Parse(format!("workflow serialization failed: {e}")))?;
        let digest = format!("{:016x}", fnv1a(&payload));
        let block_endpoints = wf
            .blocks()
            .iter()
            .filter_map(|b| {
                catalog
                    .get(b)
                    .map(|s| (s.name.clone(), s.endpoint.path.clone()))
            })
            .collect();
        let manifest = WarManifest {
            workflow: wf.name.clone(),
            rest_api: format!("/wf/{}/{digest}", wf.name),
            digest,
            block_endpoints,
        };
        Ok(WarArtifact {
            manifest,
            payload: Bytes::from(payload),
        })
    }

    /// Unpack the workflow graph from the artifact.
    pub fn unpack(&self) -> Result<Workflow> {
        serde_json::from_slice(&self.payload)
            .map_err(|e| CornetError::Parse(format!("corrupt WAR payload: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::software_upgrade_workflow;
    use cornet_catalog::builtin_catalog;

    #[test]
    fn package_and_unpack_round_trip() {
        let cat = builtin_catalog();
        let wf = software_upgrade_workflow(&cat);
        let war = WarArtifact::package(&wf, &cat).unwrap();
        assert_eq!(war.unpack().unwrap(), wf);
        assert!(war.manifest.rest_api.starts_with("/wf/software_upgrade/"));
        assert!(war
            .manifest
            .block_endpoints
            .contains_key("software_upgrade"));
        assert_eq!(
            war.manifest.block_endpoints["health_check"],
            "/bb/health_check"
        );
    }

    #[test]
    fn digest_changes_with_content() {
        let cat = builtin_catalog();
        let wf1 = software_upgrade_workflow(&cat);
        let mut wf2 = wf1.clone();
        wf2.name = "software_upgrade_v2".into();
        let d1 = WarArtifact::package(&wf1, &cat).unwrap().manifest.digest;
        let d2 = WarArtifact::package(&wf2, &cat).unwrap().manifest.digest;
        assert_ne!(d1, d2);
    }

    #[test]
    fn invalid_workflow_refuses_to_package() {
        let cat = builtin_catalog();
        let wf = Workflow::new("broken");
        assert!(WarArtifact::package(&wf, &cat).is_err());
    }

    #[test]
    fn outstanding_error_diagnostics_block_packaging() {
        // A structurally sound workflow that the deep dataflow pass
        // rejects (CN0207: a branch-merge type conflict) must not package;
        // warning-only findings (no backout coverage) must still package.
        use crate::designer::Designer;
        use cornet_catalog::{BlockSpec, Catalog, Phase};
        use cornet_types::ParamType;

        let build = |b_ty: ParamType| {
            let mut cat = Catalog::new();
            cat.register(
                BlockSpec::new("probe", Phase::DesignOrchestration, "p", true)
                    .input("node", ParamType::String)
                    .output("ready", ParamType::Bool),
            );
            cat.register(
                BlockSpec::new("branch_a", Phase::DesignOrchestration, "a", true)
                    .input("node", ParamType::String)
                    .output("result", ParamType::Int),
            );
            cat.register(
                BlockSpec::new("branch_b", Phase::DesignOrchestration, "b", true)
                    .mutating()
                    .input("node", ParamType::String)
                    .output("result", b_ty),
            );
            cat.register(
                BlockSpec::new("consume", Phase::DesignOrchestration, "c", true)
                    .input("result", ParamType::Int),
            );
            let mut d = Designer::new(&cat, "diamond");
            d.input("node", ParamType::String);
            let start = d.start();
            let probe = d.task("probe").unwrap();
            let dec = d.decision("ready");
            let a = d.task("branch_a").unwrap();
            let b = d.task("branch_b").unwrap();
            let c = d.task("consume").unwrap();
            let end = d.end();
            d.connect(start, probe)
                .connect(probe, dec)
                .connect_if(dec, a, true)
                .connect_if(dec, b, false)
                .connect(a, c)
                .connect(b, c)
                .connect(c, end);
            (d.build(), cat)
        };

        let (wf, cat) = build(ParamType::Map);
        let err = WarArtifact::package(&wf, &cat).unwrap_err();
        assert!(err.to_string().contains("conflicting types"), "{err}");

        // Corrected twin: types agree; only warnings remain (branch_b is
        // mutating with no backout flow) and packaging succeeds.
        let (wf, cat) = build(ParamType::Int);
        let report = crate::validate::analyze(&wf, &cat);
        assert!(report.warning_count() > 0, "{}", report.render_text());
        assert!(WarArtifact::package(&wf, &cat).is_ok());
    }

    #[test]
    fn packaging_is_deterministic() {
        let cat = builtin_catalog();
        let wf = software_upgrade_workflow(&cat);
        let a = WarArtifact::package(&wf, &cat).unwrap();
        let b = WarArtifact::package(&wf, &cat).unwrap();
        assert_eq!(a.manifest.digest, b.manifest.digest);
        assert_eq!(a.payload, b.payload);
    }
}
