//! # cornet-workflow
//!
//! Graph-based change-workflow design (§3.2): building blocks are nodes,
//! connections are edges, decisions branch on workflow state, and the whole
//! graph is validated (zombie detection, reachability, parameter flow)
//! before being packaged into a WAR-like deployment artifact with a
//! dynamically generated REST API.
//!
//! The module split mirrors the paper's flow:
//!
//! * [`graph`] — the BPMN-like workflow structure;
//! * [`designer`] — fluent construction API ("our designer still allows the
//!   quick and flexible creation of any new workflow");
//! * [`mod@validate`] — the verification step ("we ensure that there are no
//!   zombie building blocks");
//! * [`war`] — WAR generation + REST registration for the orchestrator;
//! * [`builtin`] — canonical workflows, including Fig. 4's software
//!   upgrade and the two-workflow vCE pattern from §5.1.

#![forbid(unsafe_code)]
pub mod builtin;
pub mod designer;
pub mod effects;
pub mod graph;
pub mod validate;
pub mod war;

pub use designer::Designer;
pub use effects::{block_effects, workflow_effects, BlockEffects, WorkflowEffects};
pub use graph::{NodeId as WfNodeId, NodeKind, Workflow, WorkflowEdge, WorkflowNode};
pub use validate::{analyze, validate, ValidationReport};
pub use war::{WarArtifact, WarManifest};
