//! Canonical change workflows from the paper.
//!
//! * [`software_upgrade_workflow`] — Fig. 4: health check → upgrade →
//!   pre/post comparison → roll-back on failure.
//! * [`config_change_workflow`] — the same skeleton over `config_change`.
//! * [`vce_download_workflow`] / [`vce_activate_workflow`] — the §5.1
//!   two-workflow vCE pattern: a non-disruptive download/install pass,
//!   then a disruptive health-check/reboot/verify pass days later.
//! * [`sdwan_upgrade_workflow`] — §5.1's single three-block workflow
//!   (pre-check, upgrade with reboot, post-check).

use crate::designer::Designer;
use crate::graph::Workflow;
use cornet_catalog::Catalog;
use cornet_types::ParamType;

/// Fig. 4's software upgrade workflow.
///
/// Input: `node`, `software_version`. If the health check fails the
/// workflow ends; if the pre/post comparison fails the software is rolled
/// back.
pub fn software_upgrade_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "software_upgrade");
    d.input("node", ParamType::String);
    d.input("software_version", ParamType::String);
    d.output("passed", ParamType::Bool);
    let start = d.start();
    let hc = d.task("health_check").expect("catalog has health_check");
    let healthy = d.decision("healthy");
    let up = d
        .task("software_upgrade")
        .expect("catalog has software_upgrade");
    let cmp = d
        .task("pre_post_comparison")
        .expect("catalog has pre_post_comparison");
    let passed = d.decision("passed");
    let rb = d.task("roll_back").expect("catalog has roll_back");
    let end_ok = d.end();
    let end_unhealthy = d.end();
    d.connect(start, hc)
        .connect(hc, healthy)
        .connect_if(healthy, up, true)
        .connect_if(healthy, end_unhealthy, false)
        .connect(up, cmp)
        .connect(cmp, passed)
        .connect_if(passed, end_ok, true)
        .connect_if(passed, rb, false)
        .connect(rb, end_ok);
    d.build()
}

/// Configuration-change variant of Fig. 4 (config snapshot semantics come
/// from `config_change`'s `previous_config` output feeding nothing — the
/// roll-back here is a software roll-back is not applicable, so failure
/// simply ends the workflow with `passed = false`).
pub fn config_change_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "config_change");
    d.input("node", ParamType::String);
    d.input("config", ParamType::Map);
    d.output("passed", ParamType::Bool);
    let start = d.start();
    let hc = d.task("health_check").expect("catalog has health_check");
    let healthy = d.decision("healthy");
    let cc = d.task("config_change").expect("catalog has config_change");
    let cmp = d
        .task("pre_post_comparison")
        .expect("catalog has pre_post_comparison");
    let passed = d.decision("passed");
    let end_ok = d.end();
    let end_fail = d.end();
    d.connect(start, hc)
        .connect(hc, healthy)
        .connect_if(healthy, cc, true)
        .connect_if(healthy, end_fail, false)
        .connect(cc, cmp)
        .connect(cmp, passed)
        .connect_if(passed, end_ok, true)
        .connect_if(passed, end_fail, false);
    d.build()
}

/// First vCE workflow (§5.1): software download and installation — the
/// time-consuming, non-disruptive step, run across all vCE routers first.
pub fn vce_download_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "vce_download_install");
    d.input("node", ParamType::String);
    d.input("software_version", ParamType::String);
    d.output("upgraded", ParamType::Bool);
    let start = d.start();
    let hc = d.task("health_check").expect("catalog has health_check");
    let healthy = d.decision("healthy");
    let up = d
        .task("software_upgrade")
        .expect("catalog has software_upgrade");
    let end_ok = d.end();
    let end_skip = d.end();
    d.connect(start, hc)
        .connect(hc, healthy)
        .connect_if(healthy, up, true)
        .connect_if(healthy, end_skip, false)
        .connect(up, end_ok);
    d.build()
}

/// Second vCE workflow (§5.1): health check, traffic redirect, reboot
/// (modeled by `traffic_restore` after verification) and post checks to
/// validate vCE and service availability, with roll-back on failure.
pub fn vce_activate_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "vce_activate_verify");
    d.input("node", ParamType::String);
    d.input("software_version", ParamType::String);
    d.input("previous_version", ParamType::String);
    d.output("passed", ParamType::Bool);
    let start = d.start();
    let hc = d.task("health_check").expect("catalog has health_check");
    let healthy = d.decision("healthy");
    let redirect = d
        .task("traffic_redirect")
        .expect("catalog has traffic_redirect");
    let cmp = d
        .task("pre_post_comparison")
        .expect("catalog has pre_post_comparison");
    let passed = d.decision("passed");
    let restore = d
        .task("traffic_restore")
        .expect("catalog has traffic_restore");
    let rb = d.task("roll_back").expect("catalog has roll_back");
    let end_ok = d.end();
    let end_unhealthy = d.end();
    d.connect(start, hc)
        .connect(hc, healthy)
        .connect_if(healthy, redirect, true)
        .connect_if(healthy, end_unhealthy, false)
        .connect(redirect, cmp)
        .connect(cmp, passed)
        .connect_if(passed, restore, true)
        .connect_if(passed, rb, false)
        .connect(rb, restore)
        .connect(restore, end_ok);
    d.build()
}

/// SDWAN gateway/portal upgrade (§5.1): "pre-check, software upgrade with
/// reboot and post-check", one workflow for both network functions.
pub fn sdwan_upgrade_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "sdwan_upgrade");
    d.input("node", ParamType::String);
    d.input("software_version", ParamType::String);
    d.output("passed", ParamType::Bool);
    let start = d.start();
    let pre = d.task("health_check").expect("catalog has health_check");
    let healthy = d.decision("healthy");
    let up = d
        .task("software_upgrade")
        .expect("catalog has software_upgrade");
    let post = d
        .task("pre_post_comparison")
        .expect("catalog has pre_post_comparison");
    let passed = d.decision("passed");
    let rb = d.task("roll_back").expect("catalog has roll_back");
    let end_ok = d.end();
    let end_skip = d.end();
    d.connect(start, pre)
        .connect(pre, healthy)
        .connect_if(healthy, up, true)
        .connect_if(healthy, end_skip, false)
        .connect(up, post)
        .connect(post, passed)
        .connect_if(passed, end_ok, true)
        .connect_if(passed, rb, false)
        .connect(rb, end_ok);
    d.build()
}

/// The NF-agnostic schedule-planning workflow of §4.2: detect conflicts,
/// extract topology and inventory, translate the intent into a model, and
/// run the optimization solver — one workflow reused across every network
/// function and constraint composition.
pub fn schedule_planning_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "schedule_planning");
    d.input("nodes", ParamType::List);
    d.input("intent", ParamType::Map);
    d.output("schedule", ParamType::Map);
    d.output("makespan", ParamType::Int);
    let start = d.start();
    let conflicts = d
        .task("detect_conflicts")
        .expect("catalog has detect_conflicts");
    let topo = d
        .task("extract_topology")
        .expect("catalog has extract_topology");
    let inv = d
        .task("extract_inventory")
        .expect("catalog has extract_inventory");
    let translate = d
        .task("model_translation")
        .expect("catalog has model_translation");
    let solve = d
        .task("optimization_solver")
        .expect("catalog has optimization_solver");
    let end = d.end();
    d.connect(start, conflicts)
        .connect(conflicts, topo)
        .connect(topo, inv)
        .connect(inv, translate)
        .connect(translate, solve)
        .connect(solve, end);
    d.build()
}

/// The NF-agnostic impact-verification workflow of §4.3: scope the change,
/// extract KPI/topology/inventory data, aggregate across location
/// attributes, and run the statistical impact detection.
pub fn impact_verification_workflow(catalog: &Catalog) -> Workflow {
    let mut d = Designer::new(catalog, "impact_verification");
    d.input("tickets", ParamType::List);
    d.input("kpi_names", ParamType::List);
    d.output("impacts", ParamType::List);
    d.output("verdict", ParamType::String);
    let start = d.start();
    let scope = d.task("change_scope").expect("catalog has change_scope");
    let kpi = d.task("extract_kpi").expect("catalog has extract_kpi");
    let topo = d
        .task("extract_topology_verify")
        .expect("catalog has extract_topology_verify");
    let inv = d
        .task("extract_inventory_verify")
        .expect("catalog has extract_inventory_verify");
    let agg = d.task("aggregate_kpi").expect("catalog has aggregate_kpi");
    let detect = d
        .task("impact_detection")
        .expect("catalog has impact_detection");
    let end = d.end();
    d.connect(start, scope)
        .connect(scope, kpi)
        .connect(kpi, topo)
        .connect(topo, inv)
        .connect(inv, agg)
        .connect(agg, detect)
        .connect(detect, end);
    d.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use cornet_catalog::builtin_catalog;

    #[test]
    fn all_builtin_workflows_validate() {
        let cat = builtin_catalog();
        for (name, wf) in [
            ("fig4", software_upgrade_workflow(&cat)),
            ("config", config_change_workflow(&cat)),
            ("vce1", vce_download_workflow(&cat)),
            ("vce2", vce_activate_workflow(&cat)),
            ("sdwan", sdwan_upgrade_workflow(&cat)),
            ("planning", schedule_planning_workflow(&cat)),
            ("verification", impact_verification_workflow(&cat)),
        ] {
            let rep = validate(&wf, &cat);
            assert!(rep.is_valid(), "{name}: {:?}", rep.errors);
        }
    }

    #[test]
    fn fig4_has_four_blocks_and_two_decisions() {
        let cat = builtin_catalog();
        let wf = software_upgrade_workflow(&cat);
        assert_eq!(wf.blocks().len(), 4);
        let decisions = wf
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, crate::graph::NodeKind::Decision { .. }))
            .count();
        assert_eq!(decisions, 2);
    }

    #[test]
    fn vce_pattern_is_two_distinct_workflows() {
        let cat = builtin_catalog();
        let w1 = vce_download_workflow(&cat);
        let w2 = vce_activate_workflow(&cat);
        assert_ne!(w1.name, w2.name);
        assert!(w1.blocks().contains(&"software_upgrade"));
        assert!(
            !w2.blocks().contains(&"software_upgrade"),
            "activation pass does not install"
        );
        assert!(w2.blocks().contains(&"traffic_redirect"));
    }
}
