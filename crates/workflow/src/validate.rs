//! Workflow verification before deployment (§3.2).
//!
//! "We propose a verification step where we ensure that there are no zombie
//! building blocks (i.e., no incoming or outgoing edge to another building
//! block or decision block or start/end)." Beyond the paper's zombie check
//! we validate structural sanity (one start, ≥1 end, reachability, decision
//! branch completeness) and *parameter flow*: every task input must be
//! producible from the workflow inputs or an upstream block's outputs —
//! the "proper propagation of parameter values" challenge of §3.1.
//!
//! The checks are implemented as `cornet-analysis` passes emitting
//! [`Diagnostic`]s with stable codes (`CN01xx` structural, `CN02xx`
//! dataflow); [`analyze`] returns the full [`Report`], while [`validate`]
//! keeps the original string-based [`ValidationReport`] shape for existing
//! call sites. The dataflow analysis is path-sensitive: a *may* fixpoint
//! (union over paths) catches inputs that are never produced or arrive
//! with the wrong type, and a *must* fixpoint (intersection over in-edges)
//! catches inputs produced on only some decision branches, with a blame
//! search that names the uncovered branch.

use crate::graph::{NodeId, NodeKind, Workflow, WorkflowEdge};
use cornet_analysis::{Code, Diagnostic, Report, Severity, SourceRef};
use cornet_catalog::Catalog;
use cornet_types::{CornetError, ParamType, Result};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of validating one workflow (compatibility shape; the richer
/// [`Report`] from [`analyze`] carries codes, anchors and hints).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValidationReport {
    /// Hard errors; a workflow with any error cannot be deployed.
    pub errors: Vec<String>,
    /// Non-fatal observations (e.g. an output never produced).
    pub warnings: Vec<String>,
}

impl ValidationReport {
    /// True when the workflow may be deployed.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }

    /// Project an analysis [`Report`] onto the legacy string shape:
    /// error-severity diagnostics become `errors`, everything else
    /// becomes `warnings`.
    pub fn from_report(report: &Report) -> Self {
        ValidationReport {
            errors: report
                .with_severity(Severity::Error)
                .map(|d| d.message.clone())
                .collect(),
            warnings: report
                .iter()
                .filter(|d| d.severity != Severity::Error)
                .map(|d| d.message.clone())
                .collect(),
        }
    }
}

/// Validate a workflow against a catalog. Returns the report; use
/// [`require_valid`] for a hard pass/fail and [`analyze`] for the full
/// diagnostics with codes and anchors.
pub fn validate(wf: &Workflow, catalog: &Catalog) -> ValidationReport {
    ValidationReport::from_report(&analyze(wf, catalog))
}

/// Validate and convert a failing report into a [`CornetError`]. Only
/// error-severity diagnostics block; warnings pass.
pub fn require_valid(wf: &Workflow, catalog: &Catalog) -> Result<()> {
    let rep = validate(wf, catalog);
    if rep.is_valid() {
        Ok(())
    } else {
        Err(CornetError::InvalidWorkflow(rep.errors.join("; ")))
    }
}

/// Run every workflow analysis pass and return the combined, sorted
/// [`Report`]: structural checks (`CN01xx`), path-sensitive parameter
/// dataflow (`CN02xx`), backout coverage, and the recursively analyzed
/// backout subgraph (messages prefixed `backout: `).
pub fn analyze(wf: &Workflow, catalog: &Catalog) -> Report {
    let mut report = Report::new();

    // Referential integrity first: every edge endpoint must name a real
    // node, or the later passes would index out of bounds.
    if !check_edge_endpoints(wf, &mut report) {
        report.sort();
        return report;
    }

    analyze_structure(wf, catalog, &mut report);
    if !report.has_errors() {
        analyze_dataflow(wf, catalog, &mut report);
    }
    analyze_backout_coverage(wf, catalog, &mut report);

    // Backout subgraph: analyzed recursively. The backout executes over
    // the failing instance's *current* global state, so its available
    // inputs are the parent's inputs plus anything any parent block can
    // have produced before the failure.
    if let Some(backout) = &wf.backout {
        let mut sub = (**backout).clone();
        let mut inputs: BTreeMap<String, ParamType> =
            sub.inputs.iter().map(|p| (p.name.clone(), p.ty)).collect();
        for p in &wf.inputs {
            inputs.entry(p.name.clone()).or_insert(p.ty);
        }
        for block in wf.blocks() {
            if let Some(spec) = catalog.get(block) {
                for out in &spec.outputs {
                    inputs.entry(out.name.clone()).or_insert(out.ty);
                }
            }
        }
        sub.inputs = inputs
            .into_iter()
            .map(|(name, ty)| crate::graph::WorkflowParam { name, ty })
            .collect();
        for mut d in analyze(&sub, catalog).diagnostics {
            // A backout needs no backout of its own.
            if d.code == Code("CN0209") {
                continue;
            }
            d.message = format!("backout: {}", d.message);
            report.push(d);
        }
    }

    report.sort();
    report
}

fn node_ref(wf: &Workflow, label: &str) -> SourceRef {
    SourceRef::Node {
        workflow: wf.name.clone(),
        node: label.to_owned(),
    }
}

/// `CN0101`: edges referencing node indices outside the graph. Returns
/// `false` when the graph is too broken for further analysis.
fn check_edge_endpoints(wf: &Workflow, report: &mut Report) -> bool {
    let mut ok = true;
    for e in &wf.edges {
        for id in [e.from, e.to] {
            if id.index() >= wf.nodes.len() {
                ok = false;
                report.push(
                    Diagnostic::error(
                        Code("CN0101"),
                        SourceRef::Edge {
                            workflow: wf.name.clone(),
                            from: e.from.0,
                            to: e.to.0,
                        },
                        format!("edge references unknown node {}", id.0),
                    )
                    .with_hint("remove the edge or add the missing node"),
                );
            }
        }
    }
    ok
}

/// Structural sanity (`CN0102`–`CN0110`): start/end cardinality, zombie
/// blocks, decision branch completeness, guard placement, reachability,
/// and catalog membership.
fn analyze_structure(wf: &Workflow, catalog: &Catalog, report: &mut Report) {
    let wf_ref = SourceRef::Workflow {
        workflow: wf.name.clone(),
    };
    let starts = wf
        .nodes
        .iter()
        .filter(|n| n.kind == NodeKind::Start)
        .count();
    if starts != 1 {
        report.push(Diagnostic::error(
            Code("CN0102"),
            wf_ref.clone(),
            format!("workflow must have exactly one start node, found {starts}"),
        ));
    }
    let ends = wf.nodes.iter().filter(|n| n.kind == NodeKind::End).count();
    if ends == 0 {
        report.push(Diagnostic::error(
            Code("CN0103"),
            wf_ref,
            "workflow has no end node",
        ));
    }

    // Zombie detection: every task/decision node needs an incoming and an
    // outgoing edge.
    for n in &wf.nodes {
        let ins = wf.in_edges(n.id).count();
        let outs = wf.out_edges(n.id).count();
        match n.kind {
            NodeKind::Start => {
                if outs == 0 {
                    report.push(Diagnostic::error(
                        Code("CN0105"),
                        node_ref(wf, &n.label),
                        "start node has no outgoing edge",
                    ));
                }
                if ins > 0 {
                    report.push(Diagnostic::error(
                        Code("CN0105"),
                        node_ref(wf, &n.label),
                        "start node must not have incoming edges",
                    ));
                }
            }
            NodeKind::End => {
                if ins == 0 {
                    report.push(Diagnostic::error(
                        Code("CN0106"),
                        node_ref(wf, &n.label),
                        format!("end node '{}' is unreachable (zombie)", n.label),
                    ));
                }
                if outs > 0 {
                    report.push(Diagnostic::error(
                        Code("CN0106"),
                        node_ref(wf, &n.label),
                        format!("end node '{}' has outgoing edges", n.label),
                    ));
                }
            }
            NodeKind::Task { .. } | NodeKind::Decision { .. } => {
                if ins == 0 || outs == 0 {
                    report.push(
                        Diagnostic::error(
                            Code("CN0104"),
                            node_ref(wf, &n.label),
                            format!(
                                "zombie block '{}': incoming={ins}, outgoing={outs}",
                                n.label
                            ),
                        )
                        .with_hint("connect the node into the flow or delete it"),
                    );
                }
            }
        }
    }

    // Decision gateways need both branches wired.
    for n in &wf.nodes {
        if let NodeKind::Decision { variable } = &n.kind {
            let guards: Vec<Option<bool>> = wf.out_edges(n.id).map(|e| e.guard).collect();
            if !guards.contains(&Some(true)) || !guards.contains(&Some(false)) {
                report.push(Diagnostic::error(
                    Code("CN0107"),
                    node_ref(wf, &n.label),
                    format!(
                        "decision '{}' on variable '{variable}' must have both a yes and a no branch",
                        n.label
                    ),
                ));
            }
        }
    }

    // Edges from decisions must be guarded; others must not be.
    for e in &wf.edges {
        let is_decision = matches!(wf.node(e.from).kind, NodeKind::Decision { .. });
        if is_decision && e.guard.is_none() {
            report.push(Diagnostic::error(
                Code("CN0108"),
                node_ref(wf, &wf.node(e.from).label),
                format!("unguarded edge out of decision '{}'", wf.node(e.from).label),
            ));
        }
        if !is_decision && e.guard.is_some() {
            report.push(Diagnostic::error(
                Code("CN0108"),
                node_ref(wf, &wf.node(e.from).label),
                format!(
                    "guarded edge out of non-decision '{}'",
                    wf.node(e.from).label
                ),
            ));
        }
    }

    // Reachability.
    if starts == 1 {
        let reach = wf.reachable();
        for n in &wf.nodes {
            if !reach[n.id.index()] {
                report.push(Diagnostic::error(
                    Code("CN0109"),
                    node_ref(wf, &n.label),
                    format!("node '{}' is unreachable from start", n.label),
                ));
            }
        }
    }

    // Unknown blocks.
    for block in wf.blocks() {
        if catalog.get(block).is_none() {
            report.push(Diagnostic::error(
                Code("CN0110"),
                SourceRef::Block {
                    block: block.to_owned(),
                },
                format!("unknown building block '{block}'"),
            ));
        }
    }
}

/// *May*-availability: for each node, the set of types each parameter can
/// arrive with on *some* path from start (union over paths; a parameter
/// mapped to more than one type merges conflicting branch states).
fn may_states(
    wf: &Workflow,
    catalog: &Catalog,
    start: NodeId,
) -> Vec<BTreeMap<String, BTreeSet<ParamType>>> {
    let n = wf.nodes.len();
    let mut avail: Vec<BTreeMap<String, BTreeSet<ParamType>>> = vec![BTreeMap::new(); n];
    for p in &wf.inputs {
        avail[start.index()]
            .entry(p.name.clone())
            .or_default()
            .insert(p.ty);
    }
    let mut queue: VecDeque<_> = VecDeque::from([start]);
    let mut visited_edges = BTreeSet::new();
    while let Some(cur) = queue.pop_front() {
        // State after executing this node.
        let mut after = avail[cur.index()].clone();
        if let NodeKind::Task { block } = &wf.node(cur).kind {
            if let Some(spec) = catalog.get(block) {
                for out in &spec.outputs {
                    after.entry(out.name.clone()).or_default().insert(out.ty);
                }
            }
        }
        for e in wf.out_edges(cur) {
            let changed = {
                let target = &mut avail[e.to.index()];
                let mut grew = false;
                for (k, tys) in &after {
                    let slot = target.entry(k.clone()).or_default();
                    for ty in tys {
                        grew |= slot.insert(*ty);
                    }
                }
                grew
            };
            if changed || visited_edges.insert((e.from, e.to)) {
                queue.push_back(e.to);
            }
        }
    }
    avail
}

/// *Must*-availability: for each node, the set of parameter names
/// guaranteed present on *every* path from start (intersection over
/// in-edges; `None` = not yet reached = ⊤). Takes the edge list explicitly
/// so the blame search can re-run it with a decision branch forced.
fn must_states(
    wf: &Workflow,
    catalog: &Catalog,
    edges: &[WorkflowEdge],
    start: NodeId,
) -> Vec<Option<BTreeSet<String>>> {
    let n = wf.nodes.len();
    let mut must: Vec<Option<BTreeSet<String>>> = vec![None; n];
    must[start.index()] = Some(wf.inputs.iter().map(|p| p.name.clone()).collect());
    let mut queue: VecDeque<_> = VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        let Some(mut after) = must[cur.index()].clone() else {
            continue;
        };
        if let NodeKind::Task { block } = &wf.node(cur).kind {
            if let Some(spec) = catalog.get(block) {
                for out in &spec.outputs {
                    after.insert(out.name.clone());
                }
            }
        }
        for e in edges.iter().filter(|e| e.from == cur) {
            let slot = &mut must[e.to.index()];
            let changed = match slot {
                None => {
                    *slot = Some(after.clone());
                    true
                }
                Some(t) => {
                    let before = t.len();
                    t.retain(|k| after.contains(k));
                    t.len() != before
                }
            };
            if changed {
                queue.push_back(e.to);
            }
        }
    }
    must
}

/// Blame search for a some-paths-only parameter: re-run the must analysis
/// with each decision branch forced in turn; the first decision whose
/// forced branch makes `param` guaranteed at `target` names the *other*
/// branch as the uncovered path.
fn blame_uncovered_branch(
    wf: &Workflow,
    catalog: &Catalog,
    start: NodeId,
    target: NodeId,
    param: &str,
) -> Option<String> {
    for n in &wf.nodes {
        if !matches!(n.kind, NodeKind::Decision { .. }) {
            continue;
        }
        for kept in [true, false] {
            let edges: Vec<WorkflowEdge> = wf
                .edges
                .iter()
                .filter(|e| !(e.from == n.id && e.guard == Some(!kept)))
                .copied()
                .collect();
            let must = must_states(wf, catalog, &edges, start);
            if must[target.index()]
                .as_ref()
                .is_some_and(|s| s.contains(param))
            {
                let (covered, uncovered) = if kept { ("yes", "no") } else { ("no", "yes") };
                return Some(format!(
                    "it is guaranteed only when decision '{}' takes its {covered} branch; \
                     the {uncovered} branch reaches the consumer without it",
                    n.label
                ));
            }
        }
    }
    None
}

/// Parameter dataflow (`CN0201`–`CN0207`): walk the graph from start; at
/// each task, every input parameter must be available (correct name and
/// type) in the accumulated global state — matching the paper's
/// shared-global-state semantics. Inputs available on only *some* paths
/// (may but not must) warn with the uncovered branch named; inputs whose
/// type differs across branches error.
fn analyze_dataflow(wf: &Workflow, catalog: &Catalog, report: &mut Report) {
    let Some(start) = wf.start() else { return };
    let may = may_states(wf, catalog, start);
    let must = must_states(wf, catalog, &wf.edges, start);
    let guaranteed =
        |id: NodeId, name: &str| must[id.index()].as_ref().is_some_and(|s| s.contains(name));
    let some_paths_warning = |code: &'static str, id: NodeId, anchor: SourceRef, head: String| {
        let blame = blame_uncovered_branch(wf, catalog, start, id, &head_param(&anchor))
            .unwrap_or_else(|| "it is not produced on every path from start".into());
        Diagnostic::new(
            Code(code),
            Severity::Warning,
            anchor,
            format!("{head} — {blame}"),
        )
        .with_hint("produce the parameter on every branch, or guard the consumer")
    };

    for node in &wf.nodes {
        match &node.kind {
            NodeKind::Task { block } => {
                let Some(spec) = catalog.get(block) else {
                    continue;
                };
                for input in &spec.inputs {
                    let anchor = SourceRef::Param {
                        scope: node.label.clone(),
                        param: input.name.clone(),
                    };
                    match may[node.id.index()].get(&input.name) {
                        None => report.push(Diagnostic::error(
                            Code("CN0201"),
                            anchor,
                            format!(
                                "block '{}' input '{}' is never produced upstream",
                                node.label, input.name
                            ),
                        )),
                        Some(types) if types.len() > 1 => {
                            let tys: Vec<String> = types.iter().map(|t| format!("{t:?}")).collect();
                            report.push(
                                Diagnostic::error(
                                    Code("CN0207"),
                                    anchor,
                                    format!(
                                        "block '{}' input '{}' arrives with conflicting types \
                                         ({}) depending on the branch taken",
                                        node.label,
                                        input.name,
                                        tys.join(" vs ")
                                    ),
                                )
                                .with_hint("make every branch produce the same type"),
                            );
                        }
                        Some(types) => {
                            let ty = *types.iter().next().expect("non-empty type set");
                            if ty != input.ty {
                                report.push(Diagnostic::error(
                                    Code("CN0202"),
                                    anchor,
                                    format!(
                                        "block '{}' input '{}' has type {:?} upstream but \
                                         expects {:?}",
                                        node.label, input.name, ty, input.ty
                                    ),
                                ));
                            } else if !guaranteed(node.id, &input.name) {
                                let head = format!(
                                    "block '{}' input '{}' is produced on only some paths",
                                    node.label, input.name
                                );
                                report.push(some_paths_warning("CN0206", node.id, anchor, head));
                            }
                        }
                    }
                }
            }
            NodeKind::Decision { variable } => {
                let anchor = SourceRef::Param {
                    scope: node.label.clone(),
                    param: variable.clone(),
                };
                match may[node.id.index()].get(variable) {
                    None => report.push(Diagnostic::error(
                        Code("CN0203"),
                        anchor,
                        format!(
                            "decision '{}' reads variable '{variable}' that is never produced",
                            node.label
                        ),
                    )),
                    Some(types) => {
                        if let Some(bad) = types.iter().find(|t| **t != ParamType::Bool) {
                            report.push(Diagnostic::error(
                                Code("CN0204"),
                                anchor,
                                format!(
                                    "decision '{}' variable '{variable}' must be bool, found {bad:?}",
                                    node.label
                                ),
                            ));
                        } else if !guaranteed(node.id, variable) {
                            let head = format!(
                                "decision '{}' variable '{variable}' is produced on only some paths",
                                node.label
                            );
                            report.push(some_paths_warning("CN0206", node.id, anchor, head));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Declared workflow outputs should be producible somewhere.
    let mut all_produced: BTreeSet<&str> = wf.inputs.iter().map(|p| p.name.as_str()).collect();
    for block in wf.blocks() {
        if let Some(spec) = catalog.get(block) {
            all_produced.extend(spec.outputs.iter().map(|p| p.name.as_str()));
        }
    }
    for out in &wf.outputs {
        if !all_produced.contains(out.name.as_str()) {
            report.push(Diagnostic::warning(
                Code("CN0205"),
                SourceRef::Param {
                    scope: wf.name.clone(),
                    param: out.name.clone(),
                },
                format!(
                    "declared workflow output '{}' is never produced by any block",
                    out.name
                ),
            ));
        }
    }
}

fn head_param(anchor: &SourceRef) -> String {
    match anchor {
        SourceRef::Param { param, .. } => param.clone(),
        _ => String::new(),
    }
}

/// Backout coverage (`CN0208`/`CN0209`): mutating catalog blocks reachable
/// from the main flow should be covered by a backout flow, and the backout
/// must not depend on state only the (possibly failed) mutating blocks
/// produce.
fn analyze_backout_coverage(wf: &Workflow, catalog: &Catalog, report: &mut Report) {
    let reach = wf.reachable();
    let mutating: Vec<(&str, &str)> = wf
        .nodes
        .iter()
        .filter(|n| reach.get(n.id.index()).copied().unwrap_or(false))
        .filter_map(|n| match &n.kind {
            NodeKind::Task { block } if catalog.get(block).is_some_and(|s| s.mutates) => {
                Some((n.label.as_str(), block.as_str()))
            }
            _ => None,
        })
        .collect();

    let Some(backout) = &wf.backout else {
        for (label, block) in mutating {
            report.push(
                Diagnostic::warning(
                    Code("CN0209"),
                    node_ref(wf, label),
                    format!(
                        "mutating block '{block}' is reachable but the workflow declares no \
                         backout flow"
                    ),
                )
                .with_hint("attach a backout workflow with set_backout"),
            );
        }
        return;
    };

    // The state a backout can rely on unconditionally: its own declared
    // inputs, the parent workflow's inputs, and anything its *own* blocks
    // produce. Everything else it consumes must come from parent block
    // outputs — and if every producer is mutating, the backout may run
    // after the very block that failed before producing it.
    let mut unconditional: BTreeSet<&str> = backout
        .inputs
        .iter()
        .chain(wf.inputs.iter())
        .map(|p| p.name.as_str())
        .collect();
    for block in backout.blocks() {
        if let Some(spec) = catalog.get(block) {
            unconditional.extend(spec.outputs.iter().map(|p| p.name.as_str()));
        }
    }
    let mut producers: BTreeMap<&str, Vec<(&str, bool)>> = BTreeMap::new();
    for block in wf.blocks() {
        if let Some(spec) = catalog.get(block) {
            for out in &spec.outputs {
                producers
                    .entry(out.name.as_str())
                    .or_default()
                    .push((block, spec.mutates));
            }
        }
    }
    let mut warned = BTreeSet::new();
    for node in &backout.nodes {
        let NodeKind::Task { block } = &node.kind else {
            continue;
        };
        let Some(spec) = catalog.get(block) else {
            continue;
        };
        for input in &spec.inputs {
            if unconditional.contains(input.name.as_str()) {
                continue;
            }
            let Some(prods) = producers.get(input.name.as_str()) else {
                continue; // never-produced → CN0201 in the backout's own analysis
            };
            if prods.iter().all(|(_, mutates)| *mutates) && warned.insert(input.name.clone()) {
                let (producer, _) = prods[0];
                report.push(
                    Diagnostic::warning(
                        Code("CN0208"),
                        SourceRef::Param {
                            scope: backout.name.clone(),
                            param: input.name.clone(),
                        },
                        format!(
                            "backout consumes '{}' which only the mutating block '{producer}' \
                             produces — if that block fails before producing it, the backout \
                             cannot run",
                            input.name
                        ),
                    )
                    .with_hint("capture the value before mutating, or pass it as a workflow input"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designer::Designer;
    use cornet_catalog::builtin_catalog;
    use cornet_catalog::{BlockSpec, Catalog, Phase};
    use cornet_types::ParamType;

    fn upgrade_workflow() -> Workflow {
        // Fig. 4: start → health_check → healthy? →(yes) software_upgrade
        // → pre_post_comparison → passed? →(no) roll_back → end.
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "fig4");
        d.input("node", ParamType::String);
        d.input("software_version", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let dec1 = d.decision("healthy");
        let up = d.task("software_upgrade").unwrap();
        let cmp = d.task("pre_post_comparison").unwrap();
        let dec2 = d.decision("passed");
        let rb = d.task("roll_back").unwrap();
        let end_ok = d.end();
        let end_fail = d.end();
        d.connect(start, hc)
            .connect(hc, dec1)
            .connect_if(dec1, up, true)
            .connect_if(dec1, end_fail, false)
            .connect(up, cmp)
            .connect(cmp, dec2)
            .connect_if(dec2, end_ok, true)
            .connect_if(dec2, rb, false)
            .connect(rb, end_ok);
        d.build()
    }

    /// Minimal catalog for branch-sensitive tests: a probe that yields a
    /// `ready` flag, two branch blocks producing `result` (types vary per
    /// test), and a consumer of `result`.
    fn diamond_catalog(a_ty: ParamType, b_ty: ParamType) -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            BlockSpec::new("probe", Phase::DesignOrchestration, "probe", true)
                .input("node", ParamType::String)
                .output("ready", ParamType::Bool),
        );
        cat.register(
            BlockSpec::new("branch_a", Phase::DesignOrchestration, "a", true)
                .input("node", ParamType::String)
                .output("result", a_ty),
        );
        cat.register(
            BlockSpec::new("branch_b", Phase::DesignOrchestration, "b", true)
                .input("node", ParamType::String)
                .output("result", b_ty),
        );
        cat.register(
            BlockSpec::new("consume", Phase::DesignOrchestration, "c", true)
                .input("node", ParamType::String)
                .input("result", ParamType::Int),
        );
        cat
    }

    fn diamond_workflow(cat: &Catalog) -> Workflow {
        // start → probe → ready? →(yes) branch_a / (no) branch_b → consume → end
        let mut d = Designer::new(cat, "diamond");
        d.input("node", ParamType::String);
        let start = d.start();
        let probe = d.task("probe").unwrap();
        let dec = d.decision("ready");
        let a = d.task("branch_a").unwrap();
        let b = d.task("branch_b").unwrap();
        let c = d.task("consume").unwrap();
        let end = d.end();
        d.connect(start, probe)
            .connect(probe, dec)
            .connect_if(dec, a, true)
            .connect_if(dec, b, false)
            .connect(a, c)
            .connect(b, c)
            .connect(c, end);
        d.build()
    }

    #[test]
    fn fig4_workflow_is_valid() {
        let cat = builtin_catalog();
        let rep = validate(&upgrade_workflow(), &cat);
        assert!(rep.is_valid(), "errors: {:?}", rep.errors);
    }

    #[test]
    fn zombie_block_detected() {
        let cat = builtin_catalog();
        let mut wf = upgrade_workflow();
        // Add a task with no edges at all — the paper's zombie.
        wf.add_node(
            "zombie",
            NodeKind::Task {
                block: "traffic_redirect".into(),
            },
        );
        let rep = validate(&wf, &cat);
        assert!(!rep.is_valid());
        assert!(
            rep.errors.iter().any(|e| e.contains("zombie")),
            "{:?}",
            rep.errors
        );
        // Same finding through the analysis API, with its stable code.
        let report = analyze(&wf, &cat);
        assert!(report.iter().any(|d| d.code == Code("CN0104")));
    }

    #[test]
    fn dangling_edge_reported_not_panicking() {
        let cat = builtin_catalog();
        let mut wf = upgrade_workflow();
        wf.add_edge(crate::graph::NodeId(0), crate::graph::NodeId(999), None);
        let rep = validate(&wf, &cat);
        assert!(!rep.is_valid());
        assert!(
            rep.errors.iter().any(|e| e.contains("unknown node")),
            "{:?}",
            rep.errors
        );
        // The rendered diagnostic is stable text, no Debug noise.
        let report = analyze(&wf, &cat);
        let d = report.iter().find(|d| d.code == Code("CN0101")).unwrap();
        assert_eq!(d.message, "edge references unknown node 999");
        assert_eq!(
            d.source,
            SourceRef::Edge {
                workflow: "fig4".into(),
                from: 0,
                to: 999
            }
        );
        assert!(!d.render().contains("NodeId"), "{}", d.render());
    }

    #[test]
    fn missing_no_branch_detected() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "halfdec");
        d.input("node", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let dec = d.decision("healthy");
        let end = d.end();
        d.connect(start, hc)
            .connect(hc, dec)
            .connect_if(dec, end, true);
        let wf = d.build();
        let rep = validate(&wf, &cat);
        assert!(
            rep.errors.iter().any(|e| e.contains("yes and a no")),
            "{:?}",
            rep.errors
        );
        assert!(analyze(&wf, &cat).iter().any(|d| d.code == Code("CN0107")));
    }

    #[test]
    fn missing_parameter_detected() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "noparam");
        // software_upgrade needs node + software_version; provide neither.
        let start = d.start();
        let up = d.task("software_upgrade").unwrap();
        let end = d.end();
        d.connect(start, up).connect(up, end);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors
                .iter()
                .any(|e| e.contains("never produced upstream")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn rollback_before_upgrade_is_rejected() {
        // roll_back consumes previous_version, which only software_upgrade
        // produces — ordering matters.
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "misorder");
        d.input("node", ParamType::String);
        d.input("software_version", ParamType::String);
        let start = d.start();
        let rb = d.task("roll_back").unwrap();
        let up = d.task("software_upgrade").unwrap();
        let end = d.end();
        d.connect(start, rb).connect(rb, up).connect(up, end);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors.iter().any(|e| e.contains("previous_version")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn decision_on_non_bool_rejected() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "badvar");
        d.input("node", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let dec = d.decision("node"); // node is a String
        let e1 = d.end();
        let e2 = d.end();
        d.connect(start, hc).connect(hc, dec);
        d.connect_if(dec, e1, true).connect_if(dec, e2, false);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors.iter().any(|e| e.contains("must be bool")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn undeclared_output_warns() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "out");
        d.input("node", ParamType::String);
        d.output("mystery", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let end = d.end();
        d.connect(start, hc).connect(hc, end);
        let rep = validate(&d.build(), &cat);
        assert!(rep.is_valid());
        assert!(rep.warnings.iter().any(|w| w.contains("mystery")));
    }

    #[test]
    fn diamond_with_conflicting_branch_types_is_an_error() {
        // branch_a yields result:Int, branch_b yields result:Map — the
        // merge at 'consume' silently depended on traversal order before
        // CN0207 made it explicit.
        let cat = diamond_catalog(ParamType::Int, ParamType::Map);
        let report = analyze(&diamond_workflow(&cat), &cat);
        let d = report.iter().find(|d| d.code == Code("CN0207")).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("conflicting types"), "{}", d.message);

        // Corrected twin: both branches produce Int — clean.
        let cat = diamond_catalog(ParamType::Int, ParamType::Int);
        let report = analyze(&diamond_workflow(&cat), &cat);
        assert!(!report.has_errors(), "{}", report.render_text());
        assert!(!report.iter().any(|d| d.code == Code("CN0206")));
    }

    #[test]
    fn some_paths_only_parameter_warns_and_names_the_branch() {
        // Only the yes branch runs branch_a (the sole producer of
        // 'result'); the no branch jumps straight to the consumer.
        let cat = diamond_catalog(ParamType::Int, ParamType::Int);
        let mut d = Designer::new(&cat, "skippy");
        d.input("node", ParamType::String);
        let start = d.start();
        let probe = d.task("probe").unwrap();
        let dec = d.decision("ready");
        let a = d.task("branch_a").unwrap();
        let c = d.task("consume").unwrap();
        let end = d.end();
        d.connect(start, probe)
            .connect(probe, dec)
            .connect_if(dec, a, true)
            .connect_if(dec, c, false)
            .connect(a, c)
            .connect(c, end);
        let wf = d.build();
        let report = analyze(&wf, &cat);
        let d = report.iter().find(|d| d.code == Code("CN0206")).unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(
            d.message.contains("yes branch") && d.message.contains("no branch"),
            "{}",
            d.message
        );
        // The legacy projection reports it as a warning, not an error.
        let rep = ValidationReport::from_report(&report);
        assert!(rep.is_valid(), "{:?}", rep.errors);
        assert!(rep.warnings.iter().any(|w| w.contains("only some paths")));

        // Corrected twin: the diamond covers both branches — no CN0206.
        let report = analyze(&diamond_workflow(&cat), &cat);
        assert!(!report.iter().any(|d| d.code == Code("CN0206")));
    }

    #[test]
    fn mutating_block_without_backout_warns() {
        let cat = builtin_catalog();
        let wf = upgrade_workflow(); // software_upgrade + roll_back, no backout
        let report = analyze(&wf, &cat);
        let hits: Vec<_> = report.iter().filter(|d| d.code == Code("CN0209")).collect();
        assert_eq!(hits.len(), 2, "{}", report.render_text());
        assert!(hits.iter().all(|d| d.severity == Severity::Warning));

        // Corrected twin: attaching a backout silences CN0209.
        let mut covered = upgrade_workflow();
        let mut d = Designer::new(&cat, "backout");
        let s = d.start();
        let rb = d.task("roll_back").unwrap();
        let e = d.end();
        d.connect(s, rb).connect(rb, e);
        covered.set_backout(d.build());
        let report = analyze(&covered, &cat);
        assert!(!report.iter().any(|d| d.code == Code("CN0209")));
        // …but the backout leans on previous_version, which only the
        // mutating software_upgrade produces: CN0208.
        assert!(
            report.iter().any(|d| d.code == Code("CN0208")
                && d.severity == Severity::Warning
                && d.message.contains("previous_version")),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn backout_errors_are_prefixed_and_inherit_parent_outputs() {
        let cat = builtin_catalog();

        // Valid backout: roll_back consumes previous_version, which the
        // parent's software_upgrade block produces — the backout inherits it.
        let mut wf = upgrade_workflow();
        let mut d = Designer::new(&cat, "backout");
        let s = d.start();
        let rb = d.task("roll_back").unwrap();
        let e = d.end();
        d.connect(s, rb).connect(rb, e);
        wf.set_backout(d.build());
        let rep = validate(&wf, &cat);
        assert!(rep.is_valid(), "errors: {:?}", rep.errors);

        // Invalid backout (zombie task) surfaces prefixed errors.
        let mut bad = Workflow::new("bad-backout");
        bad.add_node(
            "zombie",
            NodeKind::Task {
                block: "roll_back".into(),
            },
        );
        let mut wf = upgrade_workflow();
        wf.set_backout(bad);
        let rep = validate(&wf, &cat);
        assert!(!rep.is_valid());
        assert!(
            rep.errors.iter().any(|e| e.starts_with("backout: ")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn backout_with_zombie_node_carries_the_structural_code() {
        // The backout flow itself contains a zombie: recursive analysis
        // keeps the CN0104 code and prefixes the message.
        let cat = builtin_catalog();
        let mut backout = Workflow::new("backout");
        let s = backout.add_node("start", NodeKind::Start);
        let rb = backout.add_node(
            "roll_back",
            NodeKind::Task {
                block: "roll_back".into(),
            },
        );
        let e = backout.add_node("end", NodeKind::End);
        backout.add_edge(s, rb, None);
        backout.add_edge(rb, e, None);
        backout.add_node(
            "stray",
            NodeKind::Task {
                block: "traffic_restore".into(),
            },
        );
        let mut wf = upgrade_workflow();
        wf.set_backout(backout);
        let report = analyze(&wf, &cat);
        let d = report
            .iter()
            .find(|d| d.code == Code("CN0104") && d.message.starts_with("backout: "))
            .expect("prefixed zombie diagnostic");
        assert!(d.message.contains("zombie"), "{}", d.message);
        assert!(!validate(&wf, &cat).is_valid());
    }

    #[test]
    fn require_valid_converts_to_error() {
        let cat = builtin_catalog();
        let wf = Workflow::new("empty");
        assert!(require_valid(&wf, &cat).is_err());
        assert!(require_valid(&upgrade_workflow(), &cat).is_ok());
    }
}
