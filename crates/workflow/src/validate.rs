//! Workflow verification before deployment (§3.2).
//!
//! "We propose a verification step where we ensure that there are no zombie
//! building blocks (i.e., no incoming or outgoing edge to another building
//! block or decision block or start/end)." Beyond the paper's zombie check
//! we validate structural sanity (one start, ≥1 end, reachability, decision
//! branch completeness) and *parameter flow*: every task input must be
//! producible from the workflow inputs or an upstream block's outputs —
//! the "proper propagation of parameter values" challenge of §3.1.

use crate::graph::{NodeKind, Workflow};
use cornet_catalog::Catalog;
use cornet_types::{CornetError, ParamType, Result};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Outcome of validating one workflow.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValidationReport {
    /// Hard errors; a workflow with any error cannot be deployed.
    pub errors: Vec<String>,
    /// Non-fatal observations (e.g. an output never produced).
    pub warnings: Vec<String>,
}

impl ValidationReport {
    /// True when the workflow may be deployed.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validate a workflow against a catalog. Returns the report; use
/// [`require_valid`] for a hard pass/fail.
pub fn validate(wf: &Workflow, catalog: &Catalog) -> ValidationReport {
    let mut rep = ValidationReport::default();

    // --- referential integrity: every edge endpoint must name a real
    //     node, or the later passes would index out of bounds.
    for e in &wf.edges {
        for id in [e.from, e.to] {
            if id.index() >= wf.nodes.len() {
                rep.errors
                    .push(format!("edge references unknown node {id:?}"));
            }
        }
    }
    if !rep.errors.is_empty() {
        return rep;
    }

    // --- structural checks ---
    let starts = wf
        .nodes
        .iter()
        .filter(|n| n.kind == NodeKind::Start)
        .count();
    if starts != 1 {
        rep.errors.push(format!(
            "workflow must have exactly one start node, found {starts}"
        ));
    }
    let ends = wf.nodes.iter().filter(|n| n.kind == NodeKind::End).count();
    if ends == 0 {
        rep.errors.push("workflow has no end node".into());
    }

    // Zombie detection: every task/decision node needs an incoming and an
    // outgoing edge.
    for n in &wf.nodes {
        let ins = wf.in_edges(n.id).count();
        let outs = wf.out_edges(n.id).count();
        match n.kind {
            NodeKind::Start => {
                if outs == 0 {
                    rep.errors.push("start node has no outgoing edge".into());
                }
                if ins > 0 {
                    rep.errors
                        .push("start node must not have incoming edges".into());
                }
            }
            NodeKind::End => {
                if ins == 0 {
                    rep.errors
                        .push(format!("end node '{}' is unreachable (zombie)", n.label));
                }
                if outs > 0 {
                    rep.errors
                        .push(format!("end node '{}' has outgoing edges", n.label));
                }
            }
            NodeKind::Task { .. } | NodeKind::Decision { .. } => {
                if ins == 0 || outs == 0 {
                    rep.errors.push(format!(
                        "zombie block '{}': incoming={ins}, outgoing={outs}",
                        n.label
                    ));
                }
            }
        }
    }

    // Decision gateways need both branches wired.
    for n in &wf.nodes {
        if let NodeKind::Decision { variable } = &n.kind {
            let mut guards: Vec<Option<bool>> = wf.out_edges(n.id).map(|e| e.guard).collect();
            guards.sort();
            if !guards.contains(&Some(true)) || !guards.contains(&Some(false)) {
                rep.errors
                    .push(format!(
                    "decision '{}' on variable '{variable}' must have both a yes and a no branch"
                , n.label));
            }
        }
    }

    // Edges from decisions must be guarded; others must not be.
    for e in &wf.edges {
        let is_decision = matches!(wf.node(e.from).kind, NodeKind::Decision { .. });
        if is_decision && e.guard.is_none() {
            rep.errors.push(format!(
                "unguarded edge out of decision '{}'",
                wf.node(e.from).label
            ));
        }
        if !is_decision && e.guard.is_some() {
            rep.errors.push(format!(
                "guarded edge out of non-decision '{}'",
                wf.node(e.from).label
            ));
        }
    }

    // Reachability.
    if starts == 1 {
        let reach = wf.reachable();
        for n in &wf.nodes {
            if !reach[n.id.index()] {
                rep.errors
                    .push(format!("node '{}' is unreachable from start", n.label));
            }
        }
    }

    // Unknown blocks.
    for block in wf.blocks() {
        if catalog.get(block).is_none() {
            rep.errors.push(format!("unknown building block '{block}'"));
        }
    }

    if rep.errors.is_empty() {
        check_parameter_flow(wf, catalog, &mut rep);
    }

    // Backout subgraph: validated recursively. The backout executes over
    // the failing instance's *current* global state, so its available
    // inputs are the parent's inputs plus anything any parent block can
    // have produced before the failure.
    if let Some(backout) = &wf.backout {
        let mut sub = (**backout).clone();
        let mut inputs: BTreeMap<String, ParamType> =
            sub.inputs.iter().map(|p| (p.name.clone(), p.ty)).collect();
        for p in &wf.inputs {
            inputs.entry(p.name.clone()).or_insert(p.ty);
        }
        for block in wf.blocks() {
            if let Some(spec) = catalog.get(block) {
                for out in &spec.outputs {
                    inputs.entry(out.name.clone()).or_insert(out.ty);
                }
            }
        }
        sub.inputs = inputs
            .into_iter()
            .map(|(name, ty)| crate::graph::WorkflowParam { name, ty })
            .collect();
        let sub_rep = validate(&sub, catalog);
        rep.errors
            .extend(sub_rep.errors.into_iter().map(|e| format!("backout: {e}")));
        rep.warnings.extend(
            sub_rep
                .warnings
                .into_iter()
                .map(|w| format!("backout: {w}")),
        );
    }
    rep
}

/// Validate and convert a failing report into a [`CornetError`].
pub fn require_valid(wf: &Workflow, catalog: &Catalog) -> Result<()> {
    let rep = validate(wf, catalog);
    if rep.is_valid() {
        Ok(())
    } else {
        Err(CornetError::InvalidWorkflow(rep.errors.join("; ")))
    }
}

/// Walk the graph from start; at each task, every input parameter must be
/// available (correct name and type) in the accumulated global state of at
/// least the variables guaranteed on *some* path — matching the paper's
/// shared-global-state semantics.
fn check_parameter_flow(wf: &Workflow, catalog: &Catalog, rep: &mut ValidationReport) {
    let Some(start) = wf.start() else { return };
    // Optimistic data-flow: a variable is "available" at node N if produced
    // on any path from start to N. Iterate to fixpoint over the DAG-ish
    // graph (cycles — retry loops — converge because state only grows).
    let n = wf.nodes.len();
    let mut avail: Vec<BTreeMap<String, ParamType>> = vec![BTreeMap::new(); n];
    let base: BTreeMap<String, ParamType> =
        wf.inputs.iter().map(|p| (p.name.clone(), p.ty)).collect();
    avail[start.index()] = base;
    let mut queue: VecDeque<_> = VecDeque::from([start]);
    let mut visited_edges = BTreeSet::new();
    while let Some(cur) = queue.pop_front() {
        // State after executing this node.
        let mut after = avail[cur.index()].clone();
        if let NodeKind::Task { block } = &wf.node(cur).kind {
            if let Some(spec) = catalog.get(block) {
                for out in &spec.outputs {
                    after.insert(out.name.clone(), out.ty);
                }
            }
        }
        for e in wf.out_edges(cur) {
            let changed = {
                let target = &mut avail[e.to.index()];
                let before = target.len();
                for (k, v) in &after {
                    target.entry(k.clone()).or_insert(*v);
                }
                target.len() != before
            };
            if changed || visited_edges.insert((e.from, e.to)) {
                queue.push_back(e.to);
            }
        }
    }

    for node in &wf.nodes {
        match &node.kind {
            NodeKind::Task { block } => {
                let Some(spec) = catalog.get(block) else {
                    continue;
                };
                for input in &spec.inputs {
                    match avail[node.id.index()].get(&input.name) {
                        None => rep.errors.push(format!(
                            "block '{}' input '{}' is never produced upstream",
                            node.label, input.name
                        )),
                        Some(ty) if *ty != input.ty => rep.errors.push(format!(
                            "block '{}' input '{}' has type {:?} upstream but expects {:?}",
                            node.label, input.name, ty, input.ty
                        )),
                        _ => {}
                    }
                }
            }
            NodeKind::Decision { variable } => match avail[node.id.index()].get(variable) {
                None => rep.errors.push(format!(
                    "decision '{}' reads variable '{variable}' that is never produced",
                    node.label
                )),
                Some(ParamType::Bool) => {}
                Some(ty) => rep.errors.push(format!(
                    "decision '{}' variable '{variable}' must be bool, found {ty:?}",
                    node.label
                )),
            },
            _ => {}
        }
    }

    // Declared workflow outputs should be producible somewhere.
    let mut all_produced: BTreeMap<String, ParamType> =
        wf.inputs.iter().map(|p| (p.name.clone(), p.ty)).collect();
    for block in wf.blocks() {
        if let Some(spec) = catalog.get(block) {
            for out in &spec.outputs {
                all_produced.insert(out.name.clone(), out.ty);
            }
        }
    }
    for out in &wf.outputs {
        if !all_produced.contains_key(&out.name) {
            rep.warnings.push(format!(
                "declared workflow output '{}' is never produced by any block",
                out.name
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designer::Designer;
    use cornet_catalog::builtin_catalog;
    use cornet_types::ParamType;

    fn upgrade_workflow() -> Workflow {
        // Fig. 4: start → health_check → healthy? →(yes) software_upgrade
        // → pre_post_comparison → passed? →(no) roll_back → end.
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "fig4");
        d.input("node", ParamType::String);
        d.input("software_version", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let dec1 = d.decision("healthy");
        let up = d.task("software_upgrade").unwrap();
        let cmp = d.task("pre_post_comparison").unwrap();
        let dec2 = d.decision("passed");
        let rb = d.task("roll_back").unwrap();
        let end_ok = d.end();
        let end_fail = d.end();
        d.connect(start, hc)
            .connect(hc, dec1)
            .connect_if(dec1, up, true)
            .connect_if(dec1, end_fail, false)
            .connect(up, cmp)
            .connect(cmp, dec2)
            .connect_if(dec2, end_ok, true)
            .connect_if(dec2, rb, false)
            .connect(rb, end_ok);
        d.build()
    }

    #[test]
    fn fig4_workflow_is_valid() {
        let cat = builtin_catalog();
        let rep = validate(&upgrade_workflow(), &cat);
        assert!(rep.is_valid(), "errors: {:?}", rep.errors);
    }

    #[test]
    fn zombie_block_detected() {
        let cat = builtin_catalog();
        let mut wf = upgrade_workflow();
        // Add a task with no edges at all — the paper's zombie.
        wf.add_node(
            "zombie",
            NodeKind::Task {
                block: "traffic_redirect".into(),
            },
        );
        let rep = validate(&wf, &cat);
        assert!(!rep.is_valid());
        assert!(
            rep.errors.iter().any(|e| e.contains("zombie")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn dangling_edge_reported_not_panicking() {
        let cat = builtin_catalog();
        let mut wf = upgrade_workflow();
        wf.add_edge(crate::graph::NodeId(0), crate::graph::NodeId(999), None);
        let rep = validate(&wf, &cat);
        assert!(!rep.is_valid());
        assert!(
            rep.errors.iter().any(|e| e.contains("unknown node")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn missing_no_branch_detected() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "halfdec");
        d.input("node", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let dec = d.decision("healthy");
        let end = d.end();
        d.connect(start, hc)
            .connect(hc, dec)
            .connect_if(dec, end, true);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors.iter().any(|e| e.contains("yes and a no")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn missing_parameter_detected() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "noparam");
        // software_upgrade needs node + software_version; provide neither.
        let start = d.start();
        let up = d.task("software_upgrade").unwrap();
        let end = d.end();
        d.connect(start, up).connect(up, end);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors
                .iter()
                .any(|e| e.contains("never produced upstream")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn rollback_before_upgrade_is_rejected() {
        // roll_back consumes previous_version, which only software_upgrade
        // produces — ordering matters.
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "misorder");
        d.input("node", ParamType::String);
        d.input("software_version", ParamType::String);
        let start = d.start();
        let rb = d.task("roll_back").unwrap();
        let up = d.task("software_upgrade").unwrap();
        let end = d.end();
        d.connect(start, rb).connect(rb, up).connect(up, end);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors.iter().any(|e| e.contains("previous_version")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn decision_on_non_bool_rejected() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "badvar");
        d.input("node", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let dec = d.decision("node"); // node is a String
        let e1 = d.end();
        let e2 = d.end();
        d.connect(start, hc).connect(hc, dec);
        d.connect_if(dec, e1, true).connect_if(dec, e2, false);
        let rep = validate(&d.build(), &cat);
        assert!(
            rep.errors.iter().any(|e| e.contains("must be bool")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn undeclared_output_warns() {
        let cat = builtin_catalog();
        let mut d = Designer::new(&cat, "out");
        d.input("node", ParamType::String);
        d.output("mystery", ParamType::String);
        let start = d.start();
        let hc = d.task("health_check").unwrap();
        let end = d.end();
        d.connect(start, hc).connect(hc, end);
        let rep = validate(&d.build(), &cat);
        assert!(rep.is_valid());
        assert!(rep.warnings.iter().any(|w| w.contains("mystery")));
    }

    #[test]
    fn backout_errors_are_prefixed_and_inherit_parent_outputs() {
        let cat = builtin_catalog();

        // Valid backout: roll_back consumes previous_version, which the
        // parent's software_upgrade block produces — the backout inherits it.
        let mut wf = upgrade_workflow();
        let mut d = Designer::new(&cat, "backout");
        let s = d.start();
        let rb = d.task("roll_back").unwrap();
        let e = d.end();
        d.connect(s, rb).connect(rb, e);
        wf.set_backout(d.build());
        let rep = validate(&wf, &cat);
        assert!(rep.is_valid(), "errors: {:?}", rep.errors);

        // Invalid backout (zombie task) surfaces prefixed errors.
        let mut bad = Workflow::new("bad-backout");
        bad.add_node(
            "zombie",
            NodeKind::Task {
                block: "roll_back".into(),
            },
        );
        let mut wf = upgrade_workflow();
        wf.set_backout(bad);
        let rep = validate(&wf, &cat);
        assert!(!rep.is_valid());
        assert!(
            rep.errors.iter().any(|e| e.starts_with("backout: ")),
            "{:?}",
            rep.errors
        );
    }

    #[test]
    fn require_valid_converts_to_error() {
        let cat = builtin_catalog();
        let wf = Workflow::new("empty");
        assert!(require_valid(&wf, &cat).is_err());
        assert!(require_valid(&upgrade_workflow(), &cat).is_ok());
    }
}
