//! Properties of baseline suppression under report churn.
//!
//! A baseline accepted at release N must keep suppressing the same
//! findings at release N+1 even though (a) passes emit diagnostics in a
//! different order and (b) diagnostic messages get reworded. Fingerprints
//! are code + anchor only, and the baseline is a count multiset, so both
//! transformations must be invisible — while *new* findings (a fresh
//! anchor, or more duplicates than were accepted) must still surface.

use cornet_analysis::{Baseline, Code, Diagnostic, Report, SourceRef};
use proptest::prelude::*;

const CODES: [&str; 6] = ["CN0101", "CN0207", "CN0303", "CN0416", "CN0502", "CN0601"];

/// Deterministic diagnostic whose identity (code + anchor) depends only on
/// `(seed, i)` while its message also depends on `wording`.
fn diag(seed: u64, i: u64, wording: u64) -> Diagnostic {
    let mix = seed
        .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let code = Code(CODES[(mix % CODES.len() as u64) as usize]);
    let source = if mix & 1 == 0 {
        SourceRef::Workflow {
            workflow: format!("wf{}", (mix >> 8) % 4),
        }
    } else {
        SourceRef::Target {
            node: ((mix >> 8) % 5) as u32,
            slot: Some(((mix >> 16) % 3) as u32),
        }
    };
    Diagnostic::error(
        code,
        source,
        format!("finding {i} of seed {seed} (wording variant {wording})"),
    )
}

proptest! {
    #[test]
    fn suppression_survives_reordering_and_rewording(
        seed in any::<u64>(),
        n in 1u64..12,
        rot in 0u64..12,
        wording in 1u64..1000,
    ) {
        // Accept release N's report verbatim, via the JSONL round trip the
        // CLI uses (`--format json` output fed back as `--baseline`).
        let mut accepted = Report::new();
        for i in 0..n {
            accepted.push(diag(seed, i, 0));
        }
        let baseline = Baseline::from_jsonl(&accepted.render_jsonl()).unwrap();
        prop_assert_eq!(baseline.len(), n as usize);

        // Release N+1 emits the same findings rotated and reworded.
        let mut churned = Report::new();
        for k in 0..n {
            churned.push(diag(seed, (k + rot) % n, wording));
        }
        let dropped = baseline.suppress(&mut churned);
        prop_assert_eq!(dropped, n as usize);
        prop_assert!(
            churned.is_clean(),
            "survivors after suppression: {}",
            churned.render_text()
        );
    }

    #[test]
    fn genuinely_new_findings_still_surface(
        seed in any::<u64>(),
        n in 1u64..10,
        wording in 1u64..1000,
    ) {
        let mut accepted = Report::new();
        for i in 0..n {
            accepted.push(diag(seed, i, 0));
        }
        let baseline = Baseline::from_jsonl(&accepted.render_jsonl()).unwrap();

        // One extra duplicate of an accepted finding: the count multiset
        // only bought `n` suppressions, so exactly one survivor remains
        // no matter how messages were reworded.
        let mut churned = Report::new();
        for i in 0..n {
            churned.push(diag(seed, i, wording));
        }
        churned.push(diag(seed, 0, wording));
        let dropped = baseline.suppress(&mut churned);
        prop_assert_eq!(dropped, n as usize);
        prop_assert_eq!(churned.diagnostics.len(), 1);

        // A finding at a fresh anchor is never suppressed.
        let mut fresh = Report::new();
        fresh.push(Diagnostic::error(
            Code("CN0601"),
            SourceRef::Rule {
                rule: format!("not-in-baseline-{seed}"),
            },
            "brand new",
        ));
        prop_assert_eq!(baseline.suppress(&mut fresh), 0);
        prop_assert_eq!(fresh.diagnostics.len(), 1);
    }
}
