//! The pass trait and the driver pipeline.
//!
//! An [`AnalysisPass`] is one checker over an analysis bundle `B` (the
//! bundle type is generic so the framework sits below the crates that
//! define workflows, intents and rules — `cornet-core` instantiates the
//! concrete MOP bundle). The [`Driver`] owns a registered pipeline, runs
//! every pass, stamps each diagnostic with its originating pass name, and
//! returns one deterministically ordered [`Report`].

use crate::diag::Report;

/// One static-analysis pass over a bundle type `B`.
pub trait AnalysisPass<B: ?Sized> {
    /// Stable pass name, e.g. `"workflow-structure"`.
    fn name(&self) -> &'static str;

    /// Run the pass, appending findings to `report`.
    fn run(&self, bundle: &B, report: &mut Report);
}

/// Adapter turning a closure into an [`AnalysisPass`].
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F> FnPass<F> {
    /// Wrap a closure as a named pass.
    pub fn new(name: &'static str, f: F) -> Self {
        FnPass { name, f }
    }
}

impl<B: ?Sized, F: Fn(&B, &mut Report)> AnalysisPass<B> for FnPass<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, bundle: &B, report: &mut Report) {
        (self.f)(bundle, report)
    }
}

/// A registered pipeline of passes over a bundle type `B`.
#[derive(Default)]
pub struct Driver<B: ?Sized> {
    passes: Vec<Box<dyn AnalysisPass<B>>>,
}

impl<B: ?Sized> Driver<B> {
    /// Empty driver.
    pub fn new() -> Self {
        Driver { passes: Vec::new() }
    }

    /// Register a pass; passes run in registration order.
    pub fn register<P: AnalysisPass<B> + 'static>(&mut self, pass: P) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Register a closure as a named pass.
    pub fn register_fn<F>(&mut self, name: &'static str, f: F) -> &mut Self
    where
        F: Fn(&B, &mut Report) + 'static,
    {
        self.register(FnPass::new(name, f))
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every registered pass over the bundle. Each diagnostic is
    /// stamped with its pass name; the combined report is sorted into the
    /// deterministic severity/code/anchor order.
    pub fn run(&self, bundle: &B) -> Report {
        let mut report = Report::new();
        for pass in &self.passes {
            let before = report.diagnostics.len();
            pass.run(bundle, &mut report);
            for d in &mut report.diagnostics[before..] {
                if d.pass.is_empty() {
                    d.pass = pass.name().to_owned();
                }
            }
        }
        report.sort();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic, SourceRef};

    struct Doubler;
    impl AnalysisPass<Vec<i32>> for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn run(&self, bundle: &Vec<i32>, report: &mut Report) {
            for v in bundle {
                if v % 2 == 0 {
                    report.push(Diagnostic::error(
                        Code("CN0101"),
                        SourceRef::Global,
                        format!("even value {v}"),
                    ));
                }
            }
        }
    }

    #[test]
    fn driver_runs_passes_and_stamps_names() {
        let mut driver: Driver<Vec<i32>> = Driver::new();
        driver.register(Doubler);
        driver.register_fn("negatives", |bundle: &Vec<i32>, report| {
            for v in bundle {
                if *v < 0 {
                    report.push(Diagnostic::warning(
                        Code("CN0205"),
                        SourceRef::Global,
                        format!("negative value {v}"),
                    ));
                }
            }
        });
        assert_eq!(driver.pass_names(), vec!["doubler", "negatives"]);
        let report = driver.run(&vec![2, -3, 5]);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].pass, "doubler");
        assert_eq!(report.diagnostics[1].pass, "negatives");
    }

    #[test]
    fn empty_driver_is_clean() {
        let driver: Driver<()> = Driver::new();
        assert!(driver.run(&()).is_clean());
    }
}
