//! # cornet-analysis
//!
//! The unified static-analysis framework. The paper's §3.2 verification
//! step (zombie detection) and §6's "intent completeness" problem are both
//! static analyses; following Relational Network Verification, CORNET
//! checks *changes* against the pre-change state before anything executes.
//! This crate is the shared substrate every checker builds on:
//!
//! * [`diag`] — the diagnostics model: [`Diagnostic`] with stable machine
//!   codes (`CN0102`), [`Severity`], a [`SourceRef`] pointing at the
//!   offending node/edge/rule/param, optional fix hints, and text + JSON
//!   lines renderers;
//! * [`pass`] — the [`AnalysisPass`] trait and the [`Driver`] that runs a
//!   registered pass pipeline over an analysis bundle;
//! * [`baseline`] — suppression of previously accepted diagnostics so
//!   `cornet check` can gate only on *new* findings.
//!
//! Code ranges are allocated per concern: `CN01xx` structural workflow
//! checks, `CN02xx` parameter dataflow, `CN03xx` resilience arithmetic,
//! `CN04xx` schedule planning, `CN05xx` verification rules, `CN06xx`
//! cross-campaign interference. The concrete
//! passes live next to the subsystems they analyze (`cornet-workflow`,
//! `cornet-planner`, `cornet-orchestrator`, `cornet-verifier`); the
//! full-bundle pipeline is assembled in `cornet-core` and fronted by the
//! `cornet check` CLI gate.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod diag;
pub mod pass;

pub use baseline::Baseline;
pub use diag::{Code, Diagnostic, Report, Severity, SourceRef};
pub use pass::{AnalysisPass, Driver, FnPass};
