//! Baseline suppression for incremental adoption.
//!
//! A brownfield deployment cannot fix every pre-existing finding at once.
//! `cornet check --format json` output is a JSON-lines file; feeding it
//! back via `--baseline <file>` suppresses exactly those accepted
//! diagnostics (matched on code + anchor + message) so the gate trips only
//! on *new* findings — the same ratchet pattern as clippy's allow-lists
//! or eslint's baseline files.

use crate::diag::{Diagnostic, Report};
use cornet_types::json::{parse, JsonValue};
use cornet_types::{CornetError, Result};
use std::collections::BTreeSet;

/// A set of previously accepted diagnostics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// Empty baseline (suppresses nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a JSON-lines baseline file body (the `--format json` output
    /// of a previous run). Blank lines are ignored; malformed lines are a
    /// hard error so stale baselines fail loudly.
    pub fn from_jsonl(body: &str) -> Result<Baseline> {
        let mut keys = BTreeSet::new();
        for (i, line) in body.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = parse(line)
                .map_err(|e| CornetError::Parse(format!("baseline line {}: {e}", i + 1)))?;
            let field = |name: &str| -> Result<String> {
                v.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        CornetError::Parse(format!(
                            "baseline line {}: missing string field '{name}'",
                            i + 1
                        ))
                    })
            };
            keys.insert(format!(
                "{}\u{1}{}\u{1}{}",
                field("code")?,
                field("where")?,
                field("message")?
            ));
        }
        Ok(Baseline { keys })
    }

    /// Record a diagnostic as accepted.
    pub fn accept(&mut self, d: &Diagnostic) {
        self.keys.insert(d.fingerprint());
    }

    /// Whether a diagnostic is suppressed by this baseline.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.keys.contains(&d.fingerprint())
    }

    /// Number of accepted entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Remove suppressed diagnostics from a report; returns how many were
    /// dropped.
    pub fn suppress(&self, report: &mut Report) -> usize {
        let before = report.diagnostics.len();
        report.diagnostics.retain(|d| !self.contains(d));
        before - report.diagnostics.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, SourceRef};

    fn diag(msg: &str) -> Diagnostic {
        Diagnostic::error(
            Code("CN0101"),
            SourceRef::Workflow {
                workflow: "fig4".into(),
            },
            msg,
        )
    }

    #[test]
    fn jsonl_output_round_trips_as_baseline() {
        let mut report = Report::new();
        report.push(diag("stale finding"));
        report.push(diag("fresh finding"));
        let baseline = {
            let mut accepted = Report::new();
            accepted.push(diag("stale finding"));
            Baseline::from_jsonl(&accepted.render_jsonl()).unwrap()
        };
        assert_eq!(baseline.len(), 1);
        let dropped = baseline.suppress(&mut report);
        assert_eq!(dropped, 1);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].message, "fresh finding");
    }

    #[test]
    fn malformed_baseline_is_a_hard_error() {
        assert!(Baseline::from_jsonl("{not json").is_err());
        assert!(Baseline::from_jsonl("{\"code\":\"CN0101\"}").is_err());
        assert!(Baseline::from_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn accept_and_contains() {
        let mut b = Baseline::new();
        let d = diag("x");
        assert!(!b.contains(&d));
        b.accept(&d);
        assert!(b.contains(&d));
        assert!(!b.contains(&diag("y")));
    }
}
