//! Baseline suppression for incremental adoption.
//!
//! A brownfield deployment cannot fix every pre-existing finding at once.
//! `cornet check --format json` output is a JSON-lines file; feeding it
//! back via `--baseline <file>` suppresses exactly those accepted
//! diagnostics so the gate trips only on *new* findings — the same
//! ratchet pattern as clippy's allow-lists or eslint's baseline files.
//!
//! Matching is on [`Diagnostic::fingerprint`] — code + anchor,
//! deliberately *not* the message — so a baseline keeps suppressing an
//! accepted finding when a release rewords diagnostic text or the report
//! is reordered. Because several distinct findings can share a
//! fingerprint (same code at the same anchor, different details), the
//! baseline is a multiset: each accepted entry buys suppression of one
//! matching diagnostic, and any surplus beyond the accepted count still
//! trips the gate.

use crate::diag::{Diagnostic, Report};
use cornet_types::json::{parse, JsonValue};
use cornet_types::{CornetError, Result};
use std::collections::BTreeMap;

/// A multiset of previously accepted diagnostics, keyed by fingerprint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Empty baseline (suppresses nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a JSON-lines baseline file body (the `--format json` output
    /// of a previous run). Blank lines are ignored; malformed lines are a
    /// hard error so stale baselines fail loudly. The `message` field is
    /// still required — a baseline file is a full diagnostic dump — but
    /// does not participate in matching.
    pub fn from_jsonl(body: &str) -> Result<Baseline> {
        let mut counts = BTreeMap::new();
        for (i, line) in body.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = parse(line)
                .map_err(|e| CornetError::Parse(format!("baseline line {}: {e}", i + 1)))?;
            let field = |name: &str| -> Result<String> {
                v.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| {
                        CornetError::Parse(format!(
                            "baseline line {}: missing string field '{name}'",
                            i + 1
                        ))
                    })
            };
            field("message")?;
            let key = format!("{}\u{1}{}", field("code")?, field("where")?);
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// Record a diagnostic as accepted (one more suppression of its
    /// fingerprint).
    pub fn accept(&mut self, d: &Diagnostic) {
        *self.counts.entry(d.fingerprint()).or_insert(0) += 1;
    }

    /// Whether at least one acceptance matches the diagnostic.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.counts.contains_key(&d.fingerprint())
    }

    /// Number of accepted entries (multiset cardinality).
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Remove suppressed diagnostics from a report; returns how many were
    /// dropped. Each accepted entry suppresses at most one matching
    /// diagnostic (earliest in report order first), so a *growing* count
    /// of the same finding still surfaces the surplus.
    pub fn suppress(&self, report: &mut Report) -> usize {
        let mut budget = self.counts.clone();
        let before = report.diagnostics.len();
        report
            .diagnostics
            .retain(|d| match budget.get_mut(&d.fingerprint()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            });
        before - report.diagnostics.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, SourceRef};

    fn diag(msg: &str) -> Diagnostic {
        Diagnostic::error(
            Code("CN0101"),
            SourceRef::Workflow {
                workflow: "fig4".into(),
            },
            msg,
        )
    }

    #[test]
    fn jsonl_output_round_trips_as_baseline() {
        let mut report = Report::new();
        report.push(diag("stale finding"));
        report.push(diag("fresh finding"));
        let baseline = {
            let mut accepted = Report::new();
            accepted.push(diag("stale finding"));
            Baseline::from_jsonl(&accepted.render_jsonl()).unwrap()
        };
        assert_eq!(baseline.len(), 1);
        let dropped = baseline.suppress(&mut report);
        assert_eq!(dropped, 1);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].message, "fresh finding");
    }

    #[test]
    fn malformed_baseline_is_a_hard_error() {
        assert!(Baseline::from_jsonl("{not json").is_err());
        assert!(Baseline::from_jsonl("{\"code\":\"CN0101\"}").is_err());
        assert!(Baseline::from_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn accept_matches_regardless_of_message() {
        let mut b = Baseline::new();
        let d = diag("x");
        assert!(!b.contains(&d));
        b.accept(&d);
        assert!(b.contains(&d));
        // Same code + anchor, different message: same fingerprint.
        assert!(b.contains(&diag("y")));
        // Different anchor: not suppressed.
        let other = Diagnostic::error(
            Code("CN0101"),
            SourceRef::Workflow {
                workflow: "other".into(),
            },
            "x",
        );
        assert!(!b.contains(&other));
    }

    #[test]
    fn surplus_findings_beyond_the_accepted_count_survive() {
        let mut b = Baseline::new();
        b.accept(&diag("accepted once"));
        let mut report = Report::new();
        report.push(diag("first"));
        report.push(diag("second"));
        report.push(diag("third"));
        assert_eq!(b.suppress(&mut report), 1);
        // Only one suppression was bought; the surplus still gates.
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].message, "second");
    }
}
