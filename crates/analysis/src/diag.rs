//! The shared diagnostics model.
//!
//! Every static check in the workspace reports through one vocabulary: a
//! [`Diagnostic`] carries a stable machine [`Code`], a [`Severity`], a
//! [`SourceRef`] anchoring the finding to the offending artifact element,
//! an operator-facing message, and an optional fix hint. A [`Report`]
//! aggregates diagnostics across passes and renders them as terminal text
//! or JSON lines (one object per diagnostic — greppable, diffable, and
//! reusable as a [`crate::Baseline`]).

use serde::Serialize;
use std::fmt;

/// Stable machine-readable diagnostic code, e.g. `CN0102`.
///
/// Ranges are allocated per concern: `CN01xx` structural, `CN02xx`
/// dataflow, `CN03xx` resilience, `CN04xx` planning, `CN05xx`
/// verification, `CN06xx` interference. Codes never change meaning once
/// released; retired codes are not reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Code(pub &'static str);

impl Code {
    /// The concern family the code belongs to.
    pub fn category(self) -> &'static str {
        match self.0.get(..4) {
            Some("CN01") => "structural",
            Some("CN02") => "dataflow",
            Some("CN03") => "resilience",
            Some("CN04") => "planning",
            Some("CN05") => "verification",
            Some("CN06") => "interference",
            _ => "other",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// How severe a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// The artifact must not be deployed; `cornet check` exits non-zero.
    Error,
    /// Deployable, but probably not what the operator intends.
    Warning,
    /// Informational observation.
    Info,
}

impl Severity {
    /// Lowercase label used in renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// Where in the analyzed artifacts a diagnostic points.
///
/// Rendering is stable: messages built from a `SourceRef` never include
/// `Debug` noise, so operators (and baselines) can rely on the text.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SourceRef {
    /// No specific anchor (whole-bundle findings).
    Global,
    /// The plan intent document.
    Intent,
    /// One workflow graph.
    Workflow {
        /// Workflow name.
        workflow: String,
    },
    /// A node of a workflow graph, identified by its display label.
    Node {
        /// Owning workflow.
        workflow: String,
        /// Node label.
        node: String,
    },
    /// An edge of a workflow graph, by endpoint node indices.
    Edge {
        /// Owning workflow.
        workflow: String,
        /// Source node index.
        from: u32,
        /// Target node index.
        to: u32,
    },
    /// A named parameter within a scope (block input, workflow output…).
    Param {
        /// Owning scope (block or workflow label).
        scope: String,
        /// Parameter name.
        param: String,
    },
    /// A catalog building block (or its resilience policy).
    Block {
        /// Block name.
        block: String,
    },
    /// A verification or constraint rule.
    Rule {
        /// Rule name.
        rule: String,
    },
    /// An inventory node target, optionally pinned to a plan wave.
    Target {
        /// Inventory node id.
        node: u32,
        /// Scheduled timeslot, when relevant.
        slot: Option<u32>,
    },
}

impl fmt::Display for SourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceRef::Global => f.write_str("-"),
            SourceRef::Intent => f.write_str("intent"),
            SourceRef::Workflow { workflow } => write!(f, "workflow '{workflow}'"),
            SourceRef::Node { workflow, node } => {
                write!(f, "workflow '{workflow}' node '{node}'")
            }
            SourceRef::Edge { workflow, from, to } => {
                write!(f, "workflow '{workflow}' edge {from}->{to}")
            }
            SourceRef::Param { scope, param } => write!(f, "param '{param}' of '{scope}'"),
            SourceRef::Block { block } => write!(f, "block '{block}'"),
            SourceRef::Rule { rule } => write!(f, "rule '{rule}'"),
            SourceRef::Target { node, slot: None } => write!(f, "node #{node}"),
            SourceRef::Target {
                node,
                slot: Some(s),
            } => write!(f, "node #{node} @ slot {s}"),
        }
    }
}

/// One finding of one analysis pass.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Stable machine code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Anchor in the analyzed artifacts.
    pub source: SourceRef,
    /// Operator-facing explanation with concrete names and numbers.
    pub message: String,
    /// Optional actionable fix hint.
    pub hint: Option<String>,
    /// Name of the pass that produced the finding (stamped by the
    /// [`crate::Driver`]; empty for directly constructed diagnostics).
    pub pass: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(
        code: Code,
        severity: Severity,
        source: SourceRef,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            source,
            message: message.into(),
            hint: None,
            pass: String::new(),
        }
    }

    /// Error-severity constructor.
    pub fn error(code: Code, source: SourceRef, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, source, message)
    }

    /// Warning-severity constructor.
    pub fn warning(code: Code, source: SourceRef, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, source, message)
    }

    /// Info-severity constructor.
    pub fn info(code: Code, source: SourceRef, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Info, source, message)
    }

    /// Attach a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// One-line terminal rendering:
    /// `error[CN0101] workflow 'x' edge 0->9: message (help: hint)`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.source,
            self.message
        );
        if let Some(hint) = &self.hint {
            out.push_str(&format!(" (help: {hint})"));
        }
        out
    }

    /// One-line JSON object rendering (hand-rolled: the vendored
    /// `serde_json` cannot emit real JSON).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"code\":");
        json_string(&mut out, self.code.0);
        out.push_str(",\"severity\":");
        json_string(&mut out, self.severity.label());
        out.push_str(",\"category\":");
        json_string(&mut out, self.code.category());
        out.push_str(",\"where\":");
        json_string(&mut out, &self.source.to_string());
        out.push_str(",\"message\":");
        json_string(&mut out, &self.message);
        if let Some(hint) = &self.hint {
            out.push_str(",\"hint\":");
            json_string(&mut out, hint);
        }
        if !self.pass.is_empty() {
            out.push_str(",\"pass\":");
            json_string(&mut out, &self.pass);
        }
        out.push('}');
        out
    }

    /// Identity used for baseline matching: code + anchor. Deliberately
    /// message-independent, so accepted baselines survive message
    /// rewording between releases; multiple identical (code, anchor)
    /// findings are told apart by count in [`crate::Baseline`].
    pub fn fingerprint(&self) -> String {
        format!("{}\u{1}{}", self.code, self.source)
    }
}

/// Append `s` as a JSON string literal (with escapes) to `out`.
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Aggregated findings of one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct Report {
    /// All diagnostics, in emission order until [`Report::sort`].
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append all diagnostics of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Iterate diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Diagnostics of one severity.
    pub fn with_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.with_severity(Severity::Warning).count()
    }

    /// Whether any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is empty.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Gate decision: `true` when the artifact may proceed. Errors always
    /// block; warnings block under `deny_warnings`.
    pub fn passes_gate(&self, deny_warnings: bool) -> bool {
        !(self.has_errors() || deny_warnings && self.warning_count() > 0)
    }

    /// Deterministic order: severity, then code, then anchor, then text.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.severity, a.code, &a.source, &a.message)
                .cmp(&(b.severity, b.code, &b.source, &b.message))
        });
    }

    /// Human-readable multi-line rendering with a summary footer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// JSON-lines rendering: one object per diagnostic, newline-separated.
    /// The output doubles as a [`crate::Baseline`] file.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_json());
            out.push('\n');
        }
        out
    }

    /// SARIF 2.1.0 rendering (one run, logical locations), for code-review
    /// tooling that ingests the standard static-analysis interchange
    /// format. Like every other wire rendering here it is hand-rolled and
    /// bit-stable: same report in, same bytes out.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\"version\":\"2.1.0\",\"$schema\":\
             \"https://json.schemastore.org/sarif-2.1.0.json\",\
             \"runs\":[{\"tool\":{\"driver\":{\"name\":\"cornet\",\
             \"informationUri\":\"https://example.invalid/cornet\",\"rules\":[",
        );
        let mut rules: Vec<&Code> = Vec::new();
        for d in &self.diagnostics {
            if !rules.contains(&&d.code) {
                rules.push(&d.code);
            }
        }
        for (i, code) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json_string(&mut out, code.0);
            out.push_str(",\"shortDescription\":{\"text\":");
            json_string(&mut out, code.category());
            out.push_str("}}");
        }
        out.push_str("]}},\"results\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"ruleId\":");
            json_string(&mut out, d.code.0);
            out.push_str(",\"level\":");
            json_string(
                &mut out,
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                    Severity::Info => "note",
                },
            );
            out.push_str(",\"message\":{\"text\":");
            let text = match &d.hint {
                Some(hint) => format!("{} (help: {hint})", d.message),
                None => d.message.clone(),
            };
            json_string(&mut out, &text);
            out.push_str(
                "},\"locations\":[{\"logicalLocations\":[{\
                          \"fullyQualifiedName\":",
            );
            json_string(&mut out, &d.source.to_string());
            out.push_str("}]}]");
            if !d.pass.is_empty() {
                out.push_str(",\"properties\":{\"pass\":");
                json_string(&mut out, &d.pass);
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic::error(
            Code("CN0101"),
            SourceRef::Edge {
                workflow: "fig4".into(),
                from: 0,
                to: 999,
            },
            "edge references unknown node 999",
        )
        .with_hint("remove the edge or add the node")
    }

    #[test]
    fn render_is_stable_and_readable() {
        assert_eq!(
            sample().render(),
            "error[CN0101] workflow 'fig4' edge 0->999: edge references unknown node 999 \
             (help: remove the edge or add the node)"
        );
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic::warning(
            Code("CN0206"),
            SourceRef::Param {
                scope: "roll_back".into(),
                param: "previous\"version".into(),
            },
            "line1\nline2",
        );
        let json = d.render_json();
        assert!(json.contains(r#""message":"line1\nline2""#), "{json}");
        assert!(json.contains(r#"previous\"version"#), "{json}");
        assert!(json.contains(r#""category":"dataflow""#), "{json}");
    }

    #[test]
    fn categories_follow_code_ranges() {
        assert_eq!(Code("CN0101").category(), "structural");
        assert_eq!(Code("CN0207").category(), "dataflow");
        assert_eq!(Code("CN0301").category(), "resilience");
        assert_eq!(Code("CN0416").category(), "planning");
        assert_eq!(Code("CN0502").category(), "verification");
        assert_eq!(Code("CN0601").category(), "interference");
        assert_eq!(Code("XX").category(), "other");
    }

    #[test]
    fn report_counts_and_gate() {
        let mut r = Report::new();
        assert!(r.passes_gate(true));
        r.push(Diagnostic::warning(Code("CN0205"), SourceRef::Global, "w"));
        assert!(r.passes_gate(false));
        assert!(!r.passes_gate(true));
        r.push(sample());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.passes_gate(false));
    }

    #[test]
    fn sort_orders_errors_first_then_code() {
        let mut r = Report::new();
        r.push(Diagnostic::warning(Code("CN0205"), SourceRef::Global, "w"));
        r.push(Diagnostic::error(Code("CN0202"), SourceRef::Global, "b"));
        r.push(Diagnostic::error(Code("CN0101"), SourceRef::Global, "a"));
        r.sort();
        let codes: Vec<&str> = r.iter().map(|d| d.code.0).collect();
        assert_eq!(codes, vec!["CN0101", "CN0202", "CN0205"]);
    }

    #[test]
    fn sarif_rendering_parses_with_rules_results_and_levels() {
        let mut r = Report::new();
        r.push(sample());
        r.push(Diagnostic::info(
            Code("CN0605"),
            SourceRef::Global,
            "conservative assumption",
        ));
        let sarif = r.render_sarif();
        let v = cornet_types::json::parse(&sarif).unwrap();
        assert_eq!(v.get("version").unwrap().as_str(), Some("2.1.0"));
        let run = &v.get("runs").unwrap().as_array().unwrap()[0];
        let rules = run
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].get("id").unwrap().as_str(), Some("CN0101"));
        let results = run.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("level").unwrap().as_str(), Some("error"));
        assert_eq!(results[1].get("level").unwrap().as_str(), Some("note"));
        let msg = results[0].get("message").unwrap().get("text").unwrap();
        assert!(msg.as_str().unwrap().contains("help:"), "{sarif}");
        // Bit-stable: rendering twice yields identical bytes.
        assert_eq!(sarif, r.render_sarif());
    }

    #[test]
    fn fingerprint_ignores_the_message() {
        let a = Diagnostic::error(Code("CN0601"), SourceRef::Global, "one wording");
        let b = Diagnostic::error(Code("CN0601"), SourceRef::Global, "another wording");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Diagnostic::error(Code("CN0602"), SourceRef::Global, "one wording");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn jsonl_round_trips_through_the_reader() {
        let mut r = Report::new();
        r.push(sample());
        let line = r.render_jsonl();
        let v = cornet_types::json::parse(line.trim()).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some("CN0101"));
        assert_eq!(
            v.get("where").unwrap().as_str(),
            Some("workflow 'fig4' edge 0->999")
        );
    }
}
