//! Ergonomic construction of scheduling models.
//!
//! The planner assembles models constraint-by-constraint as it walks the
//! intent; this builder holds the shared conventions — slot-assignment
//! variables in `0..=T` with 0 = unscheduled, label plumbing — so the
//! translation code (and the tests) stay readable.

use crate::constraint::{CmpOp, Constraint, LinTerm};
use crate::{Model, VarId};
use std::collections::BTreeMap;

/// Builder around a [`Model`] for slot-assignment scheduling problems.
#[derive(Debug)]
pub struct ModelBuilder {
    model: Model,
    /// Number of timeslots; variables range over `0..=slots`.
    slots: i64,
}

impl ModelBuilder {
    /// Start a model with `slots` available timeslots.
    pub fn new(name: impl Into<String>, slots: u32) -> Self {
        assert!(slots > 0, "a schedule needs at least one slot");
        Self {
            model: Model::new(name),
            slots: slots as i64,
        }
    }

    /// Number of timeslots.
    pub fn slots(&self) -> u32 {
        self.slots as u32
    }

    /// Add one slot-assignment variable (`0..=slots`, 0 = unscheduled).
    pub fn slot_var(&mut self, name: impl Into<String>) -> VarId {
        self.model.add_var(name, 0, self.slots)
    }

    /// Add `n` slot-assignment variables named `{prefix}[i]`.
    pub fn slot_vars(&mut self, prefix: &str, n: usize) -> Vec<VarId> {
        (0..n)
            .map(|i| self.slot_var(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Require every variable to be scheduled (exclude value 0).
    ///
    /// Used under zero conflict tolerance when the operations intent is
    /// "every node must land inside the window or the plan is infeasible".
    pub fn require_scheduled(&mut self, vars: &[VarId]) {
        for &v in vars {
            self.model
                .add_constraint(Constraint::forbidden_value("must_schedule", v, 0));
        }
    }

    /// Uniform weighted capacity per slot (concurrency template).
    pub fn capacity(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        weights: Vec<i64>,
        default_cap: i64,
    ) {
        assert_eq!(vars.len(), weights.len());
        self.model.add_constraint(Constraint::Capacity {
            label: label.into(),
            vars,
            weights,
            default_cap,
            slot_caps: BTreeMap::new(),
            block: 1,
            value_granules: None,
        });
    }

    /// Capacity with per-slot overrides.
    pub fn capacity_with_overrides(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        weights: Vec<i64>,
        default_cap: i64,
        slot_caps: BTreeMap<i64, i64>,
    ) {
        assert_eq!(vars.len(), weights.len());
        self.model.add_constraint(Constraint::Capacity {
            label: label.into(),
            vars,
            weights,
            default_cap,
            slot_caps,
            block: 1,
            value_granules: None,
        });
    }

    /// Weighted capacity per granule of `block` consecutive slots — a
    /// weekly cap over daily slots is `block = 7` (§3.3.2's differing
    /// time-granularity case).
    pub fn capacity_blocked(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        weights: Vec<i64>,
        default_cap: i64,
        block: i64,
    ) {
        assert_eq!(vars.len(), weights.len());
        assert!(block >= 1, "granule must span at least one slot");
        self.model.add_constraint(Constraint::Capacity {
            label: label.into(),
            vars,
            weights,
            default_cap,
            slot_caps: BTreeMap::new(),
            block,
            value_granules: None,
        });
    }

    /// Weighted capacity with an explicit value→granule mapping (index
    /// `value−1`) — the calendar-aligned variant of [`Self::capacity_blocked`]
    /// for compacted slot lists with excluded periods.
    pub fn capacity_with_granules(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        weights: Vec<i64>,
        default_cap: i64,
        value_granules: Vec<i64>,
    ) {
        assert_eq!(vars.len(), weights.len());
        assert_eq!(
            value_granules.len(),
            self.slots as usize,
            "one granule per slot value"
        );
        self.model.add_constraint(Constraint::Capacity {
            label: label.into(),
            vars,
            weights,
            default_cap,
            slot_caps: BTreeMap::new(),
            block: 1,
            value_granules: Some(value_granules),
        });
    }

    /// At most `cap` distinct groups per slot (linking-variable strategy).
    pub fn distinct_groups(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        group_of: Vec<usize>,
        cap: i64,
    ) {
        assert_eq!(vars.len(), group_of.len());
        self.model.add_constraint(Constraint::DistinctGroups {
            label: label.into(),
            vars,
            group_of,
            cap,
        });
    }

    /// Force variables equal (consistency template).
    pub fn same_value(&mut self, label: impl Into<String>, vars: Vec<VarId>) {
        self.model.add_constraint(Constraint::SameValue {
            label: label.into(),
            vars,
        });
    }

    /// Bound the metric spread within each slot (uniformity template).
    /// `metric` values are fixed-pointed at ×1000 internally.
    pub fn max_spread(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        metric: &[f64],
        max_distance: f64,
    ) {
        assert_eq!(vars.len(), metric.len());
        self.model.add_constraint(Constraint::MaxSpread {
            label: label.into(),
            vars,
            metric_milli: metric.iter().map(|m| (m * 1000.0).round() as i64).collect(),
            max_distance_milli: (max_distance * 1000.0).round() as i64,
        });
    }

    /// Forbid interleaving of groups across slots (localize template).
    pub fn non_interleaved(
        &mut self,
        label: impl Into<String>,
        vars: Vec<VarId>,
        group_of: Vec<usize>,
    ) {
        assert_eq!(vars.len(), group_of.len());
        self.model.add_constraint(Constraint::NonInterleaved {
            label: label.into(),
            vars,
            group_of,
        });
    }

    /// Forbid one value of one variable (frozen element / busy slot).
    pub fn forbid(&mut self, label: impl Into<String>, var: VarId, value: i64) {
        self.model
            .add_constraint(Constraint::forbidden_value(label, var, value));
    }

    /// Generic linear constraint (dense translation strategy, Eq. 4).
    pub fn linear(
        &mut self,
        label: impl Into<String>,
        terms: Vec<(i64, VarId)>,
        cmp: CmpOp,
        rhs: i64,
    ) {
        self.model.add_constraint(Constraint::Linear {
            label: label.into(),
            terms: terms
                .into_iter()
                .map(|(coeff, var)| LinTerm { coeff, var })
                .collect(),
            cmp,
            rhs,
        });
    }

    /// Completion-time pressure: each scheduled slot `t` costs `weight · t`,
    /// and staying unscheduled costs `weight · unscheduled_penalty`.
    pub fn completion_objective(
        &mut self,
        vars: &[VarId],
        weights: &[i64],
        unscheduled_penalty: i64,
    ) {
        assert_eq!(vars.len(), weights.len());
        for (&v, &w) in vars.iter().zip(weights) {
            self.model.objective.add_slope(v, w);
            self.model
                .objective
                .add_value_cost(v, 0, w * unscheduled_penalty);
        }
    }

    /// Conflict penalty: assigning `var = slot` costs `penalty` (soft
    /// conflict under minimize-conflicts tolerance).
    pub fn conflict_penalty(&mut self, var: VarId, slot: i64, penalty: i64) {
        self.model.objective.add_value_cost(var, slot, penalty);
    }

    /// Finish and return the model.
    pub fn build(self) -> Model {
        self.model
    }

    /// Peek at the model under construction.
    pub fn model(&self) -> &Model {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_vars_have_unscheduled_zero() {
        let mut b = ModelBuilder::new("t", 5);
        let vs = b.slot_vars("X", 3);
        let m = b.build();
        assert_eq!(m.var_count(), 3);
        assert_eq!(m.var(vs[0]).lo, 0);
        assert_eq!(m.var(vs[2]).hi, 5);
        assert_eq!(m.var(vs[1]).name, "X[1]");
    }

    #[test]
    fn require_scheduled_forbids_zero() {
        let mut b = ModelBuilder::new("t", 3);
        let vs = b.slot_vars("X", 2);
        b.require_scheduled(&vs);
        let m = b.build();
        assert!(m.check(&[0, 1]).is_err());
        assert!(m.check(&[1, 1]).is_ok());
    }

    #[test]
    fn completion_objective_prefers_early_slots() {
        let mut b = ModelBuilder::new("t", 3);
        let vs = b.slot_vars("X", 2);
        b.completion_objective(&vs, &[1, 1], 100);
        let m = b.build();
        assert!(m.cost(&[1, 1]) < m.cost(&[3, 3]));
        assert!(m.cost(&[3, 3]) < m.cost(&[0, 3]), "unscheduled is worst");
    }

    #[test]
    fn max_spread_fixed_point() {
        let mut b = ModelBuilder::new("t", 2);
        let vs = b.slot_vars("X", 2);
        b.max_spread("tz", vs, &[-5.0, -5.5], 0.5);
        let m = b.build();
        assert!(m.check(&[1, 1]).is_ok(), "spread exactly 0.5 allowed");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        ModelBuilder::new("t", 0);
    }

    #[test]
    fn blocked_capacity_groups_slots_into_granules() {
        // Weekly cap of 1 over daily slots: two nodes in the same 7-slot
        // week violate; one per week passes.
        let mut b = ModelBuilder::new("t", 14);
        let vs = b.slot_vars("X", 2);
        b.capacity_blocked("weekly", vs, vec![1, 1], 1, 7);
        let m = b.build();
        assert!(m.check(&[1, 5]).is_err(), "slots 1 and 5 share week 0");
        assert!(
            m.check(&[1, 8]).is_ok(),
            "slots 1 and 8 are different weeks"
        );
        assert!(m.check(&[7, 8]).is_ok(), "week boundary at slot 7/8");
    }
}
