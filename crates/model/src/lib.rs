//! # cornet-model
//!
//! Constraint-model intermediate representation — CORNET's stand-in for
//! MiniZinc (§3.3).
//!
//! The paper translates high-level scheduling intent into MiniZinc models
//! solved by CP/MIP solvers. We reproduce that pipeline with an in-memory
//! IR: integer decision variables (one slot-assignment variable per
//! schedulable unit, value 0 = unscheduled) plus the global constraint
//! families the six intent templates need, and a cost-table objective that
//! encodes the paper's `BIGM · conflicts − completion-reward` objective
//! (Listing 2's `solve minimize`).
//!
//! The IR serves three consumers:
//!
//! * [`emit`] renders the model as MiniZinc text (Appendix B parity);
//! * `cornet-solver` solves it with propagation + branch & bound;
//! * [`Model::stats`] reports variable/constraint counts and density — the
//!   quantities the paper discusses when comparing sparse vs dense
//!   translations (§3.3.2).

#![forbid(unsafe_code)]
pub mod builder;
pub mod constraint;
pub mod emit;
pub mod objective;
pub mod stats;

pub use builder::ModelBuilder;
pub use constraint::{CmpOp, Constraint, LinTerm};
pub use objective::{Objective, VarCost};
pub use stats::ModelStats;

use serde::{Deserialize, Serialize};

/// Handle to a decision variable inside a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// Vector index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An integer decision variable with a contiguous initial domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntVar {
    /// Name used in emitted MiniZinc and diagnostics.
    pub name: String,
    /// Smallest domain value (inclusive).
    pub lo: i64,
    /// Largest domain value (inclusive).
    pub hi: i64,
}

impl IntVar {
    /// Domain width.
    pub fn domain_size(&self) -> usize {
        (self.hi - self.lo + 1).max(0) as usize
    }
}

/// A complete constraint model: variables, constraints, objective.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Model {
    /// Model name (appears in emitted text).
    pub name: String,
    /// Decision variables.
    pub vars: Vec<IntVar>,
    /// Constraints over the variables.
    pub constraints: Vec<Constraint>,
    /// Minimization objective (empty objective = satisfaction problem).
    pub objective: Objective,
}

impl Model {
    /// Empty model with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a variable with domain `lo..=hi` and return its handle.
    pub fn add_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> VarId {
        assert!(lo <= hi, "empty initial domain");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(IntVar {
            name: name.into(),
            lo,
            hi,
        });
        id
    }

    /// Add a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Borrow a variable definition.
    pub fn var(&self, id: VarId) -> &IntVar {
        &self.vars[id.index()]
    }

    /// Number of decision variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Evaluate whether a full assignment satisfies every constraint.
    ///
    /// `assignment[i]` is the value of variable `i`. This is the reference
    /// semantics the solver and all property tests validate against.
    pub fn check(&self, assignment: &[i64]) -> Result<(), String> {
        if assignment.len() != self.vars.len() {
            return Err(format!(
                "assignment has {} values for {} variables",
                assignment.len(),
                self.vars.len()
            ));
        }
        for (i, v) in self.vars.iter().enumerate() {
            let val = assignment[i];
            if val < v.lo || val > v.hi {
                return Err(format!("{} = {val} outside [{}, {}]", v.name, v.lo, v.hi));
            }
        }
        for c in &self.constraints {
            c.check(assignment)
                .map_err(|e| format!("constraint '{}': {e}", c.label()))?;
        }
        Ok(())
    }

    /// Total objective cost of a full assignment.
    pub fn cost(&self, assignment: &[i64]) -> i64 {
        self.objective.cost(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    #[test]
    fn add_and_lookup_vars() {
        let mut m = Model::new("t");
        let a = m.add_var("a", 0, 5);
        let b = m.add_var("b", 1, 3);
        assert_eq!(m.var(a).name, "a");
        assert_eq!(m.var(b).domain_size(), 3);
        assert_eq!(m.var_count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty initial domain")]
    fn inverted_domain_panics() {
        Model::new("t").add_var("a", 3, 1);
    }

    #[test]
    fn check_rejects_out_of_domain() {
        let mut m = Model::new("t");
        m.add_var("a", 0, 5);
        assert!(m.check(&[9]).is_err());
        assert!(m.check(&[3]).is_ok());
        assert!(m.check(&[]).is_err());
    }

    #[test]
    fn check_reports_constraint_label() {
        let mut m = Model::new("t");
        let a = m.add_var("a", 0, 5);
        m.add_constraint(Constraint::forbidden_value("frozen", a, 2));
        let err = m.check(&[2]).unwrap_err();
        assert!(err.contains("frozen"), "{err}");
    }
}
