//! Constraint vocabulary of the model IR.
//!
//! Each variant corresponds to a constraint family the planner's intent
//! templates translate into (§3.3.1–3.3.2). Every variant knows how to
//! *check* itself against a full assignment — the reference semantics that
//! the solver's propagators and all property tests are validated against.

use crate::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Comparison operator for linear constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `≤`
    Le,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

impl CmpOp {
    fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Le => lhs <= rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }

    /// MiniZinc spelling.
    pub fn mzn(self) -> &'static str {
        match self {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        }
    }
}

/// One `coeff · var` term of a linear expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinTerm {
    /// Coefficient.
    pub coeff: i64,
    /// Variable.
    pub var: VarId,
}

/// A constraint over slot-assignment variables.
///
/// Variables take values in `0..=T` where 0 means *unscheduled* and
/// `1..=T` are timeslots. Constraints that quantify "per slot" skip value 0
/// — an unscheduled node consumes no capacity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Weighted capacity per granule of `block` consecutive slots: for
    /// every granule `g`, `Σ weight[i] · [vars[i] ∈ g] ≤ cap(g)` — the
    /// concurrency template (Eq. 1 / Eq. 5). `block = 1` is the per-slot
    /// case; `block = 7` expresses a weekly cap over daily slots (§3.3.2's
    /// "different time granularity among constraints").
    Capacity {
        /// Human-readable provenance label.
        label: String,
        /// Participating variables.
        vars: Vec<VarId>,
        /// Per-variable weights (parallel to `vars`).
        weights: Vec<i64>,
        /// Default capacity for granules not in `slot_caps`.
        default_cap: i64,
        /// Granule-specific capacity overrides (keyed by granule index).
        slot_caps: BTreeMap<i64, i64>,
        /// Consecutive slots per granule (≥ 1).
        block: i64,
        /// Optional explicit granule id per model value (index `value−1`).
        /// When present it overrides the `(value−1)/block` bucketing —
        /// needed when model values index a *compacted* usable-slot list
        /// (excluded holidays) but granules must follow calendar weeks
        /// (§3.3.2's differing-granularity complication).
        value_granules: Option<Vec<i64>>,
    },
    /// At most `cap` *distinct groups* may occupy any single slot — the
    /// concurrency template applied to a non-ESA attribute through linking
    /// variables (Eq. 2–3: `y_mt ≥ x_it`, `Σ_m y_mt ≤ cap`).
    DistinctGroups {
        /// Provenance label.
        label: String,
        /// Participating variables.
        vars: Vec<VarId>,
        /// Group index of each variable (parallel to `vars`).
        group_of: Vec<usize>,
        /// Maximum distinct groups per slot.
        cap: i64,
    },
    /// All variables must take the same value — the consistency template
    /// (co-located 4G/5G upgrades deployed together, §3.3.1).
    SameValue {
        /// Provenance label.
        label: String,
        /// Variables forced equal.
        vars: Vec<VarId>,
    },
    /// Scheduled variables sharing a slot must have metric values within
    /// `max_distance` — the uniformity template (Listing 2's timezone
    /// constraint with `max_distance_ctr1`).
    MaxSpread {
        /// Provenance label.
        label: String,
        /// Participating variables.
        vars: Vec<VarId>,
        /// Metric value of each variable ×1000 (fixed point, so UTC
        /// offsets like +5.5 stay exact and the IR stays integral).
        metric_milli: Vec<i64>,
        /// Maximum allowed spread ×1000 within one slot.
        max_distance_milli: i64,
    },
    /// Slot intervals of different groups must not interleave — the
    /// localize template (Listing 2's MARKET_START/END disjunction).
    NonInterleaved {
        /// Provenance label.
        label: String,
        /// Participating variables.
        vars: Vec<VarId>,
        /// Group index of each variable.
        group_of: Vec<usize>,
    },
    /// A single variable must not take a value — frozen elements and
    /// zero-tolerance ticket conflicts.
    ForbiddenValue {
        /// Provenance label.
        label: String,
        /// Constrained variable.
        var: VarId,
        /// Forbidden value.
        value: i64,
    },
    /// Generic linear constraint `Σ coeff·var ⋈ rhs` — the fallback the
    /// paper's dense translation strategy produces (Eq. 4).
    Linear {
        /// Provenance label.
        label: String,
        /// Terms of the sum.
        terms: Vec<LinTerm>,
        /// Comparison operator.
        cmp: CmpOp,
        /// Right-hand side.
        rhs: i64,
    },
}

impl Constraint {
    /// Convenience constructor for [`Constraint::ForbiddenValue`].
    pub fn forbidden_value(label: impl Into<String>, var: VarId, value: i64) -> Self {
        Constraint::ForbiddenValue {
            label: label.into(),
            var,
            value,
        }
    }

    /// Provenance label of the constraint.
    pub fn label(&self) -> &str {
        match self {
            Constraint::Capacity { label, .. }
            | Constraint::DistinctGroups { label, .. }
            | Constraint::SameValue { label, .. }
            | Constraint::MaxSpread { label, .. }
            | Constraint::NonInterleaved { label, .. }
            | Constraint::ForbiddenValue { label, .. }
            | Constraint::Linear { label, .. } => label,
        }
    }

    /// Variables the constraint mentions (with repetition).
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Constraint::Capacity { vars, .. }
            | Constraint::DistinctGroups { vars, .. }
            | Constraint::SameValue { vars, .. }
            | Constraint::MaxSpread { vars, .. }
            | Constraint::NonInterleaved { vars, .. } => vars.clone(),
            Constraint::ForbiddenValue { var, .. } => vec![*var],
            Constraint::Linear { terms, .. } => terms.iter().map(|t| t.var).collect(),
        }
    }

    /// For a [`Constraint::Capacity`]: the granule a *scheduled* value
    /// (`> 0`) lands in. `None` for other constraint kinds. Exposed so
    /// the planner's cross-shard reconciliation can track loads with the
    /// exact bucketing `check` uses.
    pub fn capacity_granule(&self, value: i64) -> Option<i64> {
        match self {
            Constraint::Capacity {
                block,
                value_granules,
                ..
            } => Some(match value_granules {
                Some(vg) => vg[(value - 1) as usize],
                None => (value - 1) / (*block).max(1),
            }),
            _ => None,
        }
    }

    /// For a [`Constraint::Capacity`]: the capacity of `granule` after
    /// per-granule overrides. `None` for other constraint kinds.
    pub fn capacity_of_granule(&self, granule: i64) -> Option<i64> {
        match self {
            Constraint::Capacity {
                default_cap,
                slot_caps,
                ..
            } => Some(slot_caps.get(&granule).copied().unwrap_or(*default_cap)),
            _ => None,
        }
    }

    /// Check the constraint against a full assignment.
    pub fn check(&self, a: &[i64]) -> Result<(), String> {
        match self {
            Constraint::Capacity {
                vars,
                weights,
                default_cap,
                slot_caps,
                block,
                value_granules,
                ..
            } => {
                let block = (*block).max(1);
                let granule = |val: i64| -> i64 {
                    match value_granules {
                        Some(vg) => vg[(val - 1) as usize],
                        None => (val - 1) / block,
                    }
                };
                let mut load: BTreeMap<i64, i64> = BTreeMap::new();
                for (v, w) in vars.iter().zip(weights) {
                    let val = a[v.index()];
                    if val > 0 {
                        *load.entry(granule(val)).or_default() += w;
                    }
                }
                for (granule, l) in load {
                    let cap = slot_caps.get(&granule).copied().unwrap_or(*default_cap);
                    if l > cap {
                        return Err(format!("granule {granule} load {l} exceeds cap {cap}"));
                    }
                }
                Ok(())
            }
            Constraint::DistinctGroups {
                vars,
                group_of,
                cap,
                ..
            } => {
                let mut groups: BTreeMap<i64, std::collections::BTreeSet<usize>> = BTreeMap::new();
                for (v, g) in vars.iter().zip(group_of) {
                    let val = a[v.index()];
                    if val > 0 {
                        groups.entry(val).or_default().insert(*g);
                    }
                }
                for (slot, gs) in groups {
                    if gs.len() as i64 > *cap {
                        return Err(format!(
                            "slot {slot} touches {} distinct groups, cap {cap}",
                            gs.len()
                        ));
                    }
                }
                Ok(())
            }
            Constraint::SameValue { vars, .. } => {
                let mut it = vars.iter();
                if let Some(first) = it.next() {
                    let v0 = a[first.index()];
                    for v in it {
                        if a[v.index()] != v0 {
                            return Err(format!("values differ: {} vs {}", v0, a[v.index()]));
                        }
                    }
                }
                Ok(())
            }
            Constraint::MaxSpread {
                vars,
                metric_milli,
                max_distance_milli,
                ..
            } => {
                let mut range: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
                for (v, m) in vars.iter().zip(metric_milli) {
                    let val = a[v.index()];
                    if val > 0 {
                        let e = range.entry(val).or_insert((*m, *m));
                        e.0 = e.0.min(*m);
                        e.1 = e.1.max(*m);
                    }
                }
                for (slot, (lo, hi)) in range {
                    if hi - lo > *max_distance_milli {
                        return Err(format!(
                            "slot {slot} spread {} exceeds {max_distance_milli}",
                            hi - lo
                        ));
                    }
                }
                Ok(())
            }
            Constraint::NonInterleaved { vars, group_of, .. } => {
                let n_groups = group_of.iter().copied().max().map_or(0, |m| m + 1);
                let mut intervals = vec![(i64::MAX, i64::MIN); n_groups];
                for (v, g) in vars.iter().zip(group_of) {
                    let val = a[v.index()];
                    if val > 0 {
                        intervals[*g].0 = intervals[*g].0.min(val);
                        intervals[*g].1 = intervals[*g].1.max(val);
                    }
                }
                let mut used: Vec<(i64, i64, usize)> = intervals
                    .iter()
                    .enumerate()
                    .filter(|(_, (lo, _))| *lo != i64::MAX)
                    .map(|(g, (lo, hi))| (*lo, *hi, g))
                    .collect();
                used.sort();
                for pair in used.windows(2) {
                    // Strict interleaving check: intervals may share a
                    // boundary slot (the heuristic packs group tails into
                    // leftover capacity) but must not properly overlap.
                    if pair[1].0 < pair[0].1 {
                        return Err(format!(
                            "groups {} and {} interleave: [{},{}] vs [{},{}]",
                            pair[0].2, pair[1].2, pair[0].0, pair[0].1, pair[1].0, pair[1].1
                        ));
                    }
                }
                Ok(())
            }
            Constraint::ForbiddenValue { var, value, .. } => {
                if a[var.index()] == *value {
                    Err(format!("variable takes forbidden value {value}"))
                } else {
                    Ok(())
                }
            }
            Constraint::Linear {
                terms, cmp, rhs, ..
            } => {
                let lhs: i64 = terms.iter().map(|t| t.coeff * a[t.var.index()]).sum();
                if cmp.holds(lhs, *rhs) {
                    Ok(())
                } else {
                    Err(format!("{lhs} {} {rhs} violated", cmp.mzn()))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: u32) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    #[test]
    fn capacity_counts_weighted_load_per_slot() {
        let c = Constraint::Capacity {
            label: "cap".into(),
            vars: vars(3),
            weights: vec![1, 2, 1],
            default_cap: 2,
            slot_caps: BTreeMap::new(),
            block: 1,
            value_granules: None,
        };
        assert!(c.check(&[1, 2, 2]).is_err(), "slot 2 load 3 > 2");
        assert!(c.check(&[1, 2, 1]).is_ok());
        assert!(c.check(&[0, 0, 0]).is_ok(), "unscheduled consumes nothing");
    }

    #[test]
    fn capacity_slot_overrides() {
        // Keys are granule indices: with block = 1, slot t → granule t-1.
        let mut slot_caps = BTreeMap::new();
        slot_caps.insert(0, 0);
        let c = Constraint::Capacity {
            label: "cap".into(),
            vars: vars(1),
            weights: vec![1],
            default_cap: 10,
            slot_caps,
            block: 1,
            value_granules: None,
        };
        assert!(c.check(&[1]).is_err(), "slot 1 has cap 0");
        assert!(c.check(&[2]).is_ok());
    }

    #[test]
    fn distinct_groups_cap() {
        let c = Constraint::DistinctGroups {
            label: "mkt".into(),
            vars: vars(4),
            group_of: vec![0, 0, 1, 2],
            cap: 2,
        };
        assert!(c.check(&[1, 1, 1, 2]).is_ok(), "slot1 has groups {{0,1}}");
        assert!(c.check(&[1, 1, 1, 1]).is_err(), "slot1 has 3 groups");
    }

    #[test]
    fn same_value() {
        let c = Constraint::SameValue {
            label: "usid".into(),
            vars: vars(3),
        };
        assert!(c.check(&[4, 4, 4]).is_ok());
        assert!(c.check(&[4, 4, 5]).is_err());
    }

    #[test]
    fn max_spread_timezones() {
        // Offsets -5, -6, -8 (milli). Max distance 1 hour.
        let c = Constraint::MaxSpread {
            label: "tz".into(),
            vars: vars(3),
            metric_milli: vec![-5000, -6000, -8000],
            max_distance_milli: 1000,
        };
        assert!(c.check(&[1, 1, 2]).is_ok(), "-5 and -6 are adjacent");
        assert!(c.check(&[1, 2, 1]).is_err(), "-5 and -8 are 3 apart");
        assert!(
            c.check(&[1, 0, 1]).is_err(),
            "unscheduled var doesn't rescue spread"
        );
    }

    #[test]
    fn non_interleaved_groups() {
        let c = Constraint::NonInterleaved {
            label: "localize".into(),
            vars: vars(4),
            group_of: vec![0, 0, 1, 1],
        };
        assert!(c.check(&[1, 2, 3, 4]).is_ok());
        assert!(
            c.check(&[1, 3, 2, 4]).is_err(),
            "group1 slot2 inside group0 [1,3]"
        );
        assert!(
            c.check(&[1, 2, 2, 3]).is_ok(),
            "shared boundary slot allowed"
        );
        assert!(c.check(&[0, 0, 1, 2]).is_ok(), "empty group ignored");
    }

    #[test]
    fn linear_ops() {
        let t = |coeff, var| LinTerm {
            coeff,
            var: VarId(var),
        };
        let c = Constraint::Linear {
            label: "lin".into(),
            terms: vec![t(2, 0), t(-1, 1)],
            cmp: CmpOp::Le,
            rhs: 3,
        };
        assert!(c.check(&[1, 0]).is_ok()); // 2 <= 3
        assert!(c.check(&[3, 1]).is_err()); // 5 > 3
        let eq = Constraint::Linear {
            label: "eq".into(),
            terms: vec![t(1, 0)],
            cmp: CmpOp::Eq,
            rhs: 2,
        };
        assert!(eq.check(&[2, 0]).is_ok());
        assert!(eq.check(&[1, 0]).is_err());
    }

    #[test]
    fn vars_listing() {
        let c = Constraint::forbidden_value("f", VarId(3), 1);
        assert_eq!(c.vars(), vec![VarId(3)]);
        assert_eq!(c.label(), "f");
    }
}
