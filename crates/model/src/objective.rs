//! Minimization objective as per-variable cost tables.
//!
//! Listing 2's objective is `BIGM · conflicts − Σ (T−t+1) · scheduled`,
//! i.e. every (variable, value) pair carries a cost: conflicting slots cost
//! `BIGM`, later slots cost more than earlier ones, and staying unscheduled
//! costs most of all. A per-variable cost of `slope · value + table[value]`
//! expresses all of these exactly while keeping the solver's lower-bound
//! computation trivial (sum of per-variable domain minima).

use crate::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cost contribution of one variable: `slope · value + table[value]`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarCost {
    /// Linear coefficient on the assigned value (completion-time pressure:
    /// later slots cost more). Usually the node weight.
    pub slope: i64,
    /// Additive cost overrides for specific values (conflict penalties at
    /// busy slots, the unscheduled penalty at value 0).
    pub table: BTreeMap<i64, i64>,
}

impl VarCost {
    /// Cost of assigning `value` to this variable.
    pub fn cost_of(&self, value: i64) -> i64 {
        self.slope * value + self.table.get(&value).copied().unwrap_or(0)
    }
}

/// Total minimization objective.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Objective {
    /// Per-variable cost tables, keyed by variable.
    pub terms: BTreeMap<VarId, VarCost>,
    /// Constant offset (keeps emitted objectives comparable to the paper's).
    pub constant: i64,
}

impl Objective {
    /// True when no variable carries a cost (pure satisfaction problem).
    pub fn is_trivial(&self) -> bool {
        self.terms.is_empty() && self.constant == 0
    }

    /// Add `slope · value` pressure to a variable (accumulates).
    pub fn add_slope(&mut self, var: VarId, slope: i64) {
        self.terms.entry(var).or_default().slope += slope;
    }

    /// Add a one-off cost for a specific value of a variable (accumulates).
    pub fn add_value_cost(&mut self, var: VarId, value: i64, cost: i64) {
        *self
            .terms
            .entry(var)
            .or_default()
            .table
            .entry(value)
            .or_default() += cost;
    }

    /// Cost of one variable taking one value.
    pub fn var_cost(&self, var: VarId, value: i64) -> i64 {
        self.terms.get(&var).map_or(0, |c| c.cost_of(value))
    }

    /// Total cost of a full assignment.
    pub fn cost(&self, assignment: &[i64]) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(var, c)| c.cost_of(assignment[var.index()]))
                .sum::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_cost_composition() {
        let mut o = Objective::default();
        o.add_slope(VarId(0), 2);
        o.add_value_cost(VarId(0), 3, 100);
        assert_eq!(o.var_cost(VarId(0), 1), 2);
        assert_eq!(o.var_cost(VarId(0), 3), 106);
        assert_eq!(o.var_cost(VarId(1), 5), 0, "unknown var costs nothing");
    }

    #[test]
    fn total_cost() {
        let mut o = Objective {
            constant: 10,
            ..Default::default()
        };
        o.add_slope(VarId(0), 1);
        o.add_slope(VarId(1), 1);
        o.add_value_cost(VarId(1), 0, 1000); // unscheduled penalty
        assert_eq!(o.cost(&[2, 3]), 10 + 2 + 3);
        assert_eq!(o.cost(&[2, 0]), 10 + 2 + 1000);
    }

    #[test]
    fn accumulation() {
        let mut o = Objective::default();
        o.add_value_cost(VarId(0), 1, 5);
        o.add_value_cost(VarId(0), 1, 7);
        assert_eq!(o.var_cost(VarId(0), 1), 12);
        o.add_slope(VarId(0), 1);
        o.add_slope(VarId(0), 2);
        assert_eq!(o.var_cost(VarId(0), 1), 15);
    }

    #[test]
    fn trivial_detection() {
        let mut o = Objective::default();
        assert!(o.is_trivial());
        o.add_slope(VarId(0), 1);
        assert!(!o.is_trivial());
    }
}
