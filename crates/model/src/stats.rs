//! Model statistics: the quantities the paper weighs when choosing between
//! translation strategies (§3.3.2 — "compute and compare the density of
//! several alternative representations").

use crate::constraint::Constraint;
use crate::Model;
use serde::Serialize;
use std::collections::BTreeMap;

/// Summary statistics of a constraint model.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ModelStats {
    /// Number of decision variables.
    pub vars: usize,
    /// Sum of domain sizes (search-space granularity).
    pub total_domain: usize,
    /// Number of constraints.
    pub constraints: usize,
    /// Constraint count per kind.
    pub by_kind: BTreeMap<String, usize>,
    /// Total variable references across constraints (model "density").
    pub var_references: usize,
    /// Average variable references per constraint.
    pub density: f64,
}

impl Model {
    /// Compute summary statistics.
    pub fn stats(&self) -> ModelStats {
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        let mut var_references = 0;
        for c in &self.constraints {
            let kind = match c {
                Constraint::Capacity { .. } => "capacity",
                Constraint::DistinctGroups { .. } => "distinct_groups",
                Constraint::SameValue { .. } => "same_value",
                Constraint::MaxSpread { .. } => "max_spread",
                Constraint::NonInterleaved { .. } => "non_interleaved",
                Constraint::ForbiddenValue { .. } => "forbidden_value",
                Constraint::Linear { .. } => "linear",
            };
            *by_kind.entry(kind.to_owned()).or_default() += 1;
            var_references += c.vars().len();
        }
        let constraints = self.constraints.len();
        ModelStats {
            vars: self.vars.len(),
            total_domain: self.vars.iter().map(|v| v.domain_size()).sum(),
            constraints,
            by_kind,
            var_references,
            density: if constraints == 0 {
                0.0
            } else {
                var_references as f64 / constraints as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ModelBuilder;

    #[test]
    fn stats_count_kinds_and_density() {
        let mut b = ModelBuilder::new("t", 5);
        let vs = b.slot_vars("X", 4);
        b.capacity("cap", vs.clone(), vec![1; 4], 2);
        b.same_value("cons", vs[..2].to_vec());
        b.forbid("frozen", vs[3], 1);
        let m = b.build();
        let s = m.stats();
        assert_eq!(s.vars, 4);
        assert_eq!(s.total_domain, 4 * 6);
        assert_eq!(s.constraints, 3);
        assert_eq!(s.by_kind["capacity"], 1);
        assert_eq!(s.by_kind["same_value"], 1);
        assert_eq!(s.by_kind["forbidden_value"], 1);
        assert_eq!(s.var_references, 4 + 2 + 1);
        assert!((s.density - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_model_stats() {
        let m = crate::Model::new("empty");
        let s = m.stats();
        assert_eq!(s.vars, 0);
        assert_eq!(s.density, 0.0);
    }
}
