//! KPI synthesis and the KPI catalog.
//!
//! The verifier needs time-series with *known* ground truth: §4.3 asks
//! operations teams to label 60 impacts and checks the verifier finds all
//! of them. Here the labels come for free — impacts are injected into the
//! synthesized series ([`InjectedImpact`]), so accuracy experiments can be
//! scored exactly.
//!
//! The catalog side reproduces Table 5's KPI inventory: 349 KPI equations
//! in four groups (scorecard, level-1..3) spread over 48 database tables
//! with no-join / 2-way / 3-way join structure.

use crate::rng::{normal, seeded};
use cornet_stats::TimeSeries;
use cornet_types::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of an injected ground-truth impact.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ImpactKind {
    /// Sudden persistent level change by `magnitude` × baseline
    /// (positive = improvement for upward-good KPIs).
    LevelShift,
    /// Gradual drift reaching `magnitude` × baseline at series end.
    Ramp,
    /// Transient spike lasting one day then reverting.
    TransientSpike,
}

/// One ground-truth impact injected into the synthesized KPI feed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectedImpact {
    /// Node the change landed on.
    pub node: NodeId,
    /// KPI name the impact affects.
    pub kpi: String,
    /// Carrier frequency index the impact is confined to, if any
    /// (Fig. 2's per-carrier level changes).
    pub carrier: Option<usize>,
    /// Minute the change executed.
    pub at_minute: u64,
    /// Impact shape.
    pub kind: ImpactKind,
    /// Relative magnitude (fraction of baseline, signed).
    pub magnitude: f64,
}

/// Deterministic KPI time-series synthesizer.
#[derive(Clone, Debug, PartialEq)]
pub struct KpiGenerator {
    /// Master seed; sub-streams derive from (seed, node, kpi, carrier).
    pub seed: u64,
    /// First sample timestamp (minutes since epoch).
    pub start_minute: u64,
    /// Sampling period in minutes (e.g. 60 for hourly KPIs).
    pub step_minutes: u64,
    /// Relative noise level (fraction of baseline).
    pub noise: f64,
}

impl Default for KpiGenerator {
    fn default() -> Self {
        KpiGenerator {
            seed: 1,
            start_minute: 0,
            step_minutes: 60,
            noise: 0.03,
        }
    }
}

/// FNV mix of the identifying tuple into a sub-seed.
fn sub_seed(seed: u64, node: NodeId, kpi: &str, carrier: Option<usize>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    let mut feed = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    feed(node.0 as u64);
    for byte in kpi.bytes() {
        feed(byte as u64);
    }
    feed(carrier.map_or(u64::MAX, |c| c as u64));
    h
}

impl KpiGenerator {
    /// Baseline level for a (node, kpi, carrier) stream.
    ///
    /// Carrier index raises throughput-style baselines (Fig. 2: CF-5 beats
    /// CF-1); node identity adds site-to-site diversity (urban vs rural).
    pub fn baseline(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> f64 {
        let mut rng = seeded(sub_seed(self.seed, node, kpi, carrier));
        let site_factor = rng.random_range(0.7..1.3);
        let carrier_factor = carrier.map_or(1.0, |c| 1.0 + 0.35 * c as f64);
        100.0 * site_factor * carrier_factor
    }

    /// Synthesize `len` samples for one (node, kpi, carrier) stream with
    /// the given injected impacts applied.
    pub fn series(
        &self,
        node: NodeId,
        kpi: &str,
        carrier: Option<usize>,
        len: usize,
        impacts: &[InjectedImpact],
    ) -> TimeSeries {
        let mut rng = seeded(sub_seed(self.seed, node, kpi, carrier).wrapping_add(1));
        let base = self.baseline(node, kpi, carrier);
        let relevant: Vec<&InjectedImpact> = impacts
            .iter()
            .filter(|i| {
                i.node == node && i.kpi == kpi && (i.carrier.is_none() || i.carrier == carrier)
            })
            .collect();
        let mut values = Vec::with_capacity(len);
        for k in 0..len {
            let minute = self.start_minute + k as u64 * self.step_minutes;
            // Diurnal seasonality: busy-hour bump, ±8% of baseline.
            let phase = (minute % 1440) as f64 / 1440.0 * std::f64::consts::TAU;
            let mut v = base * (1.0 + 0.08 * phase.sin());
            for imp in &relevant {
                if minute < imp.at_minute {
                    continue;
                }
                match imp.kind {
                    ImpactKind::LevelShift => v += base * imp.magnitude,
                    ImpactKind::Ramp => {
                        let end = self.start_minute + len as u64 * self.step_minutes;
                        let span = (end - imp.at_minute).max(1) as f64;
                        let progress = (minute - imp.at_minute) as f64 / span;
                        v += base * imp.magnitude * progress;
                    }
                    ImpactKind::TransientSpike => {
                        if minute < imp.at_minute + 1440 {
                            v += base * imp.magnitude;
                        }
                    }
                }
            }
            v += normal(&mut rng, 0.0, base * self.noise);
            values.push(v.max(0.0));
        }
        TimeSeries::new(self.start_minute, self.step_minutes, values)
    }
}

/// A KPI equation definition in the catalog.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KpiDef {
    /// KPI name, e.g. `"L1_voice_drop_rate_017"`.
    pub name: String,
    /// Group (Table 5 row): `"scorecard"`, `"level1"`, `"level2"`, `"level3"`.
    pub group: String,
    /// Synthetic counter equation, e.g. `"ctr_a / (ctr_a + ctr_b)"`.
    pub equation: String,
    /// Source table index within the catalog.
    pub table: usize,
}

/// A source table and how many joins computing from it requires.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KpiTable {
    /// Table index.
    pub index: usize,
    /// Owning group.
    pub group: String,
    /// Number of joined tables: 1 = no join, 2 = 2-way, 3 = 3-way.
    pub join_width: usize,
}

/// The Table 5 KPI catalog: groups, equations, tables, join structure.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KpiCatalog {
    /// All KPI definitions.
    pub kpis: Vec<KpiDef>,
    /// All source tables.
    pub tables: Vec<KpiTable>,
}

impl KpiCatalog {
    /// Build the catalog with exactly Table 5's shape:
    ///
    /// | group     | KPIs | tables | no-join | 2-way | 3-way |
    /// |-----------|------|--------|---------|-------|-------|
    /// | scorecard |    9 |      6 |       6 |     0 |     0 |
    /// | level1    |   58 |     17 |      14 |     3 |     0 |
    /// | level2    |  123 |     14 |      10 |     3 |     1 |
    /// | level3    |  159 |     17 |      16 |     1 |     0 |
    /// | **all**   |  349 | **48** |      40 |     7 |     1 |
    ///
    /// Note the "All" row counts *distinct* tables: the per-group rows sum
    /// to 54, so six tables are shared across groups. We model that by
    /// pointing the scorecard's nine headline KPIs at six of level-1's
    /// no-join tables — scorecards are summaries of level-1 detail.
    pub fn table5() -> Self {
        // Distinct tables, owned by the three detail levels (48 total).
        let owned: [(&str, &[usize]); 3] = [
            (
                "level1",
                &[1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2],
            ),
            ("level2", &[1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 3]),
            (
                "level3",
                &[1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2],
            ),
        ];
        let mut cat = KpiCatalog::default();
        let mut table_idx = 0;
        let mut first_of = std::collections::BTreeMap::new();
        let mut count_of = std::collections::BTreeMap::new();
        for (group, joins) in owned {
            first_of.insert(group, table_idx);
            count_of.insert(group, joins.len());
            for &w in joins {
                cat.tables.push(KpiTable {
                    index: table_idx,
                    group: group.to_owned(),
                    join_width: w,
                });
                table_idx += 1;
            }
        }
        let kpi_counts = [
            ("scorecard", 9usize),
            ("level1", 58),
            ("level2", 123),
            ("level3", 159),
        ];
        for (group, kpi_count) in kpi_counts {
            // Scorecard KPIs reference level-1's first six (no-join) tables.
            let (first, cycle) = if group == "scorecard" {
                (first_of["level1"], 6)
            } else {
                (first_of[group], count_of[group])
            };
            for k in 0..kpi_count {
                cat.kpis.push(KpiDef {
                    name: format!("{group}_kpi_{k:03}"),
                    group: group.to_owned(),
                    equation: format!("100 * ctr_{k}_num / max(ctr_{k}_den, 1)"),
                    table: first + k % cycle,
                });
            }
        }
        cat
    }

    /// Distinct tables referenced by one KPI group — Table 5's per-row
    /// "Tables" column (scorecard reaches into level-1's tables).
    pub fn group_tables(&self, group: &str) -> Vec<&KpiTable> {
        self.tables_for(&self.group(group))
    }

    /// KPIs of one group.
    pub fn group(&self, group: &str) -> Vec<&KpiDef> {
        self.kpis.iter().filter(|k| k.group == group).collect()
    }

    /// Distinct tables reached by a set of KPIs, with join widths — the
    /// workload determinant of Fig. 10's verification-time experiment.
    pub fn tables_for<'a>(&'a self, kpis: &[&'a KpiDef]) -> Vec<&'a KpiTable> {
        let mut idx: Vec<usize> = kpis.iter().map(|k| k.table).collect();
        idx.sort_unstable();
        idx.dedup();
        idx.iter().map(|i| &self.tables[*i]).collect()
    }

    /// Total join work units for a KPI set: Σ join_width over its tables.
    pub fn join_work(&self, kpis: &[&KpiDef]) -> usize {
        self.tables_for(kpis).iter().map(|t| t.join_width).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_deterministic() {
        let g = KpiGenerator::default();
        let a = g.series(NodeId(3), "throughput", Some(2), 100, &[]);
        let b = g.series(NodeId(3), "throughput", Some(2), 100, &[]);
        assert_eq!(a, b);
        let c = g.series(NodeId(4), "throughput", Some(2), 100, &[]);
        assert_ne!(a.values, c.values, "different nodes differ");
    }

    #[test]
    fn carrier_frequencies_order_throughput() {
        // Fig. 2: higher carriers → better throughput.
        let g = KpiGenerator::default();
        let mean = |c: usize| {
            let s = g.series(NodeId(1), "dl_throughput", Some(c), 200, &[]);
            s.values.iter().sum::<f64>() / s.values.len() as f64
        };
        assert!(mean(4) > mean(0) * 1.5, "CF-5 should clearly beat CF-1");
    }

    #[test]
    fn level_shift_lands_at_change_time() {
        let g = KpiGenerator {
            noise: 0.01,
            ..Default::default()
        };
        let imp = InjectedImpact {
            node: NodeId(1),
            kpi: "drop_rate".to_string(),
            carrier: None,
            at_minute: 60 * 100,
            kind: ImpactKind::LevelShift,
            magnitude: 0.5,
        };
        let s = g.series(NodeId(1), "drop_rate", None, 200, &[imp]);
        let pre: f64 = s.values[..100].iter().sum::<f64>() / 100.0;
        let post: f64 = s.values[100..].iter().sum::<f64>() / 100.0;
        assert!(post > pre * 1.3, "pre {pre} post {post}");
    }

    #[test]
    fn carrier_confined_impact_spares_other_carriers() {
        let g = KpiGenerator {
            noise: 0.01,
            ..Default::default()
        };
        let imp = InjectedImpact {
            node: NodeId(2),
            kpi: "thr".into(),
            carrier: Some(2),
            at_minute: 60 * 50,
            kind: ImpactKind::LevelShift,
            magnitude: -0.4,
        };
        let hit = g.series(NodeId(2), "thr", Some(2), 100, std::slice::from_ref(&imp));
        let spared = g.series(NodeId(2), "thr", Some(1), 100, std::slice::from_ref(&imp));
        let drop = |s: &TimeSeries| {
            s.values[60..].iter().sum::<f64>() / s.values[..40].iter().sum::<f64>()
        };
        assert!(drop(&hit) < 0.9);
        assert!(drop(&spared) > 0.9);
    }

    #[test]
    fn ramp_grows_over_time() {
        let g = KpiGenerator {
            noise: 0.0,
            ..Default::default()
        };
        let imp = InjectedImpact {
            node: NodeId(1),
            kpi: "mem".into(),
            carrier: None,
            at_minute: 0,
            kind: ImpactKind::Ramp,
            magnitude: 1.0,
        };
        let s = g.series(NodeId(1), "mem", None, 100, &[imp]);
        assert!(s.values[90] > s.values[10] * 1.3);
    }

    #[test]
    fn transient_spike_reverts() {
        let g = KpiGenerator {
            noise: 0.0,
            ..Default::default()
        };
        let imp = InjectedImpact {
            node: NodeId(1),
            kpi: "alarms".into(),
            carrier: None,
            at_minute: 60 * 24, // day 2
            kind: ImpactKind::TransientSpike,
            magnitude: 2.0,
        };
        let s = g.series(NodeId(1), "alarms", None, 24 * 4, &[imp]); // 4 days hourly
        let day = |d: usize| s.values[d * 24..(d + 1) * 24].iter().sum::<f64>() / 24.0;
        assert!(day(1) > day(0) * 2.0, "spike day");
        assert!(day(3) < day(0) * 1.3, "reverted");
    }

    #[test]
    fn catalog_matches_table5_exactly() {
        let cat = KpiCatalog::table5();
        assert_eq!(cat.kpis.len(), 349);
        assert_eq!(cat.tables.len(), 48);
        let count = |g: &str| cat.group(g).len();
        assert_eq!(count("scorecard"), 9);
        assert_eq!(count("level1"), 58);
        assert_eq!(count("level2"), 123);
        assert_eq!(count("level3"), 159);
        // Per-row "Tables" column counts tables the group *references*.
        let joins = |g: &str, w: usize| {
            cat.group_tables(g)
                .iter()
                .filter(|t| t.join_width == w)
                .count()
        };
        assert_eq!(
            (
                joins("scorecard", 1),
                joins("scorecard", 2),
                joins("scorecard", 3)
            ),
            (6, 0, 0)
        );
        assert_eq!(
            (joins("level1", 1), joins("level1", 2), joins("level1", 3)),
            (14, 3, 0)
        );
        assert_eq!(
            (joins("level2", 1), joins("level2", 2), joins("level2", 3)),
            (10, 3, 1)
        );
        assert_eq!(
            (joins("level3", 1), joins("level3", 2), joins("level3", 3)),
            (16, 1, 0)
        );
        // The "All" row: 48 distinct tables = 40 no-join + 7 two-way + 1 three-way.
        let all = |w: usize| cat.tables.iter().filter(|t| t.join_width == w).count();
        assert_eq!((all(1), all(2), all(3)), (40, 7, 1));
        // Sharing: per-row sums exceed the distinct total by the 6 shared
        // scorecard/level-1 tables (54 vs 48).
        let row_sum: usize = ["scorecard", "level1", "level2", "level3"]
            .iter()
            .map(|g| cat.group_tables(g).len())
            .sum();
        assert_eq!(row_sum, 54);
    }

    #[test]
    fn join_work_scales_with_group_depth() {
        let cat = KpiCatalog::table5();
        let sc = cat.group("scorecard");
        let l2 = cat.group("level2");
        assert!(cat.join_work(&l2) > cat.join_work(&sc));
    }
}
