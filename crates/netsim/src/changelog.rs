//! Change-log generation and staggered roll-out curves.
//!
//! Reproduces the operational-data shapes of §2.2 and §5:
//!
//! * Table 1 — change-type mix (65.8% config changes, 24.7% software
//!   upgrades, …), per-node durations, network-wide roll-out times;
//! * Fig. 1 / Fig. 5 — staggered deployment: a small FFA, a cautious
//!   crawl/walk assessment phase, then a network-wide run phase whose tail
//!   depends on whether a conflict-aware planner (CORNET) placed the
//!   stragglers early;
//! * Table 6 — duration averages/deviations with and without CORNET's
//!   short-reservation policy for site work.

use crate::rng::{normal, seeded, weighted_pick};
use cornet_types::{ChangeTicket, ChangeType, NodeId, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-change-type parameters of the generator (Table 1 row).
///
/// Durations are a body + rare-heavy-tail mixture: most activities take
/// around `body_mean` windows, but with probability `tail_weight` a
/// blanket reservation multiplies the body by `tail_mult` — the pattern
/// behind construction work's enormous variance in Table 6 (σ 36.9 on a
/// mean of 4.1 without CORNET's short-reservation policy).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChangeTypeProfile {
    /// Change category.
    pub change_type: ChangeType,
    /// Share of all change activities (Table 1 column 1).
    pub share: f64,
    /// Typical (body) duration per node in maintenance windows.
    pub body_mean: f64,
    /// Probability of a long blanket reservation.
    pub tail_weight: f64,
    /// Multiplier range applied to the body on a tail draw.
    pub tail_mult: (f64, f64),
}

/// Generator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChangeLogConfig {
    /// RNG seed.
    pub seed: u64,
    /// Whether CORNET's reservation policy is active (Table 6 comparison).
    pub with_cornet: bool,
    /// Profiles per change type.
    pub profiles: Vec<ChangeTypeProfile>,
}

impl ChangeLogConfig {
    /// Table 1 mix with the given reservation policy. The mixture
    /// parameters are calibrated so realized moments land near the paper's
    /// Table 6 columns (means ~1.3–4.1, construction σ ~19 with CORNET vs
    /// ~37 without).
    pub fn table1(seed: u64, with_cornet: bool) -> Self {
        #[allow(clippy::type_complexity)]
        let t = |ct, share, body: f64, cornet: (f64, (f64, f64)), manual: (f64, (f64, f64))| {
            let (tail_weight, tail_mult) = if with_cornet { cornet } else { manual };
            ChangeTypeProfile {
                change_type: ct,
                share,
                body_mean: body,
                tail_weight,
                tail_mult,
            }
        };
        ChangeLogConfig {
            seed,
            with_cornet,
            profiles: vec![
                t(
                    ChangeType::SoftwareUpgrade,
                    24.67,
                    1.5,
                    (0.020, (5.0, 25.0)),
                    (0.025, (5.0, 25.0)),
                ),
                t(
                    ChangeType::ConfigChange,
                    65.82,
                    1.05,
                    (0.015, (5.0, 25.0)),
                    (0.022, (5.0, 25.0)),
                ),
                t(
                    ChangeType::NodeRetuning,
                    1.14,
                    2.5,
                    (0.020, (8.0, 22.0)),
                    (0.025, (10.0, 25.0)),
                ),
                t(
                    ChangeType::ConstructionWork,
                    8.37,
                    2.6,
                    (0.010, (16.0, 76.0)),
                    (0.004, (40.0, 240.0)),
                ),
            ],
        }
    }
}

/// Generate `n_activities` change tickets across `n_nodes` nodes over a
/// three-year window starting at `start`.
pub fn generate_change_log(
    config: &ChangeLogConfig,
    n_nodes: usize,
    n_activities: usize,
    start: SimTime,
) -> Vec<ChangeTicket> {
    assert!(n_nodes > 0, "need at least one node");
    let mut rng = seeded(config.seed);
    let weights: Vec<f64> = config.profiles.iter().map(|p| p.share).collect();
    let mut log = Vec::with_capacity(n_activities);
    for i in 0..n_activities {
        let p = &config.profiles[weighted_pick(&mut rng, &weights)];
        let body = normal(&mut rng, p.body_mean, p.body_mean * 0.3).max(0.1);
        let duration = if rng.random_bool(p.tail_weight.clamp(0.0, 1.0)) {
            body * rng.random_range(p.tail_mult.0..p.tail_mult.1)
        } else {
            body
        }
        .round()
        .max(1.0);
        let day: u64 = rng.random_range(0..3 * 365);
        log.push(ChangeTicket {
            ticket: format!("CHG{i:012}"),
            node: NodeId(rng.random_range(0..n_nodes as u32)),
            change_type: p.change_type,
            start: start.plus_days(day),
            duration_windows: duration as u32,
        });
    }
    log
}

/// Aggregate duration statistics per change type (Table 1 / Table 6 rows).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ChangeMixRow {
    /// Change category.
    pub change_type: ChangeType,
    /// Fraction of all activities, in percent.
    pub share_pct: f64,
    /// Mean duration per node in maintenance windows.
    pub avg_duration: f64,
    /// Standard deviation of the duration.
    pub std_duration: f64,
}

/// Compute the change-mix table from a log.
pub fn change_mix(log: &[ChangeTicket]) -> Vec<ChangeMixRow> {
    ChangeType::ALL
        .iter()
        .map(|&ct| {
            let durations: Vec<f64> = log
                .iter()
                .filter(|t| t.change_type == ct)
                .map(|t| t.duration_windows as f64)
                .collect();
            let avg = if durations.is_empty() {
                0.0
            } else {
                cornet_stats::mean(&durations)
            };
            let sd = cornet_stats::std_dev(&durations);
            ChangeMixRow {
                change_type: ct,
                share_pct: 100.0 * durations.len() as f64 / log.len().max(1) as f64,
                avg_duration: avg,
                std_duration: if sd.is_nan() { 0.0 } else { sd },
            }
        })
        .collect()
}

/// Which planner shaped a network-wide roll-out (Fig. 5 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutPlanner {
    /// CORNET's conflict-free global plan: compact run phase, short tail
    /// (stragglers were placed early by the global view).
    Cornet,
    /// Manual batch planning: slower ramp and a long straggler tail.
    Manual,
}

/// Staggered roll-out shape parameters (Fig. 1's phases).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RolloutConfig {
    /// RNG seed.
    pub seed: u64,
    /// Nodes changed during the First Field Application.
    pub ffa_nodes: usize,
    /// Slots spent on the FFA plus its impact assessment.
    pub ffa_slots: usize,
    /// Slots of cautious crawl/walk ramping after certification.
    pub crawl_slots: usize,
    /// Peak nodes per slot in the run phase.
    pub run_rate: usize,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            seed: 1,
            ffa_nodes: 150,
            ffa_slots: 8,
            crawl_slots: 6,
            run_rate: 1200,
        }
    }
}

/// Cumulative fraction of nodes upgraded per slot for a network-wide
/// roll-out of `total` nodes.
pub fn rollout_curve(config: &RolloutConfig, planner: RolloutPlanner, total: usize) -> Vec<f64> {
    assert!(total > 0);
    let mut rng = seeded(config.seed);
    let mut done = 0usize;
    let mut curve = Vec::new();

    // FFA: a trickle of nodes while impact is assessed.
    let ffa_total = config.ffa_nodes.min(total);
    for s in 0..config.ffa_slots {
        done = (ffa_total * (s + 1)) / config.ffa_slots;
        curve.push(done as f64 / total as f64);
    }
    // Crawl/walk: ramp from ~5% to 100% of the run rate.
    for s in 0..config.crawl_slots {
        let rate = config.run_rate * (s + 1) / (config.crawl_slots + 1) / 2;
        done = (done + rate.max(1)).min(total);
        curve.push(done as f64 / total as f64);
    }
    // Run phase.
    match planner {
        RolloutPlanner::Cornet => {
            // Global conflict-free plan: full rate until everything is done.
            while done < total {
                done = (done + config.run_rate).min(total);
                curve.push(done as f64 / total as f64);
            }
        }
        RolloutPlanner::Manual => {
            // Batch planning reaches ~93% then crawls through stragglers
            // blocked on conflicts the manual process discovers late.
            let bulk = total * 93 / 100;
            while done < bulk {
                let jitter = rng.random_range(0.6..0.95);
                done = (done + ((config.run_rate as f64 * jitter) as usize).max(1)).min(bulk);
                curve.push(done as f64 / total as f64);
            }
            while done < total {
                let tail_rate = (config.run_rate / 20).max(1);
                done = (done + tail_rate).min(total);
                curve.push(done as f64 / total as f64);
            }
        }
    }
    curve
}

/// Average network-wide roll-out windows implied by a curve — Table 1's
/// third column (slots until 100%).
pub fn rollout_windows(curve: &[f64]) -> usize {
    curve
        .iter()
        .position(|f| *f >= 1.0)
        .map_or(curve.len(), |p| p + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> SimTime {
        SimTime::from_ymd_hm(2018, 1, 1, 0, 0)
    }

    #[test]
    fn change_mix_matches_table1_shares() {
        let cfg = ChangeLogConfig::table1(42, true);
        let log = generate_change_log(&cfg, 60_000, 50_000, start());
        let mix = change_mix(&log);
        let share = |ct: ChangeType| mix.iter().find(|r| r.change_type == ct).unwrap().share_pct;
        assert!((share(ChangeType::ConfigChange) - 65.82).abs() < 2.0);
        assert!((share(ChangeType::SoftwareUpgrade) - 24.67).abs() < 2.0);
        assert!((share(ChangeType::NodeRetuning) - 1.14).abs() < 0.5);
        assert!((share(ChangeType::ConstructionWork) - 8.37).abs() < 1.0);
    }

    #[test]
    fn durations_order_like_table1() {
        let cfg = ChangeLogConfig::table1(7, true);
        let log = generate_change_log(&cfg, 60_000, 50_000, start());
        let mix = change_mix(&log);
        let avg = |ct: ChangeType| {
            mix.iter()
                .find(|r| r.change_type == ct)
                .unwrap()
                .avg_duration
        };
        assert!(avg(ChangeType::NodeRetuning) > avg(ChangeType::SoftwareUpgrade));
        assert!(avg(ChangeType::ConstructionWork) > avg(ChangeType::ConfigChange));
    }

    #[test]
    fn cornet_policy_shrinks_construction_variance() {
        // Table 6: σ(construction) 19.09 with CORNET vs 36.91 without.
        let with = generate_change_log(&ChangeLogConfig::table1(3, true), 10_000, 120_000, start());
        let without =
            generate_change_log(&ChangeLogConfig::table1(3, false), 10_000, 120_000, start());
        let sd = |log: &[ChangeTicket]| {
            change_mix(log)
                .iter()
                .find(|r| r.change_type == ChangeType::ConstructionWork)
                .unwrap()
                .std_duration
        };
        assert!(
            sd(&with) < sd(&without) * 0.8,
            "with={} without={}",
            sd(&with),
            sd(&without)
        );
    }

    #[test]
    fn rollout_curve_is_monotone_and_completes() {
        let cfg = RolloutConfig::default();
        for planner in [RolloutPlanner::Cornet, RolloutPlanner::Manual] {
            let curve = rollout_curve(&cfg, planner, 60_000);
            assert!(curve.windows(2).all(|w| w[1] >= w[0] - 1e-12), "monotone");
            assert!((curve.last().unwrap() - 1.0).abs() < 1e-12, "reaches 100%");
        }
    }

    #[test]
    fn cornet_rollout_is_faster_with_shorter_tail() {
        let cfg = RolloutConfig::default();
        let cornet = rollout_curve(&cfg, RolloutPlanner::Cornet, 60_000);
        let manual = rollout_curve(&cfg, RolloutPlanner::Manual, 60_000);
        assert!(
            rollout_windows(&cornet) < rollout_windows(&manual),
            "cornet {} vs manual {}",
            rollout_windows(&cornet),
            rollout_windows(&manual)
        );
        // Tail: slots spent above 93% completion.
        let tail = |c: &[f64]| c.iter().filter(|f| **f >= 0.93 && **f < 1.0).count();
        assert!(
            tail(&cornet) * 3 < tail(&manual),
            "manual tail should dominate"
        );
    }

    #[test]
    fn software_upgrade_rollout_near_table1_scale() {
        // Table 1: 60K+ nodes in ~63 maintenance windows.
        let cfg = RolloutConfig {
            run_rate: 1200,
            ..Default::default()
        };
        let curve = rollout_curve(&cfg, RolloutPlanner::Cornet, 60_000);
        let w = rollout_windows(&curve);
        assert!((40..=90).contains(&w), "got {w} windows");
    }

    #[test]
    fn log_nodes_stay_in_range() {
        let cfg = ChangeLogConfig::table1(1, true);
        let log = generate_change_log(&cfg, 100, 1_000, start());
        assert!(log.iter().all(|t| t.node.0 < 100));
        assert!(log.iter().all(|t| t.duration_windows >= 1));
    }
}
