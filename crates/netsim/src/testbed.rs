//! Simulated VNF testbed.
//!
//! §4.1 runs CORNET against "a testbed of virtualized network functions"
//! instantiated with OpenStack; building-block implementations were vendor
//! CLI scripts and Ansible playbooks. Our testbed holds the same observable
//! state those scripts touch — software version, health, traffic position,
//! configuration — behind a thread-safe API, with fault injection for the
//! §5.1 failure modes (SSH connectivity loss during deployment).

use crate::rng::seeded;
use cornet_types::{CornetError, NfType, Result};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fault-injection knobs (the smoltcp examples' `--drop-chance` spirit).
#[derive(Clone, Debug, PartialEq)]
pub struct TestbedConfig {
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Probability that a management-plane operation fails with an SSH
    /// connectivity error (§5.1 observed exactly this in production).
    pub ssh_failure_rate: f64,
    /// Probability a node reports unhealthy at health-check time.
    pub unhealthy_rate: f64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 1,
            ssh_failure_rate: 0.0,
            unhealthy_rate: 0.0,
        }
    }
}

/// Observable state of one VNF instance.
#[derive(Clone, Debug, PartialEq)]
pub struct VnfState {
    /// Instance name (matches the inventory record name).
    pub name: String,
    /// NF type.
    pub nf_type: NfType,
    /// Currently running software version.
    pub sw_version: String,
    /// Live/operational flag.
    pub healthy: bool,
    /// Whether traffic has been migrated away.
    pub traffic_redirected: bool,
    /// Applied configuration keys.
    pub config: BTreeMap<String, String>,
    /// Number of reboots the instance has taken.
    pub reboots: u32,
}

struct Inner {
    vnfs: BTreeMap<String, VnfState>,
    rng: StdRng,
    config: TestbedConfig,
    /// Log of management operations, for test assertions and fall-out
    /// troubleshooting (§3.4's fine-grained logging feeds off this).
    ops_log: Vec<String>,
}

/// Thread-safe simulated testbed.
#[derive(Clone)]
pub struct Testbed {
    inner: Arc<Mutex<Inner>>,
}

impl Testbed {
    /// Empty testbed with fault-injection config.
    pub fn new(config: TestbedConfig) -> Self {
        let rng = seeded(config.seed);
        Testbed {
            inner: Arc::new(Mutex::new(Inner {
                vnfs: BTreeMap::new(),
                rng,
                config,
                ops_log: Vec::new(),
            })),
        }
    }

    /// Instantiate a VNF (the OpenStack "boot" step).
    pub fn instantiate(&self, name: &str, nf_type: NfType, sw_version: &str) {
        let mut inner = self.inner.lock();
        inner.vnfs.insert(
            name.to_owned(),
            VnfState {
                name: name.to_owned(),
                nf_type,
                sw_version: sw_version.to_owned(),
                healthy: true,
                traffic_redirected: false,
                config: BTreeMap::new(),
                reboots: 0,
            },
        );
        inner
            .ops_log
            .push(format!("instantiate {name} {sw_version}"));
    }

    /// Snapshot of one VNF's state.
    pub fn state(&self, name: &str) -> Option<VnfState> {
        self.inner.lock().vnfs.get(name).cloned()
    }

    /// Number of instantiated VNFs.
    pub fn len(&self) -> usize {
        self.inner.lock().vnfs.len()
    }

    /// True when the testbed holds no VNFs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the management-operation log.
    pub fn ops_log(&self) -> Vec<String> {
        self.inner.lock().ops_log.clone()
    }

    fn with_vnf<T>(
        &self,
        name: &str,
        op: &str,
        f: impl FnOnce(&mut VnfState) -> Result<T>,
    ) -> Result<T> {
        let mut inner = self.inner.lock();
        // Fault injection happens at the management plane, before the
        // operation reaches the instance.
        let fail = inner.config.ssh_failure_rate > 0.0 && {
            let rate = inner.config.ssh_failure_rate;
            inner.rng.random_bool(rate)
        };
        if fail {
            inner
                .ops_log
                .push(format!("{op} {name} FAILED ssh_connectivity"));
            // Connectivity loss is §5.1's canonical *transient* fault —
            // classified so retry policies know it is worth another try.
            return Err(CornetError::TransientFailure(format!(
                "ssh connectivity lost reaching {name} during {op}"
            )));
        }
        inner.ops_log.push(format!("{op} {name}"));
        let vnf = inner
            .vnfs
            .get_mut(name)
            .ok_or_else(|| CornetError::UnknownReference(format!("no VNF named {name}")))?;
        f(vnf)
    }

    /// Health check; may report an injected unhealthy state.
    pub fn health_check(&self, name: &str) -> Result<bool> {
        let flap = {
            let mut inner = self.inner.lock();
            let rate = inner.config.unhealthy_rate;
            rate > 0.0 && inner.rng.random_bool(rate)
        };
        self.with_vnf(name, "health_check", |v| {
            if flap {
                v.healthy = false;
            }
            Ok(v.healthy)
        })
    }

    /// Upgrade to `version`; returns the previous version. Requires the
    /// instance to be healthy (the workflow's health check gates this).
    pub fn software_upgrade(&self, name: &str, version: &str) -> Result<String> {
        self.with_vnf(name, "software_upgrade", |v| {
            if !v.healthy {
                return Err(CornetError::ExecutionFailed(format!(
                    "{name} is unhealthy; refusing upgrade"
                )));
            }
            let prev = std::mem::replace(&mut v.sw_version, version.to_owned());
            v.reboots += 1;
            Ok(prev)
        })
    }

    /// Roll back to a previous version.
    pub fn roll_back(&self, name: &str, version: &str) -> Result<()> {
        self.with_vnf(name, "roll_back", |v| {
            v.sw_version = version.to_owned();
            v.reboots += 1;
            Ok(())
        })
    }

    /// Migrate traffic away.
    pub fn traffic_redirect(&self, name: &str) -> Result<()> {
        self.with_vnf(name, "traffic_redirect", |v| {
            v.traffic_redirected = true;
            Ok(())
        })
    }

    /// Bring traffic back.
    pub fn traffic_restore(&self, name: &str) -> Result<()> {
        self.with_vnf(name, "traffic_restore", |v| {
            v.traffic_redirected = false;
            Ok(())
        })
    }

    /// Apply configuration keys; returns the previous values of the keys
    /// that changed.
    pub fn config_change(
        &self,
        name: &str,
        changes: &BTreeMap<String, String>,
    ) -> Result<BTreeMap<String, String>> {
        self.with_vnf(name, "config_change", |v| {
            let mut previous = BTreeMap::new();
            for (k, val) in changes {
                if let Some(old) = v.config.insert(k.clone(), val.clone()) {
                    previous.insert(k.clone(), old);
                }
            }
            Ok(previous)
        })
    }

    /// Force a health state (tests and failure-scenario setup).
    pub fn set_healthy(&self, name: &str, healthy: bool) {
        if let Some(v) = self.inner.lock().vnfs.get_mut(name) {
            v.healthy = healthy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bed() -> Testbed {
        let t = Testbed::new(TestbedConfig::default());
        t.instantiate("vce-0001", NfType::VceRouter, "16.9");
        t
    }

    #[test]
    fn upgrade_and_rollback_cycle() {
        let t = bed();
        assert!(t.health_check("vce-0001").unwrap());
        let prev = t.software_upgrade("vce-0001", "17.3").unwrap();
        assert_eq!(prev, "16.9");
        assert_eq!(t.state("vce-0001").unwrap().sw_version, "17.3");
        assert_eq!(t.state("vce-0001").unwrap().reboots, 1);
        t.roll_back("vce-0001", &prev).unwrap();
        assert_eq!(t.state("vce-0001").unwrap().sw_version, "16.9");
        assert_eq!(t.state("vce-0001").unwrap().reboots, 2);
    }

    #[test]
    fn unhealthy_instance_refuses_upgrade() {
        let t = bed();
        t.set_healthy("vce-0001", false);
        assert!(t.software_upgrade("vce-0001", "17.3").is_err());
        assert_eq!(t.state("vce-0001").unwrap().sw_version, "16.9", "unchanged");
    }

    #[test]
    fn traffic_cycle() {
        let t = bed();
        t.traffic_redirect("vce-0001").unwrap();
        assert!(t.state("vce-0001").unwrap().traffic_redirected);
        t.traffic_restore("vce-0001").unwrap();
        assert!(!t.state("vce-0001").unwrap().traffic_redirected);
    }

    #[test]
    fn config_change_returns_previous() {
        let t = bed();
        let mut c1 = BTreeMap::new();
        c1.insert("mtu".to_string(), "1500".to_string());
        assert!(t.config_change("vce-0001", &c1).unwrap().is_empty());
        let mut c2 = BTreeMap::new();
        c2.insert("mtu".to_string(), "9000".to_string());
        let prev = t.config_change("vce-0001", &c2).unwrap();
        assert_eq!(prev["mtu"], "1500");
    }

    #[test]
    fn unknown_vnf_is_an_error() {
        let t = bed();
        assert!(t.health_check("ghost").is_err());
    }

    #[test]
    fn ssh_fault_injection_fails_sometimes() {
        let t = Testbed::new(TestbedConfig {
            seed: 7,
            ssh_failure_rate: 0.5,
            unhealthy_rate: 0.0,
        });
        t.instantiate("vgw-00", NfType::VGateway, "3.2");
        let mut failures = 0;
        for _ in 0..100 {
            if t.traffic_redirect("vgw-00").is_err() {
                failures += 1;
            }
        }
        assert!(
            (25..=75).contains(&failures),
            "≈50% expected, got {failures}"
        );
        assert!(t
            .ops_log()
            .iter()
            .any(|l| l.contains("FAILED ssh_connectivity")));
    }

    #[test]
    fn testbed_is_shareable_across_threads() {
        let t = bed();
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.software_upgrade("vce-0001", "18.0").unwrap());
        h.join().unwrap();
        assert_eq!(t.state("vce-0001").unwrap().sw_version, "18.0");
    }
}
