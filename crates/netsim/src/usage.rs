//! Operations-team usage-pattern generators.
//!
//! §5's experience figures report *how* operations teams used CORNET over
//! three years. These generators regenerate those distributions from
//! parameters so the Figs 6 and 12–14 and Table 4 harnesses have data with
//! the published shape.

use crate::rng::{seeded, weighted_pick};
use cornet_types::ChangeType;
use rand::Rng;
use serde::Serialize;

/// One month of KPI-definition activity (Fig. 6).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct KpiActivityMonth {
    /// Months since the start of the observation window (0 = Jan 2018).
    pub month: usize,
    /// Label like `"2018-01"`.
    pub label: String,
    /// KPI definitions created or modified that month.
    pub created_or_modified: usize,
}

/// Fig. 6: monthly KPI creations/modifications over three years with a
/// marked surge from September 2019 (month 20) for the 5G roll-out.
pub fn kpi_activity_timeline(seed: u64) -> Vec<KpiActivityMonth> {
    let mut rng = seeded(seed);
    (0..36)
        .map(|month| {
            let year = 2018 + month / 12;
            let m = month % 12 + 1;
            let base: usize = rng.random_range(8..25);
            let surge = if month >= 20 {
                // 5G preparation: 3–5× the steady-state rate.
                base * rng.random_range(2..4usize) + rng.random_range(10..40usize)
            } else {
                0
            };
            KpiActivityMonth {
                month,
                label: format!("{year}-{m:02}"),
                created_or_modified: base + surge,
            }
        })
        .collect()
}

/// Fig. 12: distribution of requested change durations in maintenance
/// windows. The paper observes 4433 one-window requests with a small
/// multi-window tail (node re-tuning, construction, cautious FFAs).
pub fn duration_request_histogram(seed: u64, total_requests: usize) -> Vec<(u32, usize)> {
    let mut rng = seeded(seed);
    let mut buckets: Vec<(u32, usize)> = vec![(1, 0), (2, 0), (3, 0), (4, 0), (5, 0), (8, 0)];
    for _ in 0..total_requests {
        // ~88% single-window, geometric-ish tail beyond.
        let idx = weighted_pick(&mut rng, &[88.0, 6.0, 3.0, 1.5, 1.0, 0.5]);
        buckets[idx].1 += 1;
    }
    buckets
}

/// Fig. 13: location-aggregation attribute combinations chosen across
/// impact-verification queries, most-used first.
pub fn location_attribute_usage(seed: u64, total_queries: usize) -> Vec<(&'static str, usize)> {
    let combos: [(&str, f64); 7] = [
        ("All (time-aligned aggregate)", 30.0),
        ("Per (e/g)NodeB", 22.0),
        ("Per sector", 15.0),
        ("Carrier frequency", 12.0),
        ("Hardware version (BB/DU)", 9.0),
        ("Market", 8.0),
        ("Morphology (urban/rural)", 4.0),
    ];
    let mut rng = seeded(seed);
    let weights: Vec<f64> = combos.iter().map(|c| c.1).collect();
    let mut counts = vec![0usize; combos.len()];
    for _ in 0..total_queries {
        counts[weighted_pick(&mut rng, &weights)] += 1;
    }
    combos
        .iter()
        .zip(counts)
        .map(|((name, _), c)| (*name, c))
        .collect()
}

/// Fig. 14: control-group selection criteria across impact queries.
pub fn control_group_usage(seed: u64, total_queries: usize) -> Vec<(&'static str, usize)> {
    let choices: [(&str, f64); 5] = [
        ("1st tier neighbors", 38.0),
        ("Same market, unchanged", 25.0),
        ("2nd tier neighbors", 17.0),
        ("2nd minus 1st tier", 12.0),
        ("Same hardware version", 8.0),
    ];
    let mut rng = seeded(seed);
    let weights: Vec<f64> = choices.iter().map(|c| c.1).collect();
    let mut counts = vec![0usize; choices.len()];
    for _ in 0..total_queries {
        counts[weighted_pick(&mut rng, &weights)] += 1;
    }
    choices
        .iter()
        .zip(counts)
        .map(|((name, _), c)| (*name, c))
        .collect()
}

/// One Table 4 row: yearly verification usage for a change type.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct VerificationUsageRow {
    /// Change category.
    pub change_type: ChangeType,
    /// FFA trials conducted this year.
    pub ffa_count: usize,
    /// Nodes per FFA (order of magnitude: hundreds).
    pub nodes_per_ffa: usize,
    /// FFAs certified for network-wide roll-out (~10%).
    pub certified_rollouts: usize,
    /// Nodes per roll-out (order of magnitude: tens of thousands).
    pub nodes_per_rollout: usize,
    /// Certified roll-outs later rolled back (< 2).
    pub rolled_back: usize,
}

/// Table 4: yearly verification usage for software upgrades and config
/// changes.
pub fn verification_usage(seed: u64) -> Vec<VerificationUsageRow> {
    let mut rng = seeded(seed);
    [
        (ChangeType::SoftwareUpgrade, 160),
        (ChangeType::ConfigChange, 200),
    ]
    .into_iter()
    .map(|(ct, base_ffa)| {
        let ffa_count = base_ffa + rng.random_range(0..20usize);
        let certified = ffa_count / 10;
        VerificationUsageRow {
            change_type: ct,
            ffa_count,
            nodes_per_ffa: rng.random_range(100..400),
            certified_rollouts: certified,
            nodes_per_rollout: rng.random_range(10_000..60_000),
            rolled_back: rng.random_range(0..2),
        }
    })
    .collect()
}

/// §5.2: average human time savings from automated schedule discovery.
///
/// Before CORNET: `batches` manual rounds of ~1 hour each. With CORNET:
/// one request taking `cornet_minutes`. Returns the percentage saving.
pub fn human_time_savings_pct(batches: usize, cornet_minutes: f64) -> f64 {
    let manual = batches as f64 * 60.0;
    100.0 * (manual - cornet_minutes) / manual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kpi_timeline_surges_after_sep_2019() {
        let tl = kpi_activity_timeline(5);
        assert_eq!(tl.len(), 36);
        assert_eq!(tl[20].label, "2019-09");
        let before: usize = tl[..20].iter().map(|m| m.created_or_modified).sum();
        let after: usize = tl[20..].iter().map(|m| m.created_or_modified).sum();
        let before_rate = before as f64 / 20.0;
        let after_rate = after as f64 / 16.0;
        assert!(
            after_rate > before_rate * 2.0,
            "surge: {before_rate} → {after_rate}"
        );
    }

    #[test]
    fn duration_histogram_dominated_by_single_window() {
        let h = duration_request_histogram(2, 5_000);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5_000);
        assert!(
            h[0].1 as f64 / total as f64 > 0.8,
            "one-window share {}",
            h[0].1
        );
        assert!(
            h.iter().skip(1).any(|(_, c)| *c > 0),
            "multi-window tail exists"
        );
    }

    #[test]
    fn location_usage_ordering() {
        let u = location_attribute_usage(3, 20_000);
        assert_eq!(u.iter().map(|(_, c)| c).sum::<usize>(), 20_000);
        assert!(u[0].1 > u[6].1, "aggregate view dominates morphology");
    }

    #[test]
    fn control_group_first_tier_dominates() {
        let u = control_group_usage(4, 20_000);
        assert!(u[0].0.contains("1st tier"));
        let max = u.iter().map(|(_, c)| *c).max().unwrap();
        assert_eq!(u[0].1, max);
    }

    #[test]
    fn verification_usage_matches_table4_magnitudes() {
        let rows = verification_usage(6);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((150..=230).contains(&r.ffa_count));
            assert!((100..400).contains(&r.nodes_per_ffa));
            assert!(
                r.certified_rollouts * 8 <= r.ffa_count,
                "~10% certification rate"
            );
            assert!(r.nodes_per_rollout >= 10_000);
            assert!(r.rolled_back < 2);
        }
    }

    #[test]
    fn human_time_savings_match_paper() {
        // §5.2: ~30 manual batches of an hour vs minutes with CORNET →
        // 88.6% average saving. Our formula lands in that band.
        let pct = human_time_savings_pct(30, 200.0);
        assert!((85.0..95.0).contains(&pct), "{pct}");
    }
}
