//! Seeded randomness helpers shared by the generators.
//!
//! The offline crate set has `rand` but no `rand_distr`, so the normal
//! sampler is a small Box–Muller implementation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample a normal deviate via Box–Muller.
pub fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

/// Sample a non-negative log-normal-ish duration with the given mean and a
/// heavy right tail — the shape of construction-work durations in Table 6.
pub fn heavy_tail_duration(rng: &mut StdRng, mean: f64, tail_weight: f64) -> f64 {
    let base = normal(rng, mean, mean * 0.3).max(0.1);
    if rng.random_bool(tail_weight.clamp(0.0, 1.0)) {
        base * rng.random_range(3.0..12.0)
    } else {
        base
    }
}

/// Pick an index according to (unnormalized) weights.
pub fn weighted_pick(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum positive");
    let mut x = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..10 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(7);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = seeded(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_pick(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "frac {frac2}");
    }

    #[test]
    fn heavy_tail_is_nonnegative_and_heavy() {
        let mut rng = seeded(9);
        let xs: Vec<f64> = (0..5_000)
            .map(|_| heavy_tail_duration(&mut rng, 3.0, 0.1))
            .collect();
        assert!(xs.iter().all(|x| *x > 0.0));
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 10.0, "tail should produce large values, max {max}");
    }

    #[test]
    #[should_panic(expected = "sum positive")]
    fn zero_weights_panic() {
        weighted_pick(&mut seeded(1), &[0.0, 0.0]);
    }
}
