//! Network hierarchy generator.
//!
//! Produces the inventory + topology substrate the planner and verifier
//! consume. The radio hierarchy follows Appendix C's footnotes: a *market*
//! consists of TACs (tracking area codes), a TAC of USIDs (cell sites), and
//! a USID of co-located eNodeB/gNodeB towers; every USID's base stations
//! hang off a common SIAD switch (§5.3), and markets sit inside timezones.
//! The cloud side follows Appendix A: VPN (vCE–PE chains), SDWAN (CPE →
//! vGW → vVIG chains plus a portal per zone), all VNFs pinned to physical
//! servers for cross-layer conflict scoping (§2.2).

use crate::rng::seeded;
use cornet_types::{Attributes, Inventory, NfType, NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sizing knobs for the generated radio access network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// RNG seed; equal seeds produce identical networks.
    pub seed: u64,
    /// Timezone names and UTC offsets (default: the four CONUS zones).
    pub timezones: Vec<(String, f64)>,
    /// Markets per timezone.
    pub markets_per_tz: usize,
    /// TACs per market.
    pub tacs_per_market: usize,
    /// USIDs (cell sites) per TAC.
    pub usids_per_tac: usize,
    /// Probability a USID also hosts a 5G gNodeB next to its eNodeB.
    pub gnb_probability: f64,
    /// Element management systems per timezone (nodes attach to one EMS).
    pub ems_per_tz: usize,
    /// Hardware version pool (27 radio head types in the paper; we default
    /// to a handful and let experiments override).
    pub hw_versions: Vec<String>,
    /// Software version pool.
    pub sw_versions: Vec<String>,
    /// Carrier frequencies per eNodeB (the paper has 13 carrier types;
    /// Fig. 2 plots five).
    pub carriers_per_enb: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            seed: 1,
            timezones: vec![
                ("Eastern".into(), -5.0),
                ("Central".into(), -6.0),
                ("Mountain".into(), -7.0),
                ("Pacific".into(), -8.0),
            ],
            markets_per_tz: 2,
            tacs_per_market: 3,
            usids_per_tac: 10,
            gnb_probability: 0.4,
            ems_per_tz: 2,
            hw_versions: vec!["HW-A".into(), "HW-B".into(), "HW-C".into()],
            sw_versions: vec!["19.3".into(), "20.1".into()],
            carriers_per_enb: 5,
        }
    }
}

impl NetworkConfig {
    /// Scale the hierarchy so the RAN holds roughly `target` nodes.
    pub fn with_target_nodes(mut self, target: usize) -> Self {
        // Expected nodes per USID = 1 + gnb_probability; solve for USIDs.
        let per_usid = 1.0 + self.gnb_probability;
        let usids = (target as f64 / per_usid).ceil() as usize;
        let per_tz = usids.div_ceil(self.timezones.len());
        let per_market = per_tz.div_ceil(self.markets_per_tz);
        self.usids_per_tac = per_market.div_ceil(self.tacs_per_market).max(1);
        self
    }
}

/// A generated network: inventory plus topology.
#[derive(Clone, Debug)]
pub struct Network {
    /// All network-function instances and their attributes.
    pub inventory: Inventory,
    /// Physical/logical connectivity and service chains.
    pub topology: Topology,
}

impl Network {
    /// Generate the radio access network described by `config`.
    pub fn generate_ran(config: &NetworkConfig) -> Network {
        let mut rng = seeded(config.seed);
        let mut inventory = Inventory::new();
        let mut topology = Topology::default();

        let mut usid_counter = 0usize;
        for (tz_idx, (tz_name, offset)) in config.timezones.iter().enumerate() {
            for m in 0..config.markets_per_tz {
                let market = format!("{}-M{:02}", &tz_name[..1], m);
                for t in 0..config.tacs_per_market {
                    let tac = format!("{market}-T{t:03}");
                    let mut prev_siad: Option<NodeId> = None;
                    for _ in 0..config.usids_per_tac {
                        let usid = format!("U{usid_counter:06}");
                        usid_counter += 1;
                        let ems =
                            format!("EMS-{}-{}", tz_idx, rng.random_range(0..config.ems_per_tz));
                        let hw = config.hw_versions[rng.random_range(0..config.hw_versions.len())]
                            .clone();
                        let sw = config.sw_versions[rng.random_range(0..config.sw_versions.len())]
                            .clone();

                        let base_attrs = |nf: &str| {
                            Attributes::new()
                                .with("market", market.as_str())
                                .with("tac", tac.as_str())
                                .with("usid", usid.as_str())
                                .with("ems", ems.as_str())
                                .with("timezone", tz_name.as_str())
                                .with("utc_offset", *offset)
                                .with("hw_version", hw.as_str())
                                .with("sw_version", sw.as_str())
                                .with("nf", nf)
                        };

                        // The common SIAD switch of the cell site.
                        let siad = inventory.push(
                            format!("siad-{usid}"),
                            NfType::Siad,
                            base_attrs("siad"),
                        );
                        let enb = inventory.push(
                            format!("enb-{usid}"),
                            NfType::ENodeB,
                            base_attrs("enodeb").with("carriers", config.carriers_per_enb as i64),
                        );
                        // Backhaul: SIADs of a TAC form a chain, so
                        // multi-hop neighborhoods (2nd-tier control
                        // groups) exist across cell sites.
                        if let Some(prev) = prev_siad {
                            topology.add_edge(prev, siad);
                        }
                        prev_siad = Some(siad);
                        topology.add_edge(siad, enb);
                        if rng.random_bool(config.gnb_probability) {
                            let gnb = inventory.push(
                                format!("gnb-{usid}"),
                                NfType::GNodeB,
                                base_attrs("gnodeb"),
                            );
                            topology.add_edge(siad, gnb);
                            // X2-style neighbor relation between co-located
                            // radios (used for control-group derivation).
                            topology.add_edge(enb, gnb);
                        }
                    }
                }
            }
        }
        Network {
            inventory,
            topology,
        }
    }

    /// Generate the Appendix A cloud services: `vce_count` vCE routers
    /// (VPN), `sdwan_zones` SDWAN cloud zones (each with a vGW, portal,
    /// vVIG, ToR switch, physical servers, and CPE chains), and the VoLTE
    /// core pair (vCOM, vRAR).
    pub fn generate_cloud(seed: u64, vce_count: usize, sdwan_zones: usize) -> Network {
        let mut rng = seeded(seed);
        let mut inventory = Inventory::new();
        let mut topology = Topology::default();

        // VPN: vCE routers, pairs sharing a physical server and a PE chain.
        let pe = inventory.push(
            "core-pe-0",
            NfType::CoreRouter,
            Attributes::new()
                .with("service", "vpn")
                .with("zone", "core"),
        );
        for i in 0..vce_count {
            // One physical server hosts a handful of vCEs (cross-layer
            // dependency of §2.2).
            if i % 4 == 0 {
                inventory.push(
                    format!("server-vpn-{:04}", i / 4),
                    NfType::PhysicalServer,
                    Attributes::new()
                        .with("service", "vpn")
                        .with("zone", "cloud"),
                );
            }
            let host_name = format!("server-vpn-{:04}", i / 4);
            let host = inventory
                .find_by_name(&host_name)
                .expect("host just created")
                .id;
            let vce = inventory.push(
                format!("vce-{i:04}"),
                NfType::VceRouter,
                Attributes::new()
                    .with("service", "vpn")
                    .with("zone", "cloud")
                    .with("host", host_name.as_str())
                    .with("sw_version", "16.9"),
            );
            topology.add_edge(host, vce);
            topology.add_chain(format!("vpn-chain-{i:04}"), vec![vce, pe]);
        }

        // SDWAN zones.
        for z in 0..sdwan_zones {
            let zone = format!("zone-{z}");
            let server = inventory.push(
                format!("server-sdwan-{z:02}"),
                NfType::PhysicalServer,
                Attributes::new()
                    .with("service", "sdwan")
                    .with("zone", zone.as_str()),
            );
            let tor = inventory.push(
                format!("tor-{z:02}"),
                NfType::TransportSwitch,
                Attributes::new()
                    .with("service", "sdwan")
                    .with("zone", zone.as_str()),
            );
            let mk = |name: String, nf, host: &str| {
                Attributes::new()
                    .with("service", "sdwan")
                    .with("zone", zone.as_str())
                    .with("host", host)
                    .with("sw_version", "3.2")
                    .with("name", name)
                    .with(
                        "nf",
                        match nf {
                            NfType::VGateway => "vgw",
                            NfType::Portal => "portal",
                            NfType::Vvig => "vvig",
                            _ => "other",
                        },
                    )
            };
            let host_name = format!("server-sdwan-{z:02}");
            let vgw = inventory.push(
                format!("vgw-{z:02}"),
                NfType::VGateway,
                mk(format!("vgw-{z:02}"), NfType::VGateway, &host_name),
            );
            let portal = inventory.push(
                format!("portal-{z:02}"),
                NfType::Portal,
                mk(format!("portal-{z:02}"), NfType::Portal, &host_name),
            );
            let vvig = inventory.push(
                format!("vvig-{z:02}"),
                NfType::Vvig,
                mk(format!("vvig-{z:02}"), NfType::Vvig, &host_name),
            );
            for nf in [vgw, portal, vvig] {
                topology.add_edge(server, nf);
                topology.add_edge(tor, nf);
            }
            // CPE service chains through the zone gateway.
            for c in 0..rng.random_range(2..5) {
                let cpe = inventory.push(
                    format!("cpe-{z:02}-{c:02}"),
                    NfType::Cpe,
                    Attributes::new()
                        .with("service", "sdwan")
                        .with("zone", zone.as_str()),
                );
                topology.add_chain(format!("sdwan-chain-{z}-{c}"), vec![cpe, vgw, vvig]);
            }
        }

        // VoLTE virtualized core (vCOM, vRAR) on a shared server.
        let core_server = inventory.push(
            "server-volte-00",
            NfType::PhysicalServer,
            Attributes::new()
                .with("service", "volte")
                .with("zone", "core"),
        );
        for (name, nf) in [("vcom-00", NfType::Vcom), ("vrar-00", NfType::Vrar)] {
            let v = inventory.push(
                name,
                nf,
                Attributes::new()
                    .with("service", "volte")
                    .with("zone", "core")
                    .with("host", "server-volte-00")
                    .with("sw_version", "8.1"),
            );
            topology.add_edge(core_server, v);
        }

        Network {
            inventory,
            topology,
        }
    }

    /// All node ids of a given NF type.
    pub fn nodes_of_type(&self, nf: NfType) -> Vec<NodeId> {
        self.inventory
            .iter()
            .filter(|r| r.nf_type == nf)
            .map(|r| r.id)
            .collect()
    }

    /// All radio access nodes (eNodeB + gNodeB), sorted — the standard
    /// change scope for RAN experiments.
    pub fn ran_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.nodes_of_type(NfType::ENodeB);
        nodes.extend(self.nodes_of_type(NfType::GNodeB));
        nodes.sort();
        nodes
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.inventory.len()
    }

    /// True when the network is empty.
    pub fn is_empty(&self) -> bool {
        self.inventory.is_empty()
    }
}

/// Deterministic helper: pick `n` nodes of a type, in id order.
pub fn sample_nodes(net: &Network, nf: NfType, n: usize) -> Vec<NodeId> {
    net.nodes_of_type(nf).into_iter().take(n).collect()
}

/// Reusable RNG for callers that need extra randomness tied to a network.
pub fn network_rng(config: &NetworkConfig) -> StdRng {
    seeded(config.seed ^ 0x5EED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ran_generation_is_deterministic() {
        let cfg = NetworkConfig::default();
        let a = Network::generate_ran(&cfg);
        let b = Network::generate_ran(&cfg);
        assert_eq!(a.inventory.len(), b.inventory.len());
        let ra: Vec<_> = a.inventory.iter().map(|r| r.name.clone()).collect();
        let rb: Vec<_> = b.inventory.iter().map(|r| r.name.clone()).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn hierarchy_counts() {
        let cfg = NetworkConfig::default();
        let net = Network::generate_ran(&cfg);
        let usids = 4 * cfg.markets_per_tz * cfg.tacs_per_market * cfg.usids_per_tac;
        assert_eq!(net.nodes_of_type(NfType::Siad).len(), usids);
        assert_eq!(net.nodes_of_type(NfType::ENodeB).len(), usids);
        let gnbs = net.nodes_of_type(NfType::GNodeB).len();
        assert!(
            gnbs > 0 && gnbs < usids,
            "gNodeBs are a strict subset of sites"
        );
        assert_eq!(
            net.inventory.distinct_values("market").len(),
            4 * cfg.markets_per_tz
        );
    }

    #[test]
    fn enb_connects_to_its_siad() {
        let net = Network::generate_ran(&NetworkConfig::default());
        let enb = net.nodes_of_type(NfType::ENodeB)[0];
        let rec = net.inventory.record(enb);
        let usid = rec.attrs.group_key("usid").unwrap();
        let siad = net
            .inventory
            .find_by_name(&format!("siad-{usid}"))
            .expect("siad exists")
            .id;
        assert!(net.topology.connected(enb, siad));
    }

    #[test]
    fn with_target_nodes_scales() {
        let cfg = NetworkConfig::default().with_target_nodes(2000);
        let net = Network::generate_ran(&cfg);
        let ran = net.nodes_of_type(NfType::ENodeB).len() + net.nodes_of_type(NfType::GNodeB).len();
        assert!(
            (1600..3200).contains(&ran),
            "target 2000 → got {ran} RAN nodes"
        );
    }

    #[test]
    fn cloud_has_appendix_a_pieces() {
        let net = Network::generate_cloud(5, 12, 3);
        assert_eq!(net.nodes_of_type(NfType::VceRouter).len(), 12);
        assert_eq!(net.nodes_of_type(NfType::VGateway).len(), 3);
        assert_eq!(net.nodes_of_type(NfType::Portal).len(), 3);
        assert_eq!(net.nodes_of_type(NfType::Vcom).len(), 1);
        assert_eq!(net.nodes_of_type(NfType::Vrar).len(), 1);
        assert!(!net.topology.chains().is_empty());
        // Every vCE sits on a host (cross-layer dependency).
        for vce in net.nodes_of_type(NfType::VceRouter) {
            let host = net.inventory.record(vce).attrs.group_key("host");
            assert!(host.is_some());
        }
    }

    #[test]
    fn timezones_have_distinct_offsets() {
        let net = Network::generate_ran(&NetworkConfig::default());
        let offsets = net.inventory.distinct_values("utc_offset");
        assert_eq!(offsets.len(), 4);
    }
}
