//! # cornet-netsim
//!
//! Substrate simulator standing in for the production artifacts CORNET ran
//! against at AT&T: the cellular/transport network hierarchy with its
//! inventory and topology databases, the OpenStack testbed of virtualized
//! network functions, the KPI data feeds, the three-year change logs, and
//! the operations-team usage patterns behind the experience figures.
//!
//! Everything is generated from a seed (`rand::rngs::StdRng`) so every
//! experiment in `EXPERIMENTS.md` is exactly reproducible.
//!
//! * [`network`] — timezone → market → TAC → USID → (eNodeB, gNodeB) radio
//!   hierarchy with EMS and SIAD assignments, plus the VPN / SDWAN / VoLTE
//!   cloud topologies of Appendix A;
//! * [`testbed`] — stateful VNF instances with fault injection, mutated by
//!   the orchestrator's building-block executors;
//! * [`kpi`] — seasonal KPI synthesis with injectable ground-truth impacts
//!   and the 349-equation KPI catalog of Table 5;
//! * [`changelog`] — Table 1 change-mix generation and staggered roll-out
//!   curves (Figs 1, 5; Table 6);
//! * [`usage`] — operations usage-pattern generators (Figs 6, 12–14,
//!   Table 4).

#![forbid(unsafe_code)]
pub mod changelog;
pub mod kpi;
pub mod network;
pub mod rng;
pub mod testbed;
pub mod usage;

pub use kpi::{ImpactKind, InjectedImpact, KpiCatalog, KpiGenerator};
pub use network::{Network, NetworkConfig};
pub use testbed::{Testbed, TestbedConfig, VnfState};
