//! Campaign lifecycle events and their JSON wire form.
//!
//! The journal stores primitive records — status labels as strings, nodes
//! and slots as integers, global state as a type-tagged value tree — so
//! the log can be decoded without any orchestrator types in scope. The
//! orchestrator owns the translation to and from its richer structures.
//!
//! The vendored `serde_json` is a same-process round-trip shim, so events
//! render their own JSON and decode through `cornet_types::json::parse`.
//! Numbers that must survive the reader's f64 representation exactly
//! (i64 params, durations in nanoseconds) are carried as strings; the
//! tagged parameter encoding (`{"i":"42"}` vs `{"f":"42"}`) keeps int and
//! float values distinct where untagged JSON could not.

use cornet_obs::json_escape;
use cornet_types::json::{parse, JsonValue};
use cornet_types::{CornetError, ParamValue, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Global state snapshot as stored in the journal — identical in shape to
/// the orchestrator's `GlobalState`.
pub type StateMap = BTreeMap<String, ParamValue>;

/// One block execution, exactly as the engine logged it, plus the full
/// post-block state snapshot that makes kill-safe replay possible.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockRecord {
    /// Target node (the schedule's `NodeId`).
    pub node: u32,
    /// Timeslot the instance runs in.
    pub slot: u32,
    /// Building-block name.
    pub block: String,
    /// Outcome label: `success`, `failed`, `timed_out`, or `recovered`.
    pub status: String,
    /// Executor invocations consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Total execution time across attempts, in nanoseconds.
    pub duration_ns: u64,
    /// Total backoff waited between attempts, in nanoseconds.
    pub backoff_ns: u64,
    /// Terminal error message, for failed/timed-out blocks.
    pub error: Option<String>,
    /// True when this block ran inside a backout flow.
    pub backout: bool,
    /// Global state immediately after the block (mutations applied even
    /// when the block failed — executors mutate before erroring).
    pub state: StateMap,
}

/// Recovery statistics from opening an existing journal.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Recovery {
    /// Records decoded successfully.
    pub events: usize,
    /// Byte length of the valid prefix kept.
    pub valid_len: u64,
    /// Bytes discarded past the valid prefix (torn tail).
    pub dropped_bytes: u64,
    /// True when any bytes were discarded.
    pub torn: bool,
}

/// One campaign lifecycle event.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// A fresh campaign began: identifying metadata, the full schedule as
    /// `(node, slot)` assignments, and the dispatcher concurrency.
    CampaignOpened {
        /// Free-form campaign metadata (seed, fault plan, workflow name…).
        meta: BTreeMap<String, String>,
        /// Schedule assignments as `(node, slot)` pairs.
        assignments: Vec<(u32, u32)>,
        /// Dispatcher concurrency of the original run.
        concurrency: u32,
    },
    /// A crashed campaign was reopened for resume (marker only — replay
    /// derives everything from the surviving records).
    CampaignResumed {
        /// Metadata echoed from the recovered campaign.
        meta: BTreeMap<String, String>,
    },
    /// An instance entered the admission pool.
    InstanceAdmitted {
        /// Target node.
        node: u32,
        /// Timeslot.
        slot: u32,
    },
    /// A block finished (any outcome) — the write-ahead unit of replay.
    BlockCompleted(BlockRecord),
    /// An instance reached a terminal status.
    InstanceFinished {
        /// Target node.
        node: u32,
        /// Timeslot.
        slot: u32,
        /// Status label: `completed`, `failed`, or `rolled_back`.
        status: String,
        /// Failing block (for `failed`/`rolled_back`) or detail message.
        detail: Option<String>,
    },
    /// The circuit breaker tripped and halted admission.
    BreakerTripped {
        /// Block whose fall-out crossed the threshold.
        block: String,
        /// Observed failure rate at the trip.
        failure_rate: f64,
        /// Instances sampled when the trip fired.
        samples: u64,
    },
    /// The campaign ran to completion (or to a breaker halt) and the
    /// report was handed back — nothing left to resume.
    CampaignClosed,
}

impl JournalEvent {
    /// Short machine name of the event kind (the `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::CampaignOpened { .. } => "campaign_opened",
            JournalEvent::CampaignResumed { .. } => "campaign_resumed",
            JournalEvent::InstanceAdmitted { .. } => "instance_admitted",
            JournalEvent::BlockCompleted(_) => "block_completed",
            JournalEvent::InstanceFinished { .. } => "instance_finished",
            JournalEvent::BreakerTripped { .. } => "breaker_tripped",
            JournalEvent::CampaignClosed => "campaign_closed",
        }
    }

    /// Render the event as a single JSON document (one journal payload).
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"ev\":\"{}\"", self.kind());
        match self {
            JournalEvent::CampaignOpened {
                meta,
                assignments,
                concurrency,
            } => {
                s.push_str(",\"meta\":");
                encode_string_map(&mut s, meta);
                s.push_str(",\"assignments\":[");
                for (i, (node, slot)) in assignments.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{node},{slot}]");
                }
                let _ = write!(s, "],\"concurrency\":{concurrency}");
            }
            JournalEvent::CampaignResumed { meta } => {
                s.push_str(",\"meta\":");
                encode_string_map(&mut s, meta);
            }
            JournalEvent::InstanceAdmitted { node, slot } => {
                let _ = write!(s, ",\"node\":{node},\"slot\":{slot}");
            }
            JournalEvent::BlockCompleted(r) => {
                let _ = write!(
                    s,
                    ",\"node\":{},\"slot\":{},\"block\":\"{}\",\"status\":\"{}\",\
                     \"attempts\":{},\"duration_ns\":\"{}\",\"backoff_ns\":\"{}\"",
                    r.node,
                    r.slot,
                    json_escape(&r.block),
                    json_escape(&r.status),
                    r.attempts,
                    r.duration_ns,
                    r.backoff_ns,
                );
                if let Some(err) = &r.error {
                    let _ = write!(s, ",\"error\":\"{}\"", json_escape(err));
                }
                if r.backout {
                    s.push_str(",\"backout\":true");
                }
                s.push_str(",\"state\":");
                encode_state(&mut s, &r.state);
            }
            JournalEvent::InstanceFinished {
                node,
                slot,
                status,
                detail,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"slot\":{slot},\"status\":\"{}\"",
                    json_escape(status)
                );
                if let Some(d) = detail {
                    let _ = write!(s, ",\"detail\":\"{}\"", json_escape(d));
                }
            }
            JournalEvent::BreakerTripped {
                block,
                failure_rate,
                samples,
            } => {
                let _ = write!(
                    s,
                    ",\"block\":\"{}\",\"failure_rate\":\"{failure_rate}\",\"samples\":{samples}",
                    json_escape(block)
                );
            }
            JournalEvent::CampaignClosed => {}
        }
        s.push('}');
        s
    }

    /// Decode one journal payload back into an event.
    pub fn decode(payload: &str) -> Result<JournalEvent> {
        let v = parse(payload)?;
        let kind = req_str(&v, "ev")?;
        match kind {
            "campaign_opened" => {
                let assignments = v
                    .get("assignments")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| bad("campaign_opened without assignments"))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().unwrap_or_default();
                        match (pair.first(), pair.get(1)) {
                            (Some(n), Some(s)) => Ok((num_u32(n)?, num_u32(s)?)),
                            _ => Err(bad("malformed schedule assignment")),
                        }
                    })
                    .collect::<Result<_>>()?;
                Ok(JournalEvent::CampaignOpened {
                    meta: decode_string_map(&v)?,
                    assignments,
                    concurrency: req_u32(&v, "concurrency")?,
                })
            }
            "campaign_resumed" => Ok(JournalEvent::CampaignResumed {
                meta: decode_string_map(&v)?,
            }),
            "instance_admitted" => Ok(JournalEvent::InstanceAdmitted {
                node: req_u32(&v, "node")?,
                slot: req_u32(&v, "slot")?,
            }),
            "block_completed" => Ok(JournalEvent::BlockCompleted(BlockRecord {
                node: req_u32(&v, "node")?,
                slot: req_u32(&v, "slot")?,
                block: req_str(&v, "block")?.to_owned(),
                status: req_str(&v, "status")?.to_owned(),
                attempts: req_u32(&v, "attempts")?,
                duration_ns: req_ns(&v, "duration_ns")?,
                backoff_ns: req_ns(&v, "backoff_ns")?,
                error: opt_str(&v, "error"),
                backout: matches!(v.get("backout"), Some(JsonValue::Bool(true))),
                state: decode_state(v.get("state").ok_or_else(|| bad("block without state"))?)?,
            })),
            "instance_finished" => Ok(JournalEvent::InstanceFinished {
                node: req_u32(&v, "node")?,
                slot: req_u32(&v, "slot")?,
                status: req_str(&v, "status")?.to_owned(),
                detail: opt_str(&v, "detail"),
            }),
            "breaker_tripped" => Ok(JournalEvent::BreakerTripped {
                block: req_str(&v, "block")?.to_owned(),
                failure_rate: req_str(&v, "failure_rate")?
                    .parse()
                    .map_err(|_| bad("malformed failure_rate"))?,
                samples: req_str_or_num_u64(&v, "samples")?,
            }),
            "campaign_closed" => Ok(JournalEvent::CampaignClosed),
            other => Err(bad(&format!("unknown event kind '{other}'"))),
        }
    }
}

fn bad(msg: &str) -> CornetError {
    CornetError::DataIntegrity(format!("journal event: {msg}"))
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad(&format!("missing string field '{key}'")))
}

fn opt_str(v: &JsonValue, key: &str) -> Option<String> {
    v.get(key).and_then(JsonValue::as_str).map(str::to_owned)
}

fn num_u32(v: &JsonValue) -> Result<u32> {
    let n = v.as_f64().ok_or_else(|| bad("expected a number"))?;
    if n.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&n) {
        return Err(bad(&format!("number {n} is not a u32")));
    }
    Ok(n as u32)
}

fn req_u32(v: &JsonValue, key: &str) -> Result<u32> {
    num_u32(
        v.get(key)
            .ok_or_else(|| bad(&format!("missing field '{key}'")))?,
    )
}

/// Nanosecond counters are written as strings for exact round-tripping.
fn req_ns(v: &JsonValue, key: &str) -> Result<u64> {
    req_str(v, key)?
        .parse()
        .map_err(|_| bad(&format!("malformed nanosecond field '{key}'")))
}

fn req_str_or_num_u64(v: &JsonValue, key: &str) -> Result<u64> {
    let v = v
        .get(key)
        .ok_or_else(|| bad(&format!("missing field '{key}'")))?;
    if let Some(s) = v.as_str() {
        return s.parse().map_err(|_| bad("malformed u64"));
    }
    num_u32(v).map(u64::from)
}

fn encode_string_map(s: &mut String, map: &BTreeMap<String, String>) {
    s.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    s.push('}');
}

fn decode_string_map(v: &JsonValue) -> Result<BTreeMap<String, String>> {
    let entries = v
        .get("meta")
        .and_then(JsonValue::entries)
        .ok_or_else(|| bad("missing meta object"))?;
    entries
        .iter()
        .map(|(k, v)| {
            v.as_str()
                .map(|s| (k.clone(), s.to_owned()))
                .ok_or_else(|| bad("meta values must be strings"))
        })
        .collect()
}

fn encode_state(s: &mut String, state: &StateMap) {
    s.push('{');
    for (i, (k, v)) in state.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":", json_escape(k));
        encode_param(s, v);
    }
    s.push('}');
}

/// Type-tagged parameter encoding. Int and float payloads are carried as
/// strings so `i64` precision and non-finite floats (`NaN`, `inf`) survive
/// the reader's f64-only number representation.
fn encode_param(s: &mut String, v: &ParamValue) {
    match v {
        ParamValue::Str(x) => {
            let _ = write!(s, "{{\"s\":\"{}\"}}", json_escape(x));
        }
        ParamValue::Int(x) => {
            let _ = write!(s, "{{\"i\":\"{x}\"}}");
        }
        ParamValue::Float(x) => {
            let _ = write!(s, "{{\"f\":\"{x}\"}}");
        }
        ParamValue::Bool(x) => {
            let _ = write!(s, "{{\"b\":{x}}}");
        }
        ParamValue::List(items) => {
            s.push_str("{\"l\":[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                encode_param(s, item);
            }
            s.push_str("]}");
        }
        ParamValue::Map(map) => {
            s.push_str("{\"m\":");
            encode_state(s, map);
            s.push('}');
        }
    }
}

fn decode_state(v: &JsonValue) -> Result<StateMap> {
    let entries = v.entries().ok_or_else(|| bad("state must be an object"))?;
    entries
        .iter()
        .map(|(k, v)| Ok((k.clone(), decode_param(v)?)))
        .collect()
}

fn decode_param(v: &JsonValue) -> Result<ParamValue> {
    let entries = v
        .entries()
        .ok_or_else(|| bad("parameter must be a tagged object"))?;
    let [(tag, inner)] = entries else {
        return Err(bad("parameter must have exactly one tag"));
    };
    match tag.as_str() {
        "s" => Ok(ParamValue::Str(
            inner
                .as_str()
                .ok_or_else(|| bad("'s' tag holds a string"))?
                .to_owned(),
        )),
        "i" => inner
            .as_str()
            .and_then(|s| s.parse().ok())
            .map(ParamValue::Int)
            .ok_or_else(|| bad("'i' tag holds a stringified i64")),
        "f" => inner
            .as_str()
            .and_then(|s| s.parse().ok())
            .map(ParamValue::Float)
            .ok_or_else(|| bad("'f' tag holds a stringified f64")),
        "b" => match inner {
            JsonValue::Bool(b) => Ok(ParamValue::Bool(*b)),
            _ => Err(bad("'b' tag holds a boolean")),
        },
        "l" => inner
            .as_array()
            .ok_or_else(|| bad("'l' tag holds an array"))?
            .iter()
            .map(decode_param)
            .collect::<Result<_>>()
            .map(ParamValue::List),
        "m" => decode_state(inner).map(ParamValue::Map),
        other => Err(bad(&format!("unknown parameter tag '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ev: JournalEvent) {
        let enc = ev.encode();
        let back = JournalEvent::decode(&enc).unwrap_or_else(|e| panic!("{e}: {enc}"));
        assert_eq!(back, ev, "wire form: {enc}");
    }

    #[test]
    fn every_event_kind_round_trips() {
        let mut meta = BTreeMap::new();
        meta.insert("seed".into(), "42".into());
        meta.insert("plan \"x\"\n".into(), "with\tescapes".into());
        round_trip(JournalEvent::CampaignOpened {
            meta: meta.clone(),
            assignments: vec![(0, 1), (7, 2), (u32::MAX, 5)],
            concurrency: 4,
        });
        round_trip(JournalEvent::CampaignResumed { meta });
        round_trip(JournalEvent::InstanceAdmitted { node: 3, slot: 1 });
        round_trip(JournalEvent::InstanceFinished {
            node: 3,
            slot: 1,
            status: "rolled_back".into(),
            detail: Some("software_upgrade".into()),
        });
        round_trip(JournalEvent::InstanceFinished {
            node: 4,
            slot: 1,
            status: "completed".into(),
            detail: None,
        });
        round_trip(JournalEvent::BreakerTripped {
            block: "software_upgrade".into(),
            failure_rate: 0.8333333333333334,
            samples: 6,
        });
        round_trip(JournalEvent::CampaignClosed);
    }

    #[test]
    fn block_record_round_trips_with_full_state() {
        let mut state = StateMap::new();
        state.insert("node".into(), ParamValue::from("enb-1"));
        state.insert("count".into(), ParamValue::Int(i64::MIN));
        state.insert("big".into(), ParamValue::Int(i64::MAX));
        state.insert("rate".into(), ParamValue::Float(0.1 + 0.2));
        state.insert("nan".into(), ParamValue::Float(f64::NAN));
        state.insert("inf".into(), ParamValue::Float(f64::NEG_INFINITY));
        state.insert("ok".into(), ParamValue::Bool(true));
        state.insert(
            "list".into(),
            ParamValue::List(vec![ParamValue::Int(1), ParamValue::from("x")]),
        );
        let mut inner = StateMap::new();
        inner.insert("k".into(), ParamValue::from("v"));
        state.insert("map".into(), ParamValue::Map(inner));

        let ev = JournalEvent::BlockCompleted(BlockRecord {
            node: 12,
            slot: 2,
            block: "software_upgrade".into(),
            status: "recovered".into(),
            attempts: 3,
            duration_ns: u64::MAX,
            backoff_ns: 1_500_000_000,
            error: Some("injected fault: \"quoted\"".into()),
            backout: true,
            state,
        });
        // NaN breaks PartialEq, so compare the double round-trip wire form.
        let enc = ev.encode();
        let back = JournalEvent::decode(&enc).unwrap();
        assert_eq!(back.encode(), enc);
        let JournalEvent::BlockCompleted(r) = back else {
            panic!("kind changed");
        };
        assert_eq!(r.state["count"], ParamValue::Int(i64::MIN));
        assert_eq!(r.state["big"], ParamValue::Int(i64::MAX));
        assert_eq!(r.state["rate"], ParamValue::Float(0.1 + 0.2));
        assert!(matches!(r.state["nan"], ParamValue::Float(f) if f.is_nan()));
        assert_eq!(r.duration_ns, u64::MAX);
        assert!(r.backout);
    }

    #[test]
    fn int_and_float_stay_distinct() {
        let mut state = StateMap::new();
        state.insert("i".into(), ParamValue::Int(2));
        state.insert("f".into(), ParamValue::Float(2.0));
        let ev = JournalEvent::BlockCompleted(BlockRecord {
            node: 0,
            slot: 1,
            block: "b".into(),
            status: "success".into(),
            attempts: 1,
            duration_ns: 0,
            backoff_ns: 0,
            error: None,
            backout: false,
            state,
        });
        let JournalEvent::BlockCompleted(r) = JournalEvent::decode(&ev.encode()).unwrap() else {
            panic!()
        };
        assert_eq!(r.state["i"], ParamValue::Int(2));
        assert_eq!(r.state["f"], ParamValue::Float(2.0));
    }

    #[test]
    fn garbage_payloads_are_typed_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"ev":"wat"}"#,
            r#"{"ev":"instance_admitted","node":"x","slot":1}"#,
            r#"{"ev":"block_completed","node":1,"slot":1}"#,
        ] {
            assert!(
                matches!(
                    JournalEvent::decode(bad),
                    Err(CornetError::DataIntegrity(_) | CornetError::Parse(_))
                ),
                "payload {bad:?} must fail to decode"
            );
        }
    }
}
