//! Record framing for the campaign journal.
//!
//! Each record is a single line: `<len>:<crc>:<payload>\n`, where `len` is
//! the payload length in bytes (decimal), `crc` is the FNV-1a-64 checksum
//! of the payload as 16 lowercase hex digits, and `payload` is one JSON
//! document. The framing makes the log self-describing: a reader never
//! needs to trust the payload to find the next record, and any torn or
//! bit-flipped tail is detected by the length/checksum pair and truncated
//! away on recovery.

/// FNV-1a 64-bit hash — the journal's record checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frame a payload as one journal record, trailing newline included.
pub fn encode_record(payload: &str) -> String {
    format!(
        "{}:{:016x}:{}\n",
        payload.len(),
        fnv1a64(payload.as_bytes()),
        payload
    )
}

/// Result of scanning a journal byte stream for valid records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScanOutcome {
    /// Payloads of every record that framed and checksummed correctly, in
    /// file order.
    pub payloads: Vec<String>,
    /// Byte offset just past the last valid record — the truncation point
    /// a recovering writer should `set_len` to.
    pub valid_len: usize,
    /// True when trailing bytes after `valid_len` had to be discarded
    /// (torn tail, flipped bits, or garbage).
    pub torn: bool,
}

/// End offsets of each valid record, so tests can cut a journal exactly at
/// a record boundary. `boundaries(b)[k]` is the length of a journal
/// containing the first `k + 1` records.
pub fn boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(end) = record_end(bytes, pos) {
        out.push(end);
        pos = end;
    }
    out
}

/// Scan a journal byte stream, collecting valid record payloads and
/// locating the torn-tail truncation point.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let mut pos = 0;
    while pos < bytes.len() {
        match parse_record(bytes, pos) {
            Some((payload, end)) => {
                out.payloads.push(payload);
                out.valid_len = end;
                pos = end;
            }
            None => break,
        }
    }
    out.torn = out.valid_len != bytes.len();
    out
}

/// Where the record starting at `pos` ends, if it frames and checksums.
fn record_end(bytes: &[u8], pos: usize) -> Option<usize> {
    parse_record(bytes, pos).map(|(_, end)| end)
}

fn parse_record(bytes: &[u8], start: usize) -> Option<(String, usize)> {
    // `<len>` — 1..=9 decimal digits, then ':'.
    let mut pos = start;
    let mut len: usize = 0;
    let mut digits = 0;
    while let Some(b @ b'0'..=b'9') = bytes.get(pos) {
        len = len.checked_mul(10)?.checked_add(usize::from(b - b'0'))?;
        digits += 1;
        pos += 1;
        if digits > 9 {
            return None;
        }
    }
    if digits == 0 || bytes.get(pos) != Some(&b':') {
        return None;
    }
    pos += 1;
    // `<crc>` — exactly 16 lowercase hex digits, then ':'.
    let crc_hex = bytes.get(pos..pos + 16)?;
    let crc_str = std::str::from_utf8(crc_hex).ok()?;
    let crc = u64::from_str_radix(crc_str, 16).ok()?;
    pos += 16;
    if bytes.get(pos) != Some(&b':') {
        return None;
    }
    pos += 1;
    // `<payload>\n` — length and checksum must both agree.
    let payload = bytes.get(pos..pos + len)?;
    pos += len;
    if bytes.get(pos) != Some(&b'\n') || fnv1a64(payload) != crc {
        return None;
    }
    let payload = std::str::from_utf8(payload).ok()?;
    Some((payload.to_owned(), pos + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_scan_round_trips() {
        let mut log = String::new();
        for payload in ["{}", r#"{"ev":"x"}"#, "", "unicode: é😀"] {
            log.push_str(&encode_record(payload));
        }
        let out = scan(log.as_bytes());
        assert_eq!(
            out.payloads,
            vec!["{}", r#"{"ev":"x"}"#, "", "unicode: é😀"]
        );
        assert_eq!(out.valid_len, log.len());
        assert!(!out.torn);
    }

    #[test]
    fn torn_tail_is_truncated_at_the_last_valid_record() {
        let good = encode_record("{\"a\":1}");
        let mut log = good.clone().into_bytes();
        let torn = encode_record("{\"b\":2}");
        log.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        let out = scan(&log);
        assert_eq!(out.payloads, vec!["{\"a\":1}"]);
        assert_eq!(out.valid_len, good.len());
        assert!(out.torn);
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let mut log = encode_record("first").into_bytes();
        let second = encode_record("second");
        log.extend_from_slice(second.as_bytes());
        // Flip one payload byte in the second record.
        let idx = log.len() - 2;
        log[idx] ^= 0x01;
        let out = scan(&log);
        assert_eq!(out.payloads, vec!["first"]);
        assert!(out.torn);
    }

    #[test]
    fn truncation_at_every_offset_never_yields_garbage() {
        let mut log = String::new();
        for i in 0..5 {
            log.push_str(&encode_record(&format!("{{\"n\":{i}}}")));
        }
        let bytes = log.as_bytes();
        let bounds = boundaries(bytes);
        assert_eq!(bounds.len(), 5);
        assert_eq!(*bounds.last().unwrap(), bytes.len());
        for cut in 0..=bytes.len() {
            let out = scan(&bytes[..cut]);
            // Records recovered = full records before the cut, exactly.
            let expect = bounds.iter().filter(|&&b| b <= cut).count();
            assert_eq!(out.payloads.len(), expect, "cut at {cut}");
            assert_eq!(out.torn, out.valid_len != cut);
        }
    }

    #[test]
    fn boundaries_cut_points_are_clean_journals() {
        let mut log = String::new();
        for i in 0..3 {
            log.push_str(&encode_record(&format!("rec-{i}")));
        }
        for (k, end) in boundaries(log.as_bytes()).iter().enumerate() {
            let out = scan(&log.as_bytes()[..*end]);
            assert_eq!(out.payloads.len(), k + 1);
            assert!(!out.torn);
        }
    }
}
