//! Per-campaign WAL directory layout under a daemon state directory.
//!
//! The daemon journals every campaign it drives into its own directory so
//! campaigns can be created, resumed, and garbage-collected independently:
//!
//! ```text
//! <state_dir>/
//!   campaigns/
//!     c000001/
//!       manifest.json   # identity: id, tenant, display name, meta map
//!       journal.wal     # the campaign's write-ahead log (frame.rs format)
//!       spec.json       # submitted campaign spec, verbatim (owned by the
//!                       # daemon; the store only names the path)
//! ```
//!
//! The manifest is written once at submit time, before the first journal
//! append, and is deliberately tiny: everything needed to *re-run* the
//! campaign lives in the journal's `campaign_opened` meta and the spec
//! file. Recovery scans `campaigns/*/manifest.json`; a directory without a
//! readable manifest is skipped (a crash between `mkdir` and the manifest
//! write leaves an empty shell that never held journal records).

use crate::writer::Journal;
use cornet_obs::json_escape;
use cornet_types::json::{parse, JsonValue};
use cornet_types::{CornetError, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Identity record for one campaign directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Campaign id — also the directory name (`c000001`, `c000002`, …).
    pub id: String,
    /// Owning tenant; every API request must present a matching tenant id.
    pub tenant: String,
    /// Human-readable campaign name (from the submitted spec).
    pub name: String,
    /// Free-form metadata (scenario parameters, fsync policy, …).
    pub meta: BTreeMap<String, String>,
}

impl Manifest {
    /// Render as a single-line JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"tenant\":\"{}\",\"name\":\"{}\",\"meta\":{{",
            json_escape(&self.id),
            json_escape(&self.tenant),
            json_escape(&self.name)
        );
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
        out
    }

    /// Parse a manifest from its JSON text.
    pub fn decode(text: &str) -> Result<Manifest> {
        let value = parse(text)?;
        if value.entries().is_none() {
            return Err(CornetError::Parse("manifest: not an object".into()));
        }
        let field = |name: &str| -> Result<String> {
            value
                .get(name)
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .ok_or_else(|| CornetError::Parse(format!("manifest: missing string {name:?}")))
        };
        let mut meta = BTreeMap::new();
        if let Some(JsonValue::Object(pairs)) = value.get("meta") {
            for (k, v) in pairs {
                let v = v.as_str().ok_or_else(|| {
                    CornetError::Parse(format!("manifest: meta {k:?} is not a string"))
                })?;
                meta.insert(k.clone(), v.to_owned());
            }
        }
        Ok(Manifest {
            id: field("id")?,
            tenant: field("tenant")?,
            name: field("name")?,
            meta,
        })
    }
}

/// Filesystem paths of one campaign directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignPaths {
    /// The campaign's directory.
    pub dir: PathBuf,
    /// `manifest.json` inside it.
    pub manifest: PathBuf,
    /// `journal.wal` inside it.
    pub journal: PathBuf,
    /// `spec.json` inside it (the submitted body, stored by the daemon).
    pub spec: PathBuf,
}

/// The state directory holding one WAL directory per campaign.
#[derive(Clone, Debug)]
pub struct CampaignStore {
    campaigns: PathBuf,
}

impl CampaignStore {
    /// Open (creating if needed) the store rooted at `state_dir`.
    pub fn open(state_dir: impl AsRef<Path>) -> Result<CampaignStore> {
        let campaigns = state_dir.as_ref().join("campaigns");
        fs::create_dir_all(&campaigns).map_err(|e| io_err("create", &campaigns, &e))?;
        Ok(CampaignStore { campaigns })
    }

    /// Directory holding the campaign subdirectories.
    pub fn campaigns_dir(&self) -> &Path {
        &self.campaigns
    }

    /// Allocate the next campaign id: one past the highest existing
    /// `cNNNNNN` directory, so ids stay unique across daemon restarts.
    pub fn next_id(&self) -> Result<String> {
        let mut max = 0u64;
        for manifest in self.scan()? {
            if let Some(n) = manifest
                .id
                .strip_prefix('c')
                .and_then(|n| n.parse::<u64>().ok())
            {
                max = max.max(n);
            }
        }
        Ok(format!("c{:06}", max + 1))
    }

    /// Paths for campaign `id`. Ids are store-allocated (`next_id`), but
    /// reject path separators defensively so a hostile id cannot escape
    /// the state directory.
    pub fn paths(&self, id: &str) -> Result<CampaignPaths> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(CornetError::InvalidInput(format!("bad campaign id {id:?}")));
        }
        let dir = self.campaigns.join(id);
        Ok(CampaignPaths {
            manifest: dir.join("manifest.json"),
            journal: dir.join("journal.wal"),
            spec: dir.join("spec.json"),
            dir,
        })
    }

    /// Create the campaign directory and persist its manifest. The
    /// manifest lands before any journal append, so a directory with a
    /// journal always has its identity on disk.
    pub fn create(&self, manifest: &Manifest) -> Result<CampaignPaths> {
        let paths = self.paths(&manifest.id)?;
        if paths.dir.exists() {
            return Err(CornetError::InvalidInput(format!(
                "campaign {} already exists",
                manifest.id
            )));
        }
        fs::create_dir_all(&paths.dir).map_err(|e| io_err("create", &paths.dir, &e))?;
        write_atomic(&paths.manifest, &manifest.encode())?;
        Ok(paths)
    }

    /// Atomically rewrite an existing campaign's manifest — the daemon
    /// bakes outcome summaries into the meta map when a campaign reaches
    /// a terminal state, so restarts can report results without replaying
    /// the journal.
    pub fn update(&self, manifest: &Manifest) -> Result<()> {
        let paths = self.paths(&manifest.id)?;
        if !paths.dir.is_dir() {
            return Err(CornetError::InvalidInput(format!(
                "campaign {} does not exist",
                manifest.id
            )));
        }
        write_atomic(&paths.manifest, &manifest.encode())
    }

    /// Read one campaign's manifest.
    pub fn read_manifest(&self, id: &str) -> Result<Manifest> {
        let paths = self.paths(id)?;
        let text =
            fs::read_to_string(&paths.manifest).map_err(|e| io_err("read", &paths.manifest, &e))?;
        Manifest::decode(&text)
    }

    /// All campaigns with a readable manifest, sorted by id. Directories
    /// without one (crash between mkdir and manifest write) are skipped.
    pub fn scan(&self) -> Result<Vec<Manifest>> {
        let mut out = Vec::new();
        let entries =
            fs::read_dir(&self.campaigns).map_err(|e| io_err("scan", &self.campaigns, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan", &self.campaigns, &e))?;
            let manifest_path = entry.path().join("manifest.json");
            let Ok(text) = fs::read_to_string(&manifest_path) else {
                continue;
            };
            if let Ok(manifest) = Manifest::decode(&text) {
                out.push(manifest);
            }
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// True when the campaign's journal exists and its last surviving
    /// record is `campaign_closed` — i.e. there is nothing to resume.
    pub fn is_closed(&self, id: &str) -> Result<bool> {
        let paths = self.paths(id)?;
        if !paths.journal.exists() {
            return Ok(false);
        }
        let (events, _) = Journal::read(&paths.journal)?;
        Ok(matches!(
            events.last(),
            Some(crate::event::JournalEvent::CampaignClosed)
        ))
    }
}

fn write_atomic(path: &Path, text: &str) -> Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, text).map_err(|e| io_err("write", &tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, &e))?;
    Ok(())
}

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> CornetError {
    CornetError::ExecutionFailed(format!("store {op} {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::FsyncPolicy;
    use crate::JournalEvent;

    fn tmp_store(name: &str) -> (PathBuf, CampaignStore) {
        let dir = std::env::temp_dir().join(format!("cornet-store-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = CampaignStore::open(&dir).unwrap();
        (dir, store)
    }

    fn manifest(id: &str, tenant: &str) -> Manifest {
        let mut meta = BTreeMap::new();
        meta.insert("seed".into(), "42".into());
        Manifest {
            id: id.into(),
            tenant: tenant.into(),
            name: format!("campaign {id}"),
            meta,
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = manifest("c000007", "acme \"co\"");
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn create_scan_and_id_allocation() {
        let (dir, store) = tmp_store("alloc");
        assert_eq!(store.next_id().unwrap(), "c000001");
        store.create(&manifest("c000001", "a")).unwrap();
        store.create(&manifest("c000003", "b")).unwrap();
        assert_eq!(store.next_id().unwrap(), "c000004");
        let ids: Vec<_> = store.scan().unwrap().into_iter().map(|m| m.id).collect();
        assert_eq!(ids, ["c000001", "c000003"]);
        let err = store.create(&manifest("c000001", "a")).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_ids_are_refused() {
        let (dir, store) = tmp_store("hostile");
        for id in ["../escape", "a/b", "", "c 1"] {
            assert!(store.paths(id).is_err(), "{id:?} should be refused");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn is_closed_tracks_the_terminal_record() {
        let (dir, store) = tmp_store("closed");
        let paths = store.create(&manifest("c000001", "a")).unwrap();
        assert!(!store.is_closed("c000001").unwrap(), "no journal yet");
        let journal = Journal::create(&paths.journal, FsyncPolicy::Never).unwrap();
        journal
            .append(&JournalEvent::InstanceAdmitted { node: 0, slot: 1 })
            .unwrap();
        assert!(!store.is_closed("c000001").unwrap(), "in flight");
        journal.append(&JournalEvent::CampaignClosed).unwrap();
        assert!(store.is_closed("c000001").unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
