//! # cornet-journal — durable campaign journal
//!
//! A write-ahead log for change-management campaigns. The orchestrator
//! appends one record per lifecycle event — campaign opened, instance
//! admitted, block completed (including retries, timeouts, and backout
//! steps), breaker trips, campaign closed — so that a process crash at
//! any byte loses at most the record being written. On reopen the reader
//! scans the length-prefixed, checksummed frames, truncates the torn
//! tail, and hands the surviving event stream to
//! `Dispatcher::resume_from_journal`, which skips every block the log
//! proves complete and re-runs only the interrupted remainder.
//!
//! The crate deliberately knows nothing about orchestrator types: records
//! carry primitive fields (status labels, node/slot integers, a
//! type-tagged parameter tree for state snapshots), so the log can be
//! decoded, inspected, and replayed without dragging execution machinery
//! into the dependency graph.
//!
//! Crash testing is first-class: a [`CrashSwitch`] shared between the
//! fault-injecting executor and the journal simulates `kill -9` (appends
//! silently dropped) and torn writes (the next record cut in half), and
//! the frame scanner's [`frame::boundaries`] lets tests cut a journal at
//! every byte offset and assert recovery behaves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod frame;
pub mod store;
pub mod writer;

pub use event::{BlockRecord, JournalEvent, Recovery, StateMap};
pub use frame::{boundaries, encode_record, fnv1a64, scan, ScanOutcome};
pub use store::{CampaignPaths, CampaignStore, Manifest};
pub use writer::{CrashMode, CrashSwitch, EventListener, FsyncPolicy, Journal};
