//! The append-only journal writer and its crash/recovery entry points.

use crate::event::{JournalEvent, Recovery};
use crate::frame::{encode_record, scan};
use cornet_obs::Tracer;
use cornet_types::{CornetError, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// When the journal pushes appended records to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — strongest durability, slowest.
    Always,
    /// `fsync` after every N appends (and on [`Journal::sync`]).
    EveryN(u32),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `always`, `never`, or `every-n=N`.
    pub fn parse(text: &str) -> Result<FsyncPolicy> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => {
                let n = other
                    .strip_prefix("every-n=")
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|n| *n > 0);
                match n {
                    Some(n) => Ok(FsyncPolicy::EveryN(n)),
                    None => Err(CornetError::InvalidInput(format!(
                        "bad fsync policy {other:?}: expected always, never, or every-n=N"
                    ))),
                }
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-n={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Callback invoked after each record durably reaches the journal file.
/// The campaign manager uses it to fan appended events out to progress
/// tracking and live event streams without re-reading the log.
pub type EventListener = Arc<dyn Fn(&JournalEvent) + Send + Sync>;

/// How an injected crash lands relative to the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// The process dies mid-block: the block's completion record is never
    /// appended at all.
    MidBlock,
    /// The process dies mid-append: the next record is torn in half on
    /// disk (framing broken, checksum wrong).
    MidAppend,
}

const LIVE: u8 = 0;
const TEAR_NEXT: u8 = 1;
const DEAD: u8 = 2;

/// Shared kill switch for crash simulation. Once dead, the journal
/// silently drops every append — exactly what `kill -9` looks like from
/// the filesystem's point of view: the process may keep running in the
/// test harness, but nothing it does reaches the log.
#[derive(Clone, Debug, Default)]
pub struct CrashSwitch {
    state: Arc<AtomicU8>,
}

impl CrashSwitch {
    /// A live switch (no crash armed).
    pub fn new() -> Self {
        CrashSwitch {
            state: Arc::new(AtomicU8::new(LIVE)),
        }
    }

    /// Die now: all subsequent appends are dropped.
    pub fn kill(&self) {
        self.state.store(DEAD, Ordering::SeqCst);
    }

    /// Tear the next appended record in half, then die.
    pub fn tear_next(&self) {
        self.state.store(TEAR_NEXT, Ordering::SeqCst);
    }

    /// Has the simulated process died?
    pub fn is_dead(&self) -> bool {
        self.state.load(Ordering::SeqCst) == DEAD
    }

    fn take(&self) -> u8 {
        let s = self.state.load(Ordering::SeqCst);
        if s == TEAR_NEXT {
            self.state.store(DEAD, Ordering::SeqCst);
        }
        s
    }
}

struct Inner {
    file: File,
    policy: FsyncPolicy,
    since_sync: u32,
}

/// Append-only campaign journal. Clone-cheap and thread-safe: the
/// dispatcher's worker pool appends from many threads, and the frame
/// layer guarantees each record lands contiguously because every append
/// is a single `write_all` under one lock.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
    path: Arc<PathBuf>,
    tracer: Tracer,
    crash: CrashSwitch,
    listener: Option<EventListener>,
}

impl Journal {
    /// Create a fresh journal, truncating anything already at `path`.
    pub fn create(path: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Journal> {
        let path = path.as_ref();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create", path, &e))?;
        Ok(Journal::from_file(file, path, policy))
    }

    /// Open an existing journal for resume: scan it, drop any torn tail
    /// (physically truncating the file), and return the surviving events
    /// together with the writer positioned to append after them.
    pub fn recover(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(Journal, Vec<JournalEvent>, Recovery)> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| io_err("read", path, &e))?;
        let (events, recovery) = decode_scan(&bytes)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, &e))?;
        file.set_len(recovery.valid_len)
            .map_err(|e| io_err("truncate", path, &e))?;
        let journal = Journal::from_file(file, path, policy);
        // Position after the valid prefix (set_len does not move the
        // cursor of a fresh handle — it starts at 0, so seek explicitly).
        use std::io::Seek;
        journal
            .inner
            .lock()
            .file
            .seek(std::io::SeekFrom::Start(recovery.valid_len))
            .map_err(|e| io_err("seek", path, &e))?;
        Ok((journal, events, recovery))
    }

    /// Read a journal without taking the write handle or truncating
    /// anything — for inspection (`cornet resume` peeks at the metadata
    /// before committing to a resume).
    pub fn read(path: impl AsRef<Path>) -> Result<(Vec<JournalEvent>, Recovery)> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| io_err("read", path, &e))?;
        decode_scan(&bytes)
    }

    fn from_file(file: File, path: &Path, policy: FsyncPolicy) -> Journal {
        Journal {
            inner: Arc::new(Mutex::new(Inner {
                file,
                policy,
                since_sync: 0,
            })),
            path: Arc::new(path.to_owned()),
            tracer: Tracer::noop(),
            crash: CrashSwitch::new(),
            listener: None,
        }
    }

    /// Attach a tracer: appends and fsyncs become spans and counters.
    pub fn with_tracer(mut self, tracer: Tracer) -> Journal {
        self.tracer = tracer;
        self
    }

    /// Attach a crash switch for fault-injection tests.
    pub fn with_crash_switch(mut self, crash: CrashSwitch) -> Journal {
        self.crash = crash;
        self
    }

    /// Attach a listener called after each record reaches the file.
    /// Dropped appends (dead crash switch, torn writes) never notify:
    /// the listener sees exactly what a recovery scan would.
    pub fn with_listener(mut self, listener: EventListener) -> Journal {
        self.listener = Some(listener);
        self
    }

    /// The attached listener, if any — so a resume can carry it over to
    /// the recovered write handle.
    pub fn listener(&self) -> Option<EventListener> {
        self.listener.clone()
    }

    /// The switch controlling this journal's simulated crash state.
    pub fn crash_switch(&self) -> CrashSwitch {
        self.crash.clone()
    }

    /// The file this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one event. A dead crash switch silently drops the record —
    /// only what reached the file before the crash matters for recovery.
    pub fn append(&self, event: &JournalEvent) -> Result<()> {
        match self.crash.take() {
            DEAD => return Ok(()),
            TEAR_NEXT => {
                let record = encode_record(&event.encode());
                let torn = &record.as_bytes()[..record.len() / 2];
                let mut inner = self.inner.lock();
                inner
                    .file
                    .write_all(torn)
                    .map_err(|e| io_err("append", &self.path, &e))?;
                return Ok(());
            }
            _ => {}
        }
        let mut span = self.tracer.span("journal.append");
        span.attr("event", event.kind());
        let record = encode_record(&event.encode());
        let bytes = record.as_bytes();
        span.attr("bytes", bytes.len() as i64);
        let mut inner = self.inner.lock();
        inner
            .file
            .write_all(bytes)
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.tracer
            .incr("journal.bytes_written", bytes.len() as u64);
        inner.since_sync += 1;
        let due = match inner.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.fsync_locked(&mut inner, Some(span.id()))?;
        }
        drop(inner);
        span.finish();
        if let Some(listener) = &self.listener {
            listener(event);
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&self) -> Result<()> {
        if self.crash.is_dead() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        if inner.since_sync == 0 {
            return Ok(());
        }
        self.fsync_locked(&mut inner, None)
    }

    fn fsync_locked(&self, inner: &mut Inner, parent: Option<cornet_obs::SpanId>) -> Result<()> {
        let span = self.tracer.span_with_parent("journal.fsync", parent);
        inner
            .file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.path, &e))?;
        inner.since_sync = 0;
        self.tracer.incr("journal.fsyncs", 1);
        span.finish();
        Ok(())
    }
}

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> CornetError {
    CornetError::ExecutionFailed(format!("journal {op} {}: {e}", path.display()))
}

/// Scan raw journal bytes and decode the valid prefix. A record that
/// frames correctly but fails to decode counts as corruption: the scan
/// stops there and everything after it is treated as torn.
fn decode_scan(bytes: &[u8]) -> Result<(Vec<JournalEvent>, Recovery)> {
    let outcome = scan(bytes);
    let mut events = Vec::with_capacity(outcome.payloads.len());
    let mut valid_len = 0usize;
    let mut pos = 0usize;
    let mut decode_torn = false;
    for payload in &outcome.payloads {
        // Reconstruct each record's end offset from the frame shape.
        pos += encode_record(payload).len();
        match JournalEvent::decode(payload) {
            Ok(ev) => {
                events.push(ev);
                valid_len = pos;
            }
            Err(_) => {
                decode_torn = true;
                break;
            }
        }
    }
    let recovery = Recovery {
        events: events.len(),
        valid_len: valid_len as u64,
        dropped_bytes: (bytes.len() - valid_len) as u64,
        torn: outcome.torn || decode_torn,
    };
    Ok((events, recovery))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_obs::ManualClock;
    use std::collections::BTreeMap;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cornet-journal-{name}-{}.log", std::process::id()))
    }

    fn opened() -> JournalEvent {
        JournalEvent::CampaignOpened {
            meta: BTreeMap::new(),
            assignments: vec![(0, 1), (1, 1)],
            concurrency: 2,
        }
    }

    #[test]
    fn append_recover_round_trips_and_is_idempotent() {
        let path = tmp("round-trip");
        let journal = Journal::create(&path, FsyncPolicy::Always).unwrap();
        journal.append(&opened()).unwrap();
        journal
            .append(&JournalEvent::InstanceAdmitted { node: 0, slot: 1 })
            .unwrap();
        journal.append(&JournalEvent::CampaignClosed).unwrap();
        drop(journal);

        let (journal, events, rec) = Journal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.events, 3);
        assert_eq!(rec.dropped_bytes, 0);
        assert!(!rec.torn);
        // Appending after recovery extends, not overwrites.
        journal
            .append(&JournalEvent::InstanceAdmitted { node: 1, slot: 1 })
            .unwrap();
        drop(journal);
        let (events, rec) = Journal::read(&path).unwrap();
        assert_eq!(events.len(), 4);
        assert!(!rec.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_truncates_a_torn_tail() {
        let path = tmp("torn");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        journal.append(&opened()).unwrap();
        journal
            .append(&JournalEvent::InstanceAdmitted { node: 0, slot: 1 })
            .unwrap();
        drop(journal);
        // Tear the last record by hand.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (journal, events, rec) = Journal::recover(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(events.len(), 1, "torn admitted record dropped");
        assert!(rec.torn);
        assert!(rec.dropped_bytes > 0);
        journal.append(&JournalEvent::CampaignClosed).unwrap();
        drop(journal);
        let (events, rec) = Journal::read(&path).unwrap();
        assert!(!rec.torn, "file is clean again after recovery");
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], JournalEvent::CampaignClosed));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_switch_kill_drops_appends_and_tear_halves_a_record() {
        let path = tmp("crash");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        journal.append(&opened()).unwrap();
        let switch = journal.crash_switch();
        switch.tear_next();
        journal.append(&JournalEvent::CampaignClosed).unwrap();
        assert!(switch.is_dead(), "tear is one-shot, then dead");
        journal
            .append(&JournalEvent::InstanceAdmitted { node: 9, slot: 9 })
            .unwrap();
        drop(journal);

        let (events, rec) = Journal::read(&path).unwrap();
        assert_eq!(events.len(), 1, "only the pre-crash record survives");
        assert!(rec.torn, "the half-written record is a torn tail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policies_batch_as_configured() {
        for (policy, appends, expect_fsyncs) in [
            (FsyncPolicy::Always, 4u32, 4u64),
            (FsyncPolicy::EveryN(3), 7, 2),
            (FsyncPolicy::Never, 5, 0),
        ] {
            let path = tmp(&format!("fsync-{appends}"));
            let tracer = Tracer::with_clock(ManualClock::ticking(1));
            let journal = Journal::create(&path, policy)
                .unwrap()
                .with_tracer(tracer.clone());
            for _ in 0..appends {
                journal.append(&JournalEvent::CampaignClosed).unwrap();
            }
            let snap = tracer.metrics().unwrap().snapshot();
            assert_eq!(snap.counter("journal.fsyncs"), expect_fsyncs, "{policy:?}");
            assert!(snap.counter("journal.bytes_written") > 0);
            let trace = tracer.take();
            assert_eq!(
                trace.spans_named("journal.append").count(),
                appends as usize
            );
            assert_eq!(
                trace.spans_named("journal.fsync").count(),
                expect_fsyncs as usize
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn explicit_sync_flushes_pending_appends_once() {
        let path = tmp("explicit-sync");
        let tracer = Tracer::with_clock(ManualClock::ticking(1));
        let journal = Journal::create(&path, FsyncPolicy::Never)
            .unwrap()
            .with_tracer(tracer.clone());
        journal.append(&opened()).unwrap();
        journal.sync().unwrap();
        journal.sync().unwrap();
        let snap = tracer.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("journal.fsyncs"), 1, "second sync is a no-op");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_corruption_in_a_framed_record_truncates_there() {
        let path = tmp("decode-corrupt");
        // A record that frames perfectly but is not a journal event.
        let mut log = crate::frame::encode_record(&opened().encode());
        log.push_str(&crate::frame::encode_record("{\"ev\":\"nonsense\"}"));
        std::fs::write(&path, &log).unwrap();
        let (journal, events, rec) = Journal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(events.len(), 1);
        assert!(rec.torn);
        drop(journal);
        assert!(std::fs::metadata(&path).unwrap().len() < log.len() as u64);
        std::fs::remove_file(&path).ok();
    }
}
