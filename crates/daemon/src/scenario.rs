//! The journaled upgrade scenario: the one deterministic campaign shape
//! shared by `cornet run --journal`, `cornet resume`, and every campaign
//! the daemon drives.
//!
//! The workspace is simulation-first — executors are seeded fault-storm
//! simulations, not SSH sessions — so a campaign's entire execution is
//! determined by a handful of parameters (seed, node count, fault rate,
//! retry budget, breaker thresholds). Those parameters round-trip through
//! the journal's `campaign_opened` metadata and the daemon's campaign
//! manifests: whoever holds the meta map can rebuild the exact dispatcher
//! the original run used, which is what makes resume (CLI or daemon,
//! same process or after `kill -9`) replay bit-identically.

use cornet_catalog::builtin_catalog;
use cornet_journal::{CrashMode, CrashSwitch};
use cornet_orchestrator::resilience::{
    BreakerTrip, CircuitBreaker, FaultPlan, FaultyExecutor, RetryPolicy,
};
use cornet_orchestrator::{DispatchReport, ExecutorRegistry, GlobalState};
use cornet_types::json::JsonValue;
use cornet_types::{NodeId, ParamValue, Schedule, Timeslot};
use cornet_workflow::builtin::software_upgrade_workflow;
use cornet_workflow::{Designer, WarArtifact};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Counts executor invocations that actually ran (as opposed to being
/// replayed from a journal) — the zero-re-execution witness used by the
/// recovery tests and surfaced per campaign in the daemon API.
pub type ExecutionWitness = Arc<AtomicUsize>;

/// The fixed parameters of a journaled demo campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalScenario {
    /// Fault-storm RNG seed.
    pub seed: u64,
    /// Roll-out size (instances).
    pub nodes: u32,
    /// Instances per timeslot.
    pub per_slot: u32,
    /// Dispatcher worker-pool size.
    pub concurrency: usize,
    /// Transient-fault probability in thousandths (200 = 20%).
    pub fault_rate_milli: u32,
    /// Simulated per-block latency in milliseconds.
    pub latency_ms: u64,
    /// Retry budget per block.
    pub attempts: u32,
    /// Breaker failure threshold in thousandths (900 = 90%).
    pub breaker_threshold_milli: u32,
    /// Minimum samples before the breaker may trip.
    pub breaker_min_samples: usize,
}

impl Default for JournalScenario {
    fn default() -> Self {
        JournalScenario {
            seed: 42,
            nodes: 24,
            per_slot: 8,
            concurrency: 4,
            fault_rate_milli: 200,
            latency_ms: 5,
            attempts: 6,
            breaker_threshold_milli: 900,
            breaker_min_samples: 8,
        }
    }
}

impl JournalScenario {
    /// Parse the optional `scenario` object of a submitted campaign spec;
    /// absent keys keep their defaults.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let mut s = JournalScenario::default();
        let Some(entries) = value.entries() else {
            return Err("scenario must be a JSON object".into());
        };
        for (key, v) in entries {
            let n = v
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| format!("scenario.{key} must be a non-negative integer"))?;
            match key.as_str() {
                "seed" => s.seed = n as u64,
                "nodes" => s.nodes = n as u32,
                "per_slot" => s.per_slot = n as u32,
                "concurrency" => s.concurrency = n as usize,
                "fault_rate_milli" => s.fault_rate_milli = n as u32,
                "latency_ms" => s.latency_ms = n as u64,
                "attempts" => s.attempts = n as u32,
                "breaker_threshold_milli" => s.breaker_threshold_milli = n as u32,
                "breaker_min_samples" => s.breaker_min_samples = n as usize,
                other => return Err(format!("unknown scenario key {other:?}")),
            }
        }
        if s.nodes == 0 || s.per_slot == 0 || s.concurrency == 0 || s.attempts == 0 {
            return Err("scenario sizes must be positive".into());
        }
        Ok(s)
    }

    /// Serialize as journal/manifest metadata.
    pub fn meta(&self) -> BTreeMap<String, String> {
        BTreeMap::from([
            ("scenario".into(), "journaled_upgrade".into()),
            ("seed".into(), self.seed.to_string()),
            ("nodes".into(), self.nodes.to_string()),
            ("per_slot".into(), self.per_slot.to_string()),
            ("concurrency".into(), self.concurrency.to_string()),
            ("fault_rate_milli".into(), self.fault_rate_milli.to_string()),
            ("latency_ms".into(), self.latency_ms.to_string()),
            ("attempts".into(), self.attempts.to_string()),
            (
                "breaker_threshold_milli".into(),
                self.breaker_threshold_milli.to_string(),
            ),
            (
                "breaker_min_samples".into(),
                self.breaker_min_samples.to_string(),
            ),
        ])
    }

    /// Rebuild from journal/manifest metadata (the resume path).
    pub fn from_meta(meta: &BTreeMap<String, String>) -> Result<Self, String> {
        fn field<T: std::str::FromStr>(
            meta: &BTreeMap<String, String>,
            key: &str,
        ) -> Result<T, String> {
            meta.get(key)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("journal metadata is missing or corrupt: '{key}'"))
        }
        if meta.get("scenario").map(String::as_str) != Some("journaled_upgrade") {
            return Err("journal was not written by a cornet campaign".into());
        }
        Ok(JournalScenario {
            seed: field(meta, "seed")?,
            nodes: field(meta, "nodes")?,
            // Journals written before the slot width was recorded used 8.
            per_slot: field(meta, "per_slot").unwrap_or(8),
            concurrency: field(meta, "concurrency")?,
            fault_rate_milli: field(meta, "fault_rate_milli")?,
            latency_ms: field(meta, "latency_ms")?,
            attempts: field(meta, "attempts")?,
            breaker_threshold_milli: field(meta, "breaker_threshold_milli")?,
            breaker_min_samples: field(meta, "breaker_min_samples")?,
        })
    }

    /// The campaign schedule: `nodes` instances, `per_slot` per timeslot.
    pub fn schedule(&self) -> Schedule {
        let mut s = Schedule::default();
        for i in 0..self.nodes {
            s.assignments
                .insert(NodeId(i), Timeslot(i / self.per_slot.max(1) + 1));
        }
        s
    }

    /// The campaign's circuit breaker.
    pub fn breaker(&self) -> CircuitBreaker {
        CircuitBreaker {
            failure_threshold: self.breaker_threshold_milli as f64 / 1000.0,
            min_samples: self.breaker_min_samples,
        }
    }

    /// The Fig. 4 upgrade workflow with a roll_back backout flow, packaged.
    pub fn war(&self) -> Result<WarArtifact, String> {
        let cat = builtin_catalog();
        let mut wf = software_upgrade_workflow(&cat);
        let mut d = Designer::new(&cat, "backout");
        let s = d.start();
        let rb = d.task("roll_back").expect("catalog has roll_back");
        let e = d.end();
        d.connect(s, rb).connect(rb, e);
        wf.set_backout(d.build());
        WarArtifact::package(&wf, &cat).map_err(|e| e.to_string())
    }

    /// The seeded fault-storm registry. `crash` arms a deterministic kill
    /// at the given node's first software_upgrade invocation; `witness`
    /// counts every executor invocation that actually runs (replayed
    /// blocks never touch an executor, so resumed campaigns increment it
    /// only for the remainder).
    pub fn registry(
        &self,
        crash: Option<(u32, CrashSwitch)>,
        witness: Option<ExecutionWitness>,
    ) -> ExecutorRegistry {
        let mut plan = FaultPlan::transient(self.seed, self.fault_rate_milli as f64 / 1000.0)
            .with_latency_ms(self.latency_ms);
        let happy = happy_upgrade_registry(witness);
        let mut reg = match crash {
            Some((node, switch)) => {
                // Node names render as `enb-id000009` (NodeId's Display).
                plan = plan.crash_at(
                    "software_upgrade",
                    &format!("enb-{}", NodeId(node)),
                    1,
                    CrashMode::MidBlock,
                );
                FaultyExecutor::wrap_with_crash(&happy, &plan, switch)
            }
            None => FaultyExecutor::wrap(&happy, &plan),
        };
        reg.set_default_retry_policy(RetryPolicy::with_attempts(self.attempts));
        reg
    }

    /// Per-node workflow inputs.
    pub fn inputs(node: NodeId) -> GlobalState {
        let mut g = GlobalState::new();
        g.insert("node".into(), ParamValue::from(format!("enb-{node}")));
        g.insert("software_version".into(), ParamValue::from("20.1"));
        g
    }

    /// One-line human summary (the line `cornet run --journal` prints).
    pub fn summary_line(report: &DispatchReport, trip: Option<&BreakerTrip>) -> String {
        format!(
            "campaign: {} instances, {} completed, {} failed, {} rolled back, \
             trip={} fingerprint={:016x}",
            report.instances.len(),
            report.completed(),
            report.failures().len(),
            report.rolled_back(),
            trip.map_or_else(|| "none".into(), |t| t.block.clone()),
            report_fingerprint(report),
        )
    }
}

/// The happy-path upgrade executor set, optionally counting invocations.
fn happy_upgrade_registry(witness: Option<ExecutionWitness>) -> ExecutorRegistry {
    let mut reg = ExecutorRegistry::new();
    let count = move |w: &Option<ExecutionWitness>| {
        if let Some(w) = w {
            w.fetch_add(1, Ordering::SeqCst);
        }
    };
    let w = witness.clone();
    reg.register("health_check", move |s| {
        count(&w);
        s.insert("healthy".into(), ParamValue::from(true));
        Ok(())
    });
    let w = witness.clone();
    reg.register("software_upgrade", move |s| {
        count(&w);
        s.insert("previous_version".into(), ParamValue::from("19.3"));
        Ok(())
    });
    let w = witness.clone();
    reg.register("pre_post_comparison", move |s| {
        count(&w);
        s.insert("passed".into(), ParamValue::from(true));
        Ok(())
    });
    let w = witness;
    reg.register("roll_back", move |_| {
        count(&w);
        Ok(())
    });
    reg
}

/// FNV-1a-64 over the outcome rows of a dispatch report: node, status,
/// and every block's name/status/attempts/sim-duration/backoff. Two runs
/// with the same fingerprint produced the same campaign outcome, so crash
/// recovery is verifiable by comparing two numbers.
pub fn report_fingerprint(report: &DispatchReport) -> u64 {
    use std::fmt::Write;
    let mut text = String::new();
    for i in &report.instances {
        let _ = write!(text, "{}|{:?};", i.node.0, i.status);
        for b in &i.blocks {
            let _ = write!(
                text,
                "{}:{:?}:{}:{}:{};",
                b.block,
                b.status,
                b.attempts,
                b.duration.as_nanos(),
                b.backoff.as_nanos()
            );
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cornet_orchestrator::Dispatcher;

    #[test]
    fn meta_round_trips() {
        let s = JournalScenario {
            seed: 7,
            nodes: 12,
            per_slot: 3,
            concurrency: 2,
            fault_rate_milli: 100,
            latency_ms: 1,
            attempts: 4,
            breaker_threshold_milli: 800,
            breaker_min_samples: 5,
        };
        assert_eq!(JournalScenario::from_meta(&s.meta()).unwrap(), s);
    }

    #[test]
    fn from_meta_defaults_the_slot_width_for_old_journals() {
        let mut meta = JournalScenario::default().meta();
        meta.remove("per_slot");
        assert_eq!(JournalScenario::from_meta(&meta).unwrap().per_slot, 8);
    }

    #[test]
    fn from_json_overrides_and_validates() {
        use cornet_types::json::parse;
        let v = parse(r#"{"nodes": 6, "seed": 9, "per_slot": 2}"#).unwrap();
        let s = JournalScenario::from_json(&v).unwrap();
        assert_eq!((s.nodes, s.seed, s.per_slot), (6, 9, 2));
        assert_eq!(s.concurrency, 4, "unset keys keep defaults");
        assert!(JournalScenario::from_json(&parse(r#"{"nodes": 0}"#).unwrap()).is_err());
        assert!(JournalScenario::from_json(&parse(r#"{"bogus": 1}"#).unwrap()).is_err());
    }

    #[test]
    fn identical_scenarios_produce_identical_fingerprints() {
        let s = JournalScenario {
            nodes: 8,
            latency_ms: 1,
            ..Default::default()
        };
        let run = || {
            let d =
                Dispatcher::new(s.war().unwrap(), s.registry(None, None), s.concurrency).unwrap();
            let (report, _) = d
                .run_with_breaker(&s.schedule(), JournalScenario::inputs, &s.breaker())
                .unwrap();
            report_fingerprint(&report)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn witness_counts_executor_invocations() {
        let s = JournalScenario {
            nodes: 4,
            fault_rate_milli: 0,
            latency_ms: 1,
            ..Default::default()
        };
        let witness: ExecutionWitness = Arc::new(AtomicUsize::new(0));
        let d = Dispatcher::new(
            s.war().unwrap(),
            s.registry(None, Some(witness.clone())),
            s.concurrency,
        )
        .unwrap();
        let report = d.run(&s.schedule(), JournalScenario::inputs).unwrap();
        assert_eq!(report.completed(), 4);
        // 3 mainline blocks per instance, no faults, no backouts.
        assert_eq!(witness.load(Ordering::SeqCst), 12);
    }
}
