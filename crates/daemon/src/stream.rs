//! `/v1/ingest` — the daemon face of the streaming verification engine.
//!
//! A tenant POSTs KPI samples as JSONL and GETs back live detections plus
//! the current go/no-go verdicts. The session (change scope, synthetic
//! study/control inventory, verification rule) is declared by query
//! parameters on the **first** POST, [`JournalScenario`]-style: every
//! parameter has a deterministic default, so `POST /v1/ingest` with a
//! body alone starts a sensible session.
//!
//! | Method | Path         | Purpose                                       |
//! |--------|--------------|-----------------------------------------------|
//! | POST   | `/v1/ingest` | append samples (JSONL body), pump the engine  |
//! | GET    | `/v1/ingest` | ingest counters, detections, current verdicts |
//!
//! Sample lines look like
//! `{"node":"study-0","kpi":"thr","minute":4200,"value":97.3}` with an
//! optional `"carrier":<n>`. Off-grid minutes and unknown node names are
//! counted as rejected, never fatal — a live feed must not lose a whole
//! batch to one bad line. Sessions are per tenant and isolated.
//!
//! [`JournalScenario`]: crate::scenario::JournalScenario

use cornet_obs::{json_escape, Tracer};
use cornet_types::json::{parse, JsonValue};
use cornet_types::{Attributes, Inventory, NfType, NodeId, Topology};
use cornet_verifier::{
    ChangeScope, Expectation, GoNoGo, KpiQuery, StreamConfig, StreamDetection, StreamSample,
    StreamingVerifier, VerificationRule,
};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, RwLock};

/// Detections retained per session for `GET /v1/ingest`.
const DETECTION_RING: usize = 64;

/// Declarative shape of one ingest session, from first-POST query
/// parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamSpec {
    /// Study nodes (`study-0` … `study-{n-1}`), each paired with a
    /// control (`control-i`).
    pub nodes: usize,
    /// KPI name carried by the session's verification rule.
    pub kpi: String,
    /// Change execution minute shared by every study node.
    pub change_minute: u64,
    /// Sampling grid, minutes per step.
    pub step_minutes: u64,
    /// Two-window size of the per-sample detectors.
    pub window: usize,
    /// Detection threshold in robust sigma units.
    pub threshold: f64,
    /// Expectation of the rule's KPI query.
    pub expect: Expectation,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            nodes: 8,
            kpi: "kpi".to_string(),
            change_minute: 6000,
            step_minutes: 60,
            window: 8,
            threshold: 5.0,
            expect: Expectation::Any,
        }
    }
}

impl StreamSpec {
    /// Spec from query parameters; unknown keys are rejected so typos
    /// fail loudly instead of silently running the defaults.
    pub fn from_params<'a>(
        params: impl Iterator<Item = (&'a str, &'a str)>,
    ) -> Result<StreamSpec, String> {
        let mut spec = StreamSpec::default();
        for (key, value) in params {
            match key {
                "nodes" => {
                    spec.nodes = value
                        .parse()
                        .ok()
                        .filter(|n| (1..=4096).contains(n))
                        .ok_or_else(|| format!("nodes: want 1..=4096, got {value:?}"))?
                }
                "kpi" => {
                    if value.is_empty() {
                        return Err("kpi: must be non-empty".to_string());
                    }
                    spec.kpi = value.to_string();
                }
                "change_minute" => {
                    spec.change_minute = value
                        .parse()
                        .map_err(|_| format!("change_minute: want u64, got {value:?}"))?
                }
                "step_minutes" => {
                    spec.step_minutes = value
                        .parse()
                        .ok()
                        .filter(|&s: &u64| s >= 1)
                        .ok_or_else(|| format!("step_minutes: want >= 1, got {value:?}"))?
                }
                "window" => {
                    spec.window = value
                        .parse()
                        .ok()
                        .filter(|&w: &usize| w >= 2)
                        .ok_or_else(|| format!("window: want >= 2, got {value:?}"))?
                }
                "threshold" => {
                    spec.threshold = value
                        .parse()
                        .ok()
                        .filter(|t: &f64| t.is_finite() && *t > 0.0)
                        .ok_or_else(|| format!("threshold: want finite > 0, got {value:?}"))?
                }
                "expect" => {
                    spec.expect = match value {
                        "improve" => Expectation::Improve,
                        "degrade" => Expectation::Degrade,
                        "nochange" => Expectation::NoChange,
                        "any" => Expectation::Any,
                        other => {
                            return Err(format!(
                                "expect: want improve|degrade|nochange|any, got {other:?}"
                            ))
                        }
                    };
                }
                other => return Err(format!("unknown ingest parameter {other:?}")),
            }
        }
        Ok(spec)
    }
}

/// One tenant's live session: the engine plus name→node resolution and a
/// bounded ring of recent detections.
struct StreamSession {
    spec: StreamSpec,
    engine: StreamingVerifier,
    nodes_by_name: HashMap<String, NodeId>,
    recent: Mutex<VecDeque<StreamDetection>>,
}

impl StreamSession {
    fn new(spec: StreamSpec, tracer: Tracer) -> StreamSession {
        // Synthetic paired inventory: study-i ↔ control-i, markets
        // round-robin so location slicing has something to group.
        let mut inv = Inventory::new();
        let mut nodes_by_name = HashMap::new();
        let markets = ["NYC", "DFW", "SEA"];
        let mut study = Vec::with_capacity(spec.nodes);
        for i in 0..spec.nodes {
            let name = format!("study-{i}");
            let id = inv.push(
                name.clone(),
                NfType::ENodeB,
                Attributes::new().with("market", markets[i % markets.len()]),
            );
            nodes_by_name.insert(name, id);
            study.push(id);
        }
        let mut topo = Topology::with_capacity(spec.nodes * 2);
        for i in 0..spec.nodes {
            let name = format!("control-{i}");
            let id = inv.push(
                name.clone(),
                NfType::ENodeB,
                Attributes::new().with("market", markets[i % markets.len()]),
            );
            nodes_by_name.insert(name, id);
            topo.add_edge(study[i], id);
        }
        let mut rule = VerificationRule::standard(
            "ingest",
            vec![KpiQuery::expecting(spec.kpi.clone(), true, spec.expect)],
        );
        rule.location_attributes = vec!["market".into()];
        let scope = ChangeScope::simultaneous(&study, spec.change_minute);
        let config = StreamConfig {
            step_minutes: spec.step_minutes,
            detect_window: spec.window,
            detect_threshold: spec.threshold,
            ..StreamConfig::default()
        };
        let engine = StreamingVerifier::new(vec![rule], scope, inv, topo, config, tracer);
        StreamSession {
            spec,
            engine,
            nodes_by_name,
            recent: Mutex::new(VecDeque::with_capacity(DETECTION_RING)),
        }
    }
}

/// Per-tenant registry of ingest sessions.
pub struct StreamHub {
    tracer: Tracer,
    sessions: RwLock<HashMap<String, Arc<StreamSession>>>,
}

/// Outcome of one `POST /v1/ingest` body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Samples enqueued.
    pub accepted: usize,
    /// Lines refused: malformed JSON, missing fields, unknown node, or
    /// off-grid minute.
    pub rejected: usize,
    /// Samples shed by the bounded queue during this batch.
    pub shed: usize,
    /// Detector candidates fired while applying this batch.
    pub detections: usize,
}

impl StreamHub {
    /// Empty hub; sessions appear on first POST.
    pub fn new(tracer: Tracer) -> StreamHub {
        StreamHub {
            tracer,
            sessions: RwLock::new(HashMap::new()),
        }
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    fn session_of(&self, tenant: &str) -> Option<Arc<StreamSession>> {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .cloned()
    }

    fn session_or_create(
        &self,
        tenant: &str,
        params: impl Iterator<Item = (String, String)>,
    ) -> Result<Arc<StreamSession>, String> {
        if let Some(s) = self.session_of(tenant) {
            return Ok(s);
        }
        let collected: Vec<(String, String)> = params.collect();
        let spec =
            StreamSpec::from_params(collected.iter().map(|(k, v)| (k.as_str(), v.as_str())))?;
        let mut w = self.sessions.write().unwrap_or_else(|e| e.into_inner());
        Ok(Arc::clone(w.entry(tenant.to_string()).or_insert_with(
            || Arc::new(StreamSession::new(spec, self.tracer.clone())),
        )))
    }

    /// Apply one JSONL batch for `tenant`, creating the session from
    /// `params` if this is its first POST. Returns the receipt JSON.
    pub fn ingest(
        &self,
        tenant: &str,
        params: impl Iterator<Item = (String, String)>,
        body: &str,
    ) -> Result<String, String> {
        let session = self.session_or_create(tenant, params)?;
        let before = session.engine.stats();
        let mut receipt = IngestReceipt::default();
        for line in body.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_sample(line, &session.nodes_by_name) {
                Some(sample) => {
                    session.engine.offer(sample);
                    receipt.accepted += 1;
                }
                None => receipt.rejected += 1,
            }
        }
        let pump = session.engine.pump();
        let after = session.engine.stats();
        receipt.rejected += pump.rejected;
        receipt.accepted -= pump.rejected.min(receipt.accepted);
        receipt.shed = (after.shed - before.shed) as usize;
        receipt.detections = pump.detections;
        {
            let mut recent = session.recent.lock().unwrap_or_else(|e| e.into_inner());
            for d in session.engine.take_detections() {
                if recent.len() == DETECTION_RING {
                    recent.pop_front();
                }
                recent.push_back(d);
            }
        }
        Ok(format!(
            "{{\"accepted\":{},\"rejected\":{},\"shed\":{},\"detections\":{},\"streams\":{}}}",
            receipt.accepted,
            receipt.rejected,
            receipt.shed,
            receipt.detections,
            session.engine.store().stream_count(),
        ))
    }

    /// Render the tenant's session snapshot: counters, recent
    /// detections, and the current verdicts. `None` when the tenant has
    /// no session yet.
    pub fn snapshot(&self, tenant: &str) -> Option<String> {
        let session = self.session_of(tenant)?;
        let stats = session.engine.stats();
        let mut out = format!(
            "{{\"spec\":{{\"nodes\":{},\"kpi\":\"{}\",\"change_minute\":{},\
             \"step_minutes\":{},\"window\":{},\"threshold\":{}}},\
             \"stats\":{{\"accepted\":{},\"shed\":{},\"processed\":{},\
             \"rejected\":{},\"detections\":{}}}",
            session.spec.nodes,
            json_escape(&session.spec.kpi),
            session.spec.change_minute,
            session.spec.step_minutes,
            session.spec.window,
            session.spec.threshold,
            stats.accepted,
            stats.shed,
            stats.processed,
            stats.rejected,
            stats.detections,
        );
        match session.engine.detection_latency_quantile(0.99) {
            Some(p99) => {
                let _ = write!(out, ",\"detection_latency_p99_ms\":{:.3}", p99 * 1e3);
            }
            None => out.push_str(",\"detection_latency_p99_ms\":null"),
        }
        out.push_str(",\"detections\":[");
        {
            let recent = session.recent.lock().unwrap_or_else(|e| e.into_inner());
            for (i, d) in recent.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let name = node_name(&session.nodes_by_name, d.node);
                let _ = write!(
                    out,
                    "{{\"node\":\"{}\",\"kpi\":\"{}\",\"timescale\":{},\
                     \"minute\":{},\"delta\":{:.6},\"score\":{:.3}}}",
                    json_escape(&name),
                    json_escape(&d.kpi),
                    d.timescale,
                    d.minute,
                    d.delta,
                    d.score,
                );
            }
        }
        out.push_str("],\"verdicts\":");
        match session.engine.poll_verdicts() {
            Ok(reports) => {
                out.push('[');
                for (i, report) in reports.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"rule\":\"{}\",\"decision\":\"{}\",\"kpis\":[",
                        json_escape(&report.rule),
                        match report.decision {
                            GoNoGo::Go => "go",
                            GoNoGo::NoGo => "no-go",
                        }
                    );
                    for (j, kr) in report.kpis.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "{{\"kpi\":\"{}\",\"verdict\":\"{:?}\",\"p_value\":{:e},\
                             \"relative_shift\":{:.6},\"meets_expectation\":{}}}",
                            json_escape(&kr.query.kpi),
                            kr.overall.verdict,
                            kr.overall.p_value,
                            kr.overall.relative_shift,
                            kr.meets_expectation,
                        );
                    }
                    out.push_str("]}");
                }
                out.push(']');
                out.push_str(",\"error\":null}");
            }
            Err(e) => {
                // Not enough data yet (or an integrity failure): surface
                // it as a field, not an HTTP error — the feed is healthy.
                let _ = write!(out, "null,\"error\":\"{}\"}}", json_escape(&e.to_string()));
            }
        }
        Some(out)
    }
}

fn node_name(nodes_by_name: &HashMap<String, NodeId>, id: NodeId) -> String {
    nodes_by_name
        .iter()
        .find(|(_, v)| **v == id)
        .map(|(k, _)| k.clone())
        .unwrap_or_else(|| format!("node-{}", id.0))
}

/// Parse one JSONL sample line; `None` on any malformation.
fn parse_sample(line: &str, nodes_by_name: &HashMap<String, NodeId>) -> Option<StreamSample> {
    let value = parse(line).ok()?;
    let node = *nodes_by_name.get(value.get("node")?.as_str()?)?;
    let kpi = value.get("kpi")?.as_str()?.to_string();
    let minute = value.get("minute")?.as_f64()?;
    if !(minute.is_finite() && minute >= 0.0 && minute.fract() == 0.0) {
        return None;
    }
    // Value may be null (an explicit missing sample) or a number.
    let sample_value = match value.get("value")? {
        JsonValue::Null => f64::NAN,
        v => v.as_f64()?,
    };
    let carrier = match value.get("carrier") {
        None | Some(JsonValue::Null) => None,
        Some(c) => {
            let c = c.as_f64()?;
            if c.fract() != 0.0 || c < 0.0 {
                return None;
            }
            Some(c as usize)
        }
    };
    Some(StreamSample {
        node,
        kpi,
        carrier,
        minute: minute as u64,
        value: sample_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> StreamHub {
        StreamHub::new(Tracer::noop())
    }

    fn no_params() -> std::iter::Empty<(String, String)> {
        std::iter::empty()
    }

    fn line(node: &str, minute: u64, value: f64) -> String {
        format!("{{\"node\":\"{node}\",\"kpi\":\"kpi\",\"minute\":{minute},\"value\":{value}}}")
    }

    #[test]
    fn spec_defaults_and_overrides() {
        assert_eq!(
            StreamSpec::from_params(std::iter::empty()).unwrap(),
            StreamSpec::default()
        );
        let spec = StreamSpec::from_params(
            [
                ("nodes", "4"),
                ("kpi", "thr"),
                ("change_minute", "120"),
                ("expect", "improve"),
            ]
            .into_iter(),
        )
        .unwrap();
        assert_eq!(spec.nodes, 4);
        assert_eq!(spec.kpi, "thr");
        assert_eq!(spec.change_minute, 120);
        assert_eq!(spec.expect, Expectation::Improve);
        assert!(StreamSpec::from_params([("bogus", "1")].into_iter()).is_err());
        assert!(StreamSpec::from_params([("nodes", "0")].into_iter()).is_err());
    }

    #[test]
    fn ingest_counts_and_isolates_tenants() {
        let hub = hub();
        let spec_params = [("kpi".to_string(), "kpi".to_string())];
        let body = format!(
            "{}\n{}\nnot json\n{}\n",
            line("study-0", 0, 1.0),
            line("study-0", 60, 2.0),
            line("nobody", 120, 3.0),
        );
        let receipt = hub
            .ingest("alice", spec_params.iter().cloned(), &body)
            .unwrap();
        assert!(receipt.contains("\"accepted\":2"), "{receipt}");
        assert!(receipt.contains("\"rejected\":2"), "{receipt}");
        assert_eq!(hub.session_count(), 1);
        // A second tenant gets an independent session.
        hub.ingest("bob", no_params(), &line("study-1", 0, 9.0))
            .unwrap();
        assert_eq!(hub.session_count(), 2);
        let alice = hub.snapshot("alice").unwrap();
        assert!(alice.contains("\"processed\":2"), "{alice}");
        assert!(hub.snapshot("carol").is_none());
    }

    #[test]
    fn snapshot_reports_verdicts_after_enough_data() {
        let hub = hub();
        let params = [
            ("nodes".to_string(), "2".to_string()),
            ("kpi".to_string(), "kpi".to_string()),
            ("change_minute".to_string(), "3000".to_string()),
            ("expect".to_string(), "improve".to_string()),
        ];
        let mut body = String::new();
        for k in 0..100u64 {
            for node in ["study-0", "study-1", "control-0", "control-1"] {
                let mut v = 100.0 + ((k * 7) % 5) as f64 * 0.2;
                if node.starts_with("study") && k * 60 >= 3000 {
                    v += 25.0;
                }
                body.push_str(&line(node, k * 60, v));
                body.push('\n');
            }
        }
        hub.ingest("t", params.iter().cloned(), &body).unwrap();
        let snap = hub.snapshot("t").unwrap();
        assert!(snap.contains("\"decision\":\"go\""), "{snap}");
        assert!(snap.contains("\"verdict\":\"Improvement\""), "{snap}");
        assert!(snap.contains("\"error\":null"), "{snap}");
        // The step also fired the live detectors.
        assert!(!snap.contains("\"detections\":[]"), "{snap}");
    }

    #[test]
    fn off_grid_minutes_count_rejected() {
        let hub = hub();
        let body = format!("{}\n{}", line("study-0", 0, 1.0), line("study-0", 61, 2.0));
        let receipt = hub.ingest("t", no_params(), &body).unwrap();
        assert!(receipt.contains("\"accepted\":1"), "{receipt}");
        assert!(receipt.contains("\"rejected\":1"), "{receipt}");
    }

    #[test]
    fn null_value_is_missing_sample() {
        let hub = hub();
        let body = "{\"node\":\"study-0\",\"kpi\":\"kpi\",\"minute\":0,\"value\":null}";
        let receipt = hub.ingest("t", no_params(), body).unwrap();
        assert!(receipt.contains("\"accepted\":1"), "{receipt}");
    }
}
