//! A dependency-free HTTP/1.1 server over `std::net`.
//!
//! The workspace vendors no async runtime and no HTTP stack, so `cornetd`
//! speaks a deliberately small dialect: every connection carries exactly
//! one request and is closed after the response (`Connection: close`),
//! bodies are delimited by `Content-Length`, and responses either carry a
//! full buffered body or stream until close (the JSONL event feed).
//! A fixed worker pool drains an accept queue; slow or hostile peers are
//! bounded by read timeouts and header/body size caps.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

const MAX_HEAD: usize = 16 * 1024;
const MAX_BODY: usize = 8 * 1024 * 1024;
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/v1/campaigns`).
    pub path: String,
    /// Query parameters, last occurrence wins.
    pub query: BTreeMap<String, String>,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// A header by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// A query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }
}

/// A buffered HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A JSON-lines response (one JSON document per line).
    pub fn jsonl(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/x-ndjson",
            body: body.into(),
        }
    }
}

/// Streaming body writer handed to [`Reply::Stream`] closures.
pub type BodySink<'a> = &'a mut dyn Write;

/// What a handler returns: a buffered response, or a closure that streams
/// the body until it returns (the connection closes afterwards).
pub enum Reply {
    /// Buffered response with `Content-Length`.
    Full(Response),
    /// Headers are sent immediately (status 200, the given content type),
    /// then the closure writes the body incrementally.
    Stream {
        /// `Content-Type` for the streamed body.
        content_type: &'static str,
        /// Body writer; the connection closes when it returns.
        write: Box<dyn FnOnce(BodySink<'_>) -> std::io::Result<()> + Send>,
    },
}

/// Request handler shared by all workers.
pub type Handler = Arc<dyn Fn(Request) -> Reply + Send + Sync>;

/// The listening server: an accept thread feeding a worker pool.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve with `workers` threads.
    pub fn bind(addr: &str, workers: usize, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();
        for i in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        match stream {
                            Ok(stream) => serve_connection(stream, &handler),
                            Err(_) => return, // accept loop gone
                        }
                    })?,
            );
        }
        let accept_stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name("http-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if accept_stop.load(Ordering::SeqCst) {
                            return; // dropping tx stops the workers
                        }
                        if let Ok(stream) = stream {
                            if tx.send(stream).is_err() {
                                return;
                            }
                        }
                    }
                })?,
        );
        Ok(HttpServer {
            addr: local,
            stop,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join every thread. In-flight
    /// requests finish first.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn serve_connection(stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    match read_request(&mut reader) {
        Ok(request) => {
            let reply = handler(request);
            let _ = write_reply(&mut stream, reply);
        }
        Err(e) => {
            let _ = write_reply(
                &mut stream,
                Reply::Full(Response::json(
                    400,
                    format!("{{\"error\":\"{}\"}}", cornet_obs::json_escape(&e)),
                )),
            );
        }
    }
    let _ = stream.flush();
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("request line without a target")?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), BTreeMap::new()),
    };
    let mut headers = BTreeMap::new();
    let mut head_bytes = line.len();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading headers: {e}"))?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD {
            return Err("request head too large".into());
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let length: usize = match headers.get("content-length") {
        Some(v) => v.parse().map_err(|_| "bad content-length")?,
        None => 0,
    };
    if length > MAX_BODY {
        return Err("request body too large".into());
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn parse_query(q: &str) -> BTreeMap<String, String> {
    q.split('&')
        .filter_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (!k.is_empty()).then(|| (k.to_string(), v.to_string()))
        })
        .collect()
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn write_reply(stream: &mut TcpStream, reply: Reply) -> std::io::Result<()> {
    match reply {
        Reply::Full(r) => {
            write!(
                stream,
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                r.status,
                status_text(r.status),
                r.content_type,
                r.body.len()
            )?;
            stream.write_all(r.body.as_bytes())
        }
        Reply::Stream {
            content_type,
            write: body,
        } => {
            write!(
                stream,
                "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
            )?;
            stream.flush()?;
            // Streams outlive the worker read timeout by design.
            let _ = stream.set_write_timeout(Some(Duration::from_secs(300)));
            body(stream)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|req: Request| {
            if req.path == "/stream" {
                Reply::Stream {
                    content_type: "application/x-ndjson",
                    write: Box::new(|sink: BodySink<'_>| {
                        for i in 0..3 {
                            writeln!(sink, "{{\"n\":{i}}}")?;
                            sink.flush()?;
                        }
                        Ok(())
                    }),
                }
            } else {
                Reply::Full(Response::json(
                    200,
                    format!(
                        "{{\"method\":\"{}\",\"path\":\"{}\",\"from\":\"{}\",\"body_len\":{}}}",
                        req.method,
                        req.path,
                        req.param("from").unwrap_or("-"),
                        req.body.len()
                    ),
                ))
            }
        });
        HttpServer::bind("127.0.0.1:0", 2, handler).unwrap()
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn parses_requests_and_writes_full_responses() {
        let server = echo_server();
        let addr = server.local_addr();
        let body = "hello";
        let response = raw_request(
            addr,
            &format!(
                "POST /v1/x?from=7 HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("\"method\":\"POST\""), "{response}");
        assert!(response.contains("\"path\":\"/v1/x\""), "{response}");
        assert!(response.contains("\"from\":\"7\""), "{response}");
        assert!(response.contains("\"body_len\":5"), "{response}");
        server.shutdown();
    }

    #[test]
    fn streams_until_close() {
        let server = echo_server();
        let response = raw_request(server.local_addr(), "GET /stream HTTP/1.1\r\n\r\n");
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
        assert_eq!(body, "{\"n\":0}\n{\"n\":1}\n{\"n\":2}\n");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = echo_server();
        let response = raw_request(server.local_addr(), "BOGUS\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }
}
