//! # cornet-daemon
//!
//! CORNET's long-lived service mode. A persistent daemon (`cornetd`)
//! exposes campaign management over a dependency-free HTTP/1.1 JSON API;
//! this crate holds every layer behind that binary:
//!
//! * [`scenario`] — the deterministic journaled-upgrade campaign shape
//!   shared by the CLI, the daemon, and the recovery tests;
//! * [`quota`] — per-tenant admission quotas feeding the dispatcher's
//!   execution slots, with fair FIFO queuing and high-water accounting;
//! * [`manager`] — the `CampaignManager`: submission (behind the `cornet
//!   check` gate), per-campaign journaling, pause/resume/cancel, and
//!   crash recovery of every interrupted campaign on restart;
//! * [`http`] — a hand-rolled HTTP/1.1 server over `std::net` (the
//!   workspace vendors no async runtime and no HTTP stack);
//! * [`api`] — request routing and the `/v1` endpoint handlers;
//! * [`stream`] — per-tenant `/v1/ingest` sessions feeding the streaming
//!   verification engine (live detections + go/no-go verdicts);
//! * [`client`] — a blocking HTTP client for the `cornet submit/status/
//!   watch` subcommands and the end-to-end tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod manager;
pub mod quota;
pub mod scenario;
pub mod stream;

pub use api::ApiServer;
pub use client::{ClientResponse, DaemonClient};
pub use http::{Handler, HttpServer, Reply, Request, Response};
pub use manager::{
    ApiError, CampaignManager, CampaignPhase, CampaignResult, CampaignSnapshot, ManagerConfig,
    SubmitOutcome,
};
pub use quota::{QuotaBook, QuotaSnapshot, TenantSlots};
pub use scenario::{report_fingerprint, ExecutionWitness, JournalScenario};
pub use stream::{IngestReceipt, StreamHub, StreamSpec};
