//! Per-tenant admission quotas.
//!
//! The dispatcher executes instances on a worker pool and asks an
//! [`AdmissionSlots`] for a permit around every execution. The daemon
//! gives each campaign a tenant-tagged handle onto one shared
//! [`QuotaBook`], so concurrent campaigns from many tenants contend for
//! a single global pool while each tenant is capped at its own quota.
//!
//! Waiting is FIFO with tenant headroom: permits are granted in arrival
//! order, except that a waiter whose tenant is at quota is skipped so a
//! saturated tenant cannot head-of-line-block everyone else. High-water
//! marks are recorded per tenant and globally — the e2e tests use them
//! to prove quotas actually bound concurrency while the pool saturates.

use cornet_orchestrator::AdmissionSlots;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Point-in-time view of one tenant's admission accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuotaSnapshot {
    /// Permits currently held.
    pub in_flight: usize,
    /// Most permits ever held at once.
    pub high_water: usize,
    /// The tenant's cap.
    pub quota: usize,
    /// Waiters currently queued.
    pub waiting: usize,
}

#[derive(Default)]
struct TenantBook {
    in_flight: usize,
    high_water: usize,
}

struct BookState {
    tenants: BTreeMap<String, TenantBook>,
    /// Arrival-ordered wait queue of (ticket, tenant).
    queue: Vec<(u64, String)>,
    next_ticket: u64,
    global_in_flight: usize,
    global_high_water: usize,
}

struct BookInner {
    state: Mutex<BookState>,
    cond: Condvar,
    pool: usize,
    default_quota: usize,
    overrides: BTreeMap<String, usize>,
}

/// The shared admission ledger: a global execution pool carved into
/// per-tenant quotas.
pub struct QuotaBook {
    inner: Arc<BookInner>,
}

impl QuotaBook {
    /// A book with `pool` global permits and `default_quota` per tenant;
    /// `overrides` replaces the default for named tenants.
    pub fn new(pool: usize, default_quota: usize, overrides: BTreeMap<String, usize>) -> QuotaBook {
        QuotaBook {
            inner: Arc::new(BookInner {
                state: Mutex::new(BookState {
                    tenants: BTreeMap::new(),
                    queue: Vec::new(),
                    next_ticket: 0,
                    global_in_flight: 0,
                    global_high_water: 0,
                }),
                cond: Condvar::new(),
                pool: pool.max(1),
                default_quota: default_quota.max(1),
                overrides,
            }),
        }
    }

    /// The cap applied to `tenant`.
    pub fn quota_for(&self, tenant: &str) -> usize {
        self.inner
            .overrides
            .get(tenant)
            .copied()
            .unwrap_or(self.inner.default_quota)
    }

    /// A tenant-tagged [`AdmissionSlots`] handle for one campaign.
    pub fn handle(&self, tenant: &str) -> Arc<TenantSlots> {
        Arc::new(TenantSlots {
            inner: Arc::clone(&self.inner),
            tenant: tenant.to_string(),
        })
    }

    /// Per-tenant accounting, for the API's quota listing.
    pub fn snapshot(&self) -> BTreeMap<String, QuotaSnapshot> {
        let state = self.inner.state.lock().expect("quota lock");
        state
            .tenants
            .iter()
            .map(|(tenant, book)| {
                (
                    tenant.clone(),
                    QuotaSnapshot {
                        in_flight: book.in_flight,
                        high_water: book.high_water,
                        quota: self.quota_for(tenant),
                        waiting: state.queue.iter().filter(|(_, t)| t == tenant).count(),
                    },
                )
            })
            .collect()
    }

    /// (in_flight, high_water, pool) for the whole book.
    pub fn global(&self) -> (usize, usize, usize) {
        let state = self.inner.state.lock().expect("quota lock");
        (
            state.global_in_flight,
            state.global_high_water,
            self.inner.pool,
        )
    }
}

/// One campaign's view of the shared [`QuotaBook`]: every permit it
/// acquires is charged to its tenant.
pub struct TenantSlots {
    inner: Arc<BookInner>,
    tenant: String,
}

impl BookInner {
    /// The first queued ticket that could be granted right now, honouring
    /// arrival order but skipping tenants that are at quota.
    fn first_eligible(&self, state: &BookState) -> Option<u64> {
        if state.global_in_flight >= self.pool {
            return None;
        }
        state
            .queue
            .iter()
            .find(|(_, tenant)| {
                let held = state.tenants.get(tenant).map_or(0, |book| book.in_flight);
                let quota = self
                    .overrides
                    .get(tenant)
                    .copied()
                    .unwrap_or(self.default_quota);
                held < quota
            })
            .map(|(ticket, _)| *ticket)
    }
}

impl AdmissionSlots for TenantSlots {
    fn acquire(&self) {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("quota lock");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push((ticket, self.tenant.clone()));
        while inner.first_eligible(&state) != Some(ticket) {
            state = inner.cond.wait(state).expect("quota lock");
        }
        state.queue.retain(|(t, _)| *t != ticket);
        state.global_in_flight += 1;
        state.global_high_water = state.global_high_water.max(state.global_in_flight);
        let book = state.tenants.entry(self.tenant.clone()).or_default();
        book.in_flight += 1;
        book.high_water = book.high_water.max(book.in_flight);
        // Another queued ticket (different tenant) may also be eligible.
        inner.cond.notify_all();
    }

    fn release(&self) {
        let inner = &*self.inner;
        let mut state = inner.state.lock().expect("quota lock");
        state.global_in_flight = state.global_in_flight.saturating_sub(1);
        if let Some(book) = state.tenants.get_mut(&self.tenant) {
            book.in_flight = book.in_flight.saturating_sub(1);
        }
        inner.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn tenant_quota_caps_concurrency_while_pool_saturates() {
        let book = QuotaBook::new(4, 2, BTreeMap::new());
        let a = book.handle("alpha");
        let b = book.handle("beta");
        thread::scope(|scope| {
            for _ in 0..8 {
                for slots in [&a, &b] {
                    let slots = Arc::clone(slots);
                    scope.spawn(move || {
                        slots.acquire();
                        thread::sleep(Duration::from_millis(5));
                        slots.release();
                    });
                }
            }
        });
        let snap = book.snapshot();
        assert!(snap["alpha"].high_water <= 2);
        assert!(snap["beta"].high_water <= 2);
        assert_eq!(snap["alpha"].in_flight + snap["beta"].in_flight, 0);
        let (in_flight, high_water, pool) = book.global();
        assert_eq!(in_flight, 0);
        assert!(high_water <= pool);
        assert!(
            high_water >= 3,
            "two tenants of quota 2 should overlap past a single quota (saw {high_water})"
        );
    }

    #[test]
    fn saturated_tenant_does_not_block_others() {
        let mut overrides = BTreeMap::new();
        overrides.insert("hog".into(), 1);
        let book = QuotaBook::new(4, 4, overrides);
        let hog = book.handle("hog");
        let other = book.handle("other");
        hog.acquire();
        // The hog queues behind its own quota; "other" arrives later but
        // must be admitted anyway.
        let hog2 = Arc::clone(&hog);
        let blocked = thread::spawn(move || {
            hog2.acquire();
            hog2.release();
        });
        thread::sleep(Duration::from_millis(20));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let fast = thread::spawn(move || {
            other.acquire();
            done2.store(true, std::sync::atomic::Ordering::SeqCst);
            other.release();
        });
        fast.join().unwrap();
        assert!(done.load(std::sync::atomic::Ordering::SeqCst));
        hog.release();
        blocked.join().unwrap();
    }

    #[test]
    fn override_replaces_the_default_quota() {
        let mut overrides = BTreeMap::new();
        overrides.insert("big".into(), 7);
        let book = QuotaBook::new(16, 2, overrides);
        assert_eq!(book.quota_for("big"), 7);
        assert_eq!(book.quota_for("anyone-else"), 2);
    }
}
