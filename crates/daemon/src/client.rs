//! A blocking HTTP client for the daemon API — used by the `cornet
//! submit/status/watch` subcommands and the end-to-end tests. Speaks the
//! same one-request-per-connection dialect as [`crate::http`].

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client bound to one daemon address and one tenant identity.
#[derive(Clone, Debug)]
pub struct DaemonClient {
    addr: String,
    tenant: String,
}

/// A buffered HTTP response from the daemon.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl DaemonClient {
    /// A client for the daemon at `addr` (`host:port`) acting as `tenant`.
    pub fn new(addr: impl Into<String>, tenant: impl Into<String>) -> DaemonClient {
        DaemonClient {
            addr: addr.into(),
            tenant: tenant.into(),
        }
    }

    /// GET `path` and buffer the response.
    pub fn get(&self, path: &str) -> Result<ClientResponse, String> {
        self.request("GET", path, None)
    }

    /// POST `body` (may be empty) to `path` and buffer the response.
    pub fn post(&self, path: &str, body: &str) -> Result<ClientResponse, String> {
        self.request("POST", path, Some(body))
    }

    /// One request over one connection (the server always closes).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, String> {
        let mut stream = self.connect()?;
        send_request(&mut stream, method, path, &self.tenant, body)?;
        let mut reader = BufReader::new(stream);
        let (status, _headers) = read_head(&mut reader)?;
        let mut body = String::new();
        reader
            .read_to_string(&mut body)
            .map_err(|e| format!("reading response body: {e}"))?;
        Ok(ClientResponse { status, body })
    }

    /// GET `path` as a stream, invoking `on_line` per JSONL line until
    /// the server closes the stream or the callback returns `false`.
    /// Returns the HTTP status.
    pub fn stream(&self, path: &str, mut on_line: impl FnMut(&str) -> bool) -> Result<u16, String> {
        let mut stream = self.connect()?;
        // Follow streams idle between events; allow long gaps.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
        send_request(&mut stream, "GET", path, &self.tenant, None)?;
        let mut reader = BufReader::new(stream);
        let (status, _headers) = read_head(&mut reader)?;
        if status != 200 {
            let mut body = String::new();
            let _ = reader.read_to_string(&mut body);
            return Err(format!("HTTP {status}: {}", body.trim()));
        }
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(status),
                Ok(_) => {
                    if !on_line(line.trim_end_matches(['\r', '\n'])) {
                        return Ok(status);
                    }
                }
                Err(e) => return Err(format!("reading stream: {e}")),
            }
        }
    }

    fn connect(&self) -> Result<TcpStream, String> {
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        Ok(stream)
    }
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    tenant: &str,
    body: Option<&str>,
) -> Result<(), String> {
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: cornetd\r\nX-Cornet-Tenant: {tenant}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("sending request: {e}"))
}

fn read_head(reader: &mut BufReader<TcpStream>) -> Result<(u16, BTreeMap<String, String>), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading response headers: {e}"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((status, headers))
}
