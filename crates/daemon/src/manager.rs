//! The campaign manager: the layer between the HTTP front-end and the
//! continuous-admission dispatcher.
//!
//! One manager owns one state directory. Submission runs the `cornet
//! check` gate (bundles with error diagnostics are refused before any
//! state is created), allocates a campaign directory, and queues the
//! campaign for execution. A fair-share scheduler starts queued campaigns
//! round-robin across tenants up to a global concurrent-campaign limit;
//! each running campaign journals into its own WAL and charges its
//! instance executions to its tenant's admission quota. On restart the
//! manager scans the store and resumes every interrupted campaign through
//! [`Dispatcher::resume_campaign`] — completed blocks are replayed from
//! the journal, never re-executed.

use crate::quota::{QuotaBook, QuotaSnapshot};
use crate::scenario::{report_fingerprint, JournalScenario};
use cornet_analysis::{Code, Diagnostic, Report, SourceRef};
use cornet_core::blast::{campaign_blasts, conflicts_between, BlastConflict, CampaignBlast};
use cornet_core::{gate, load_bundle};
use cornet_journal::{CampaignStore, FsyncPolicy, Journal, JournalEvent, Manifest};
use cornet_obs::Tracer;
use cornet_orchestrator::{recover_campaign, CampaignControl, DispatchReport, Dispatcher};
use cornet_types::json::parse;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Errors the API maps onto HTTP status codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Unknown campaign id (404).
    NotFound(String),
    /// Campaign belongs to a different tenant (403).
    Forbidden(String),
    /// Malformed request (400).
    Invalid(String),
    /// Request is valid but the campaign is in the wrong state (409).
    Conflict(String),
    /// Daemon-side failure (500).
    Internal(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::NotFound(m) => write!(f, "not found: {m}"),
            ApiError::Forbidden(m) => write!(f, "forbidden: {m}"),
            ApiError::Invalid(m) => write!(f, "invalid request: {m}"),
            ApiError::Conflict(m) => write!(f, "conflict: {m}"),
            ApiError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

/// Campaign lifecycle as the manager tracks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignPhase {
    /// Accepted, waiting for a scheduler slot (fresh or pending resume).
    Queued,
    /// A runner thread is driving the dispatcher.
    Running,
    /// Admission is paused; in-flight instances finish.
    Paused,
    /// Terminal: ran to completion (possibly halted by a breaker trip).
    Completed,
    /// Terminal: cancelled by the tenant.
    Cancelled,
    /// Terminal: the runner hit an internal error.
    Failed,
}

impl CampaignPhase {
    /// Lower-case label used in API payloads.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignPhase::Queued => "queued",
            CampaignPhase::Running => "running",
            CampaignPhase::Paused => "paused",
            CampaignPhase::Completed => "completed",
            CampaignPhase::Cancelled => "cancelled",
            CampaignPhase::Failed => "failed",
        }
    }

    /// Whether the campaign can never change phase again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignPhase::Completed | CampaignPhase::Cancelled | CampaignPhase::Failed
        )
    }
}

/// Terminal outcome summary of a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignResult {
    /// FNV-1a-64 fingerprint of the dispatch report (crash-recovery
    /// equality witness).
    pub fingerprint: u64,
    /// Instances that completed the mainline flow.
    pub completed: usize,
    /// Instances that failed outright.
    pub failed: usize,
    /// Instances reverted by their backout flow.
    pub rolled_back: usize,
    /// Block that tripped the breaker, if it fired.
    pub trip: Option<String>,
    /// True when the campaign was cancelled.
    pub cancelled: bool,
}

/// Point-in-time public view of one campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSnapshot {
    /// Campaign id (`c000001`, …).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Display name from the submitted spec.
    pub name: String,
    /// Current lifecycle phase.
    pub phase: CampaignPhase,
    /// Scheduled instance count.
    pub total_instances: u32,
    /// Instances with a terminal status so far.
    pub instances_done: usize,
    /// Blocks executed (journal appends) since this process started
    /// driving the campaign — replayed blocks never count.
    pub blocks_live: usize,
    /// Block records recovered from the journal before this process took
    /// over (prior run's completed work).
    pub blocks_recovered: usize,
    /// Journal events observed so far (the `/events` stream length).
    pub events: usize,
    /// Terminal outcome, once reached.
    pub outcome: Option<CampaignResult>,
    /// Runner error detail for `Failed` campaigns.
    pub error: Option<String>,
}

/// Result of a submission that passed request validation.
#[derive(Clone, Debug)]
pub enum SubmitOutcome {
    /// The bundle passed the check gate; a campaign was created.
    Accepted {
        /// Allocated campaign id.
        id: String,
        /// The gate report (warnings may be present).
        report: Report,
    },
    /// The bundle carries error diagnostics; nothing was created.
    Rejected {
        /// The gate report with the refusing diagnostics.
        report: Report,
    },
    /// The bundle passed the check gate but its declared campaigns'
    /// blast radii collide with a live campaign; nothing was created.
    Interfering {
        /// Interference diagnostics (foreign-tenant details redacted).
        report: Report,
    },
}

/// Daemon-side configuration for a [`CampaignManager`].
#[derive(Clone)]
pub struct ManagerConfig {
    /// State directory holding the campaign store.
    pub state_dir: PathBuf,
    /// Durability policy for every campaign journal.
    pub fsync: FsyncPolicy,
    /// Global instance-execution pool shared by all campaigns.
    pub pool: usize,
    /// Per-tenant cap on concurrent instance executions.
    pub default_quota: usize,
    /// Per-tenant overrides of the default quota.
    pub quota_overrides: BTreeMap<String, usize>,
    /// Maximum campaigns running at once (fair-share across tenants).
    pub max_campaigns: usize,
    /// Observability handle shared by every campaign.
    pub tracer: Tracer,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            state_dir: PathBuf::from("cornetd-state"),
            fsync: FsyncPolicy::EveryN(64),
            pool: 8,
            default_quota: 2,
            quota_overrides: BTreeMap::new(),
            max_campaigns: 4,
            tracer: Tracer::noop(),
        }
    }
}

struct Entry {
    manifest: Manifest,
    scenario: JournalScenario,
    control: CampaignControl,
    phase: CampaignPhase,
    /// Pending resume of an interrupted journal (vs a fresh first run).
    resume: bool,
    instances_done: usize,
    blocks_live: usize,
    blocks_recovered: usize,
    events: Vec<String>,
    outcome: Option<CampaignResult>,
    error: Option<String>,
    /// Blast radii of the bundle's declared campaigns, when it declared
    /// any — the interference gate compares submissions against these
    /// while the campaign is live. Recomputed from `spec.json` on
    /// restart.
    blast: Option<Vec<CampaignBlast>>,
}

impl Entry {
    fn snapshot(&self) -> CampaignSnapshot {
        CampaignSnapshot {
            id: self.manifest.id.clone(),
            tenant: self.manifest.tenant.clone(),
            name: self.manifest.name.clone(),
            phase: self.phase,
            total_instances: self.scenario.nodes,
            instances_done: self.instances_done,
            blocks_live: self.blocks_live,
            blocks_recovered: self.blocks_recovered,
            events: self.events.len(),
            outcome: self.outcome.clone(),
            error: self.error.clone(),
        }
    }
}

struct ManagerState {
    entries: BTreeMap<String, Entry>,
    /// Submission-ordered queue of campaign ids awaiting a runner.
    queue: Vec<String>,
    running: usize,
    /// Fair-share bookkeeping: the scheduler tick at which each tenant
    /// was last served.
    served: BTreeMap<String, u64>,
    tick: u64,
    accepting: bool,
}

/// The multi-tenant campaign service behind `cornetd`.
pub struct CampaignManager {
    config: ManagerConfig,
    store: CampaignStore,
    book: QuotaBook,
    state: Mutex<ManagerState>,
    cond: Condvar,
}

impl CampaignManager {
    /// Open the state directory, recover every stored campaign, and start
    /// runners for everything that was interrupted.
    pub fn start(config: ManagerConfig) -> Result<Arc<CampaignManager>, ApiError> {
        let store = CampaignStore::open(&config.state_dir)
            .map_err(|e| ApiError::Internal(e.to_string()))?;
        let book = QuotaBook::new(
            config.pool,
            config.default_quota,
            config.quota_overrides.clone(),
        );
        let manager = Arc::new(CampaignManager {
            store,
            book,
            state: Mutex::new(ManagerState {
                entries: BTreeMap::new(),
                queue: Vec::new(),
                running: 0,
                served: BTreeMap::new(),
                tick: 0,
                accepting: true,
            }),
            cond: Condvar::new(),
            config,
        });
        manager.recover()?;
        manager.schedule();
        Ok(manager)
    }

    /// The tenant quota ledger.
    pub fn quotas(&self) -> BTreeMap<String, QuotaSnapshot> {
        self.book.snapshot()
    }

    /// `(in_flight, high_water, pool)` of the global execution pool.
    pub fn pool_usage(&self) -> (usize, usize, usize) {
        self.book.global()
    }

    /// The manager's tracer (per-tenant counters, campaign spans).
    pub fn tracer(&self) -> &Tracer {
        &self.config.tracer
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ManagerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rebuild in-memory state from the store at startup.
    fn recover(self: &Arc<Self>) -> Result<(), ApiError> {
        let manifests = self
            .store
            .scan()
            .map_err(|e| ApiError::Internal(e.to_string()))?;
        let mut state = self.lock();
        for manifest in manifests {
            let scenario = JournalScenario::from_meta(&manifest.meta)
                .map_err(|e| ApiError::Internal(format!("{}: {e}", manifest.id)))?;
            let paths = self
                .store
                .paths(&manifest.id)
                .map_err(|e| ApiError::Internal(e.to_string()))?;
            // Recompute declared blast radii from the persisted spec so
            // the interference gate survives restarts.
            let blast = std::fs::read_to_string(&paths.spec)
                .ok()
                .and_then(|body| load_bundle(&body).ok())
                .filter(|b| !b.campaigns.is_empty())
                .map(|b| campaign_blasts(&b));
            let mut entry = Entry {
                scenario,
                control: CampaignControl::new(),
                phase: CampaignPhase::Queued,
                resume: false,
                instances_done: 0,
                blocks_live: 0,
                blocks_recovered: 0,
                events: Vec::new(),
                outcome: None,
                error: None,
                blast,
                manifest,
            };
            let events = if paths.journal.exists() {
                Journal::read(&paths.journal)
                    .map(|(events, _)| events)
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            for event in &events {
                entry.events.push(event.encode());
                match event {
                    JournalEvent::BlockCompleted(_) => entry.blocks_recovered += 1,
                    JournalEvent::InstanceFinished { .. } => entry.instances_done += 1,
                    _ => {}
                }
            }
            let closed = matches!(events.last(), Some(JournalEvent::CampaignClosed));
            if let Some(outcome) = outcome_from_meta(&entry.manifest.meta) {
                // Terminal with a persisted summary: nothing to do.
                entry.phase = phase_from_meta(&entry.manifest.meta);
                entry.outcome = Some(outcome);
                entry.error = entry.manifest.meta.get("outcome_error").cloned();
            } else if closed {
                // The journal closed but the process died before the
                // manifest update: reconstruct the summary from the log.
                let (outcome, phase) = reconstruct_outcome(&events, entry.scenario.nodes);
                entry.phase = phase;
                entry.outcome = Some(outcome);
            } else {
                // Fresh (no records) or interrupted (records, not closed):
                // queue it; interrupted ones resume instead of restarting.
                entry.resume = !events.is_empty();
                state.queue.push(entry.manifest.id.clone());
            }
            state.entries.insert(entry.manifest.id.clone(), entry);
        }
        Ok(())
    }

    /// Submit a MOP bundle for tenant `tenant`. The check gate runs
    /// first; bundles with error diagnostics are refused without creating
    /// any state.
    pub fn submit(self: &Arc<Self>, tenant: &str, body: &str) -> Result<SubmitOutcome, ApiError> {
        validate_tenant(tenant)?;
        let spec = parse(body).map_err(|e| ApiError::Invalid(format!("bad JSON body: {e}")))?;
        let name = spec
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or("campaign")
            .to_string();
        let scenario = match spec.get("scenario") {
            Some(value) => JournalScenario::from_json(value).map_err(ApiError::Invalid)?,
            None => JournalScenario::default(),
        };
        let bundle = load_bundle(body).map_err(|e| ApiError::Invalid(e.to_string()))?;
        let report = match gate(&bundle) {
            Ok(report) => report,
            Err(report) => {
                self.config
                    .tracer
                    .incr(&format!("daemon.tenant.{tenant}.rejected"), 1);
                return Ok(SubmitOutcome::Rejected { report });
            }
        };
        // Declared-campaign bundles pass the interference gate: their
        // blast radii must not collide with any live campaign's.
        // Scenario-only submissions carry no declared campaigns and are
        // exempt (nothing to compare).
        let blast = if bundle.campaigns.is_empty() {
            None
        } else {
            Some(campaign_blasts(&bundle))
        };
        let mut state = self.lock();
        if !state.accepting {
            return Err(ApiError::Conflict("daemon is shutting down".into()));
        }
        if let Some(submitted) = &blast {
            let mut conflicts = Report::new();
            for entry in state.entries.values() {
                if entry.phase.is_terminal() {
                    continue;
                }
                let Some(live) = &entry.blast else { continue };
                for c in conflicts_between(submitted, live) {
                    conflicts.push(admission_conflict_diagnostic(&c, tenant, &entry.manifest));
                }
            }
            if conflicts.has_errors() {
                conflicts.sort();
                self.config
                    .tracer
                    .incr(&format!("daemon.tenant.{tenant}.interfering"), 1);
                return Ok(SubmitOutcome::Interfering { report: conflicts });
            }
        }
        let id = self
            .store
            .next_id()
            .map_err(|e| ApiError::Internal(e.to_string()))?;
        let mut meta = scenario.meta();
        meta.insert("fsync".into(), self.config.fsync.to_string());
        meta.insert("name".into(), name.clone());
        let manifest = Manifest {
            id: id.clone(),
            tenant: tenant.to_string(),
            name,
            meta,
        };
        let paths = self
            .store
            .create(&manifest)
            .map_err(|e| ApiError::Internal(e.to_string()))?;
        std::fs::write(&paths.spec, body)
            .map_err(|e| ApiError::Internal(format!("writing spec: {e}")))?;
        state.entries.insert(
            id.clone(),
            Entry {
                scenario,
                manifest,
                control: CampaignControl::new(),
                phase: CampaignPhase::Queued,
                resume: false,
                instances_done: 0,
                blocks_live: 0,
                blocks_recovered: 0,
                events: Vec::new(),
                outcome: None,
                error: None,
                blast,
            },
        );
        state.queue.push(id.clone());
        drop(state);
        self.config
            .tracer
            .incr(&format!("daemon.tenant.{tenant}.submitted"), 1);
        self.cond.notify_all();
        self.schedule();
        Ok(SubmitOutcome::Accepted { id, report })
    }

    /// Snapshots of every campaign owned by `tenant`, id order.
    pub fn list(&self, tenant: &str) -> Vec<CampaignSnapshot> {
        self.lock()
            .entries
            .values()
            .filter(|e| e.manifest.tenant == tenant)
            .map(Entry::snapshot)
            .collect()
    }

    /// Snapshot of one campaign, enforcing tenant ownership.
    pub fn snapshot(&self, tenant: &str, id: &str) -> Result<CampaignSnapshot, ApiError> {
        let state = self.lock();
        owned_entry(&state, tenant, id).map(Entry::snapshot)
    }

    /// The declared blast radii of one campaign as a JSON document,
    /// enforcing tenant ownership — a tenant may inspect only its own
    /// blast radii, never reconstruct another tenant's from a 409.
    pub fn blast(&self, tenant: &str, id: &str) -> Result<String, ApiError> {
        let state = self.lock();
        let entry = owned_entry(&state, tenant, id)?;
        let mut out = format!("{{\"id\":\"{}\",\"campaigns\":[", entry.manifest.id);
        for (i, b) in entry.blast.iter().flatten().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.render_json());
        }
        out.push_str("]}");
        Ok(out)
    }

    /// Pause a queued or running campaign: no new instances are admitted;
    /// in-flight work finishes.
    pub fn pause(&self, tenant: &str, id: &str) -> Result<CampaignSnapshot, ApiError> {
        let mut state = self.lock();
        let entry = owned_entry_mut(&mut state, tenant, id)?;
        match entry.phase {
            CampaignPhase::Running | CampaignPhase::Queued => {
                entry.control.pause();
                entry.phase = CampaignPhase::Paused;
                Ok(entry.snapshot())
            }
            CampaignPhase::Paused => Ok(entry.snapshot()),
            other => Err(ApiError::Conflict(format!(
                "campaign {id} is {}, cannot pause",
                other.label()
            ))),
        }
    }

    /// Resume a paused campaign.
    pub fn resume(self: &Arc<Self>, tenant: &str, id: &str) -> Result<CampaignSnapshot, ApiError> {
        let mut state = self.lock();
        let entry = owned_entry_mut(&mut state, tenant, id)?;
        match entry.phase {
            CampaignPhase::Paused => {
                entry.control.resume();
                // A runner is attached iff the id left the queue.
                let queued = state.queue.contains(&id.to_string());
                let entry = owned_entry_mut(&mut state, tenant, id)?;
                entry.phase = if queued {
                    CampaignPhase::Queued
                } else {
                    CampaignPhase::Running
                };
                let snap = entry.snapshot();
                drop(state);
                self.cond.notify_all();
                self.schedule();
                Ok(snap)
            }
            CampaignPhase::Running | CampaignPhase::Queued => {
                Ok(owned_entry(&state, tenant, id)?.snapshot())
            }
            other => Err(ApiError::Conflict(format!(
                "campaign {id} is {}, cannot resume",
                other.label()
            ))),
        }
    }

    /// Cancel a campaign. Running campaigns drain in-flight work and
    /// close their journal (exactly like a breaker halt); queued ones are
    /// tombstoned so a restart never starts them.
    pub fn cancel(self: &Arc<Self>, tenant: &str, id: &str) -> Result<CampaignSnapshot, ApiError> {
        let mut state = self.lock();
        let queued = state.queue.contains(&id.to_string());
        let entry = owned_entry_mut(&mut state, tenant, id)?;
        match entry.phase {
            CampaignPhase::Running | CampaignPhase::Paused if !queued => {
                entry.control.cancel();
                let snap = entry.snapshot();
                drop(state);
                self.cond.notify_all();
                Ok(snap)
            }
            CampaignPhase::Queued | CampaignPhase::Paused => {
                entry.control.cancel();
                entry.phase = CampaignPhase::Cancelled;
                entry.outcome = Some(CampaignResult {
                    fingerprint: 0,
                    completed: 0,
                    failed: 0,
                    rolled_back: 0,
                    trip: None,
                    cancelled: true,
                });
                let manifest = entry.manifest.clone();
                let scenario = entry.scenario.clone();
                let outcome = entry.outcome.clone();
                let snap = entry.snapshot();
                state.queue.retain(|q| q != id);
                drop(state);
                // Tombstone the journal so restarts see a closed campaign.
                if let Ok(paths) = self.store.paths(id) {
                    if !paths.journal.exists() {
                        if let Ok(journal) = Journal::create(&paths.journal, self.config.fsync) {
                            let assignments = scenario
                                .schedule()
                                .assignments
                                .iter()
                                .map(|(n, s)| (n.0, s.0))
                                .collect();
                            let _ = journal.append(&JournalEvent::CampaignOpened {
                                meta: manifest.meta.clone(),
                                assignments,
                                concurrency: scenario.concurrency as u32,
                            });
                            let _ = journal.append(&JournalEvent::CampaignClosed);
                            let _ = journal.sync();
                        }
                    }
                }
                self.persist_outcome(&manifest, CampaignPhase::Cancelled, &outcome, &None);
                self.cond.notify_all();
                Ok(snap)
            }
            other => Err(ApiError::Conflict(format!(
                "campaign {id} is {}, cannot cancel",
                other.label()
            ))),
        }
    }

    /// Journal-event JSONL lines starting at index `from`, plus whether
    /// the campaign is terminal (stream complete).
    pub fn events_since(
        &self,
        tenant: &str,
        id: &str,
        from: usize,
    ) -> Result<(Vec<String>, bool), ApiError> {
        let state = self.lock();
        let entry = owned_entry(&state, tenant, id)?;
        let lines = entry.events.get(from..).unwrap_or_default().to_vec();
        Ok((lines, entry.phase.is_terminal()))
    }

    /// Like [`CampaignManager::events_since`], but blocks up to `timeout`
    /// for new events when none are pending.
    pub fn wait_events(
        &self,
        tenant: &str,
        id: &str,
        from: usize,
        timeout: Duration,
    ) -> Result<(Vec<String>, bool), ApiError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let entry = owned_entry(&state, tenant, id)?;
            if entry.events.len() > from || entry.phase.is_terminal() {
                let lines = entry.events.get(from..).unwrap_or_default().to_vec();
                return Ok((lines, entry.phase.is_terminal()));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok((Vec::new(), false));
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }

    /// Stop accepting submissions.
    pub fn begin_shutdown(&self) {
        self.lock().accepting = false;
        self.cond.notify_all();
    }

    /// Wait up to `timeout` for all runners to finish. Returns true when
    /// the manager drained completely. Journals make an impatient exit
    /// safe either way.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        while state.running > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
        true
    }

    /// Start queued campaigns while scheduler slots are free, choosing
    /// the least-recently-served tenant first (FIFO within a tenant).
    fn schedule(self: &Arc<Self>) {
        loop {
            let mut state = self.lock();
            if state.running >= self.config.max_campaigns {
                return;
            }
            let pick = state
                .queue
                .iter()
                .filter(|id| {
                    state
                        .entries
                        .get(*id)
                        .is_some_and(|e| e.phase == CampaignPhase::Queued)
                })
                .min_by_key(|id| {
                    let tenant = &state.entries[*id].manifest.tenant;
                    state.served.get(tenant).copied().unwrap_or(0)
                })
                .cloned();
            let Some(id) = pick else {
                return;
            };
            state.queue.retain(|q| q != &id);
            state.running += 1;
            state.tick += 1;
            let tick = state.tick;
            let entry = state.entries.get_mut(&id).expect("picked entry exists");
            entry.phase = CampaignPhase::Running;
            let tenant = entry.manifest.tenant.clone();
            state.served.insert(tenant.clone(), tick);
            drop(state);
            self.config
                .tracer
                .incr(&format!("daemon.tenant.{tenant}.started"), 1);
            let manager = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("campaign-{id}"))
                .spawn(move || manager.run_one(&id))
                .expect("spawn campaign runner");
        }
    }

    /// Drive one campaign to a terminal state (runner thread body).
    fn run_one(self: &Arc<Self>, id: &str) {
        let (manifest, scenario, control, resume) = {
            let state = self.lock();
            let entry = &state.entries[id];
            (
                entry.manifest.clone(),
                entry.scenario.clone(),
                entry.control.clone(),
                entry.resume,
            )
        };
        let result = self.drive_campaign(id, &manifest, &scenario, &control, resume);
        let mut state = self.lock();
        state.running -= 1;
        let entry = state.entries.get_mut(id).expect("runner entry exists");
        let (phase, outcome, error) = match result {
            Ok((outcome, trip_cancelled)) => {
                let phase = if trip_cancelled {
                    CampaignPhase::Cancelled
                } else {
                    CampaignPhase::Completed
                };
                (phase, Some(outcome), None)
            }
            Err(e) => (CampaignPhase::Failed, None, Some(e)),
        };
        entry.phase = phase;
        entry.outcome = outcome.clone();
        entry.error = error.clone();
        let manifest = entry.manifest.clone();
        drop(state);
        self.persist_outcome(&manifest, phase, &outcome, &error);
        self.config.tracer.incr(
            &format!("daemon.tenant.{}.{}", manifest.tenant, phase.label()),
            1,
        );
        self.cond.notify_all();
        self.schedule();
    }

    /// Run or resume the dispatcher for one campaign. Returns the outcome
    /// summary and whether it ended by cancellation.
    fn drive_campaign(
        self: &Arc<Self>,
        id: &str,
        manifest: &Manifest,
        scenario: &JournalScenario,
        control: &CampaignControl,
        resume: bool,
    ) -> Result<(CampaignResult, bool), String> {
        let paths = self.store.paths(id).map_err(|e| e.to_string())?;
        let listener = self.progress_listener(id);
        let tracer = self.config.tracer.clone();
        let mut span = tracer.span("campaign");
        span.attr("campaign", id);
        span.attr("tenant", manifest.tenant.as_str());
        span.attr("resumed", resume);
        let registry = scenario.registry(None, None);
        let dispatcher = Dispatcher::new(
            scenario.war().map_err(|e| e.to_string())?,
            registry,
            scenario.concurrency,
        )
        .map_err(|e| e.to_string())?
        .with_tracer(tracer.clone())
        .with_admission(self.book.handle(&manifest.tenant));
        let breaker = scenario.breaker();
        let outcome = if resume {
            dispatcher
                .with_journal_listener(listener)
                .resume_campaign(
                    &paths.journal,
                    self.config.fsync,
                    JournalScenario::inputs,
                    Some(&breaker),
                    Some(control),
                )
                .map_err(|e| e.to_string())?
        } else {
            let journal = Journal::create(&paths.journal, self.config.fsync)
                .map_err(|e| e.to_string())?
                .with_tracer(tracer.clone())
                .with_listener(listener);
            dispatcher
                .with_journal(journal, manifest.meta.clone())
                .run_campaign(
                    &scenario.schedule(),
                    JournalScenario::inputs,
                    Some(&breaker),
                    Some(control),
                )
                .map_err(|e| e.to_string())?
        };
        let result = CampaignResult {
            fingerprint: report_fingerprint(&outcome.report),
            completed: outcome.report.completed(),
            failed: outcome.report.failures().len(),
            rolled_back: outcome.report.rolled_back(),
            trip: outcome.trip.map(|t| t.block),
            cancelled: outcome.cancelled,
        };
        span.attr("fingerprint", format!("{:016x}", result.fingerprint));
        span.attr("cancelled", result.cancelled);
        span.finish();
        Ok((result, outcome.cancelled))
    }

    /// The journal tap feeding live progress, the event stream, and the
    /// zero-re-execution witness: only durable appends notify, and
    /// replayed blocks never re-append.
    fn progress_listener(self: &Arc<Self>, id: &str) -> cornet_journal::EventListener {
        let manager = Arc::clone(self);
        let id = id.to_string();
        Arc::new(move |event: &JournalEvent| {
            let mut state = manager.lock();
            if let Some(entry) = state.entries.get_mut(&id) {
                entry.events.push(event.encode());
                match event {
                    JournalEvent::BlockCompleted(_) => entry.blocks_live += 1,
                    JournalEvent::InstanceFinished { .. } => entry.instances_done += 1,
                    _ => {}
                }
            }
            drop(state);
            manager.cond.notify_all();
        })
    }

    /// Bake a terminal outcome into the manifest so restarts report it
    /// without replaying the journal.
    fn persist_outcome(
        &self,
        manifest: &Manifest,
        phase: CampaignPhase,
        outcome: &Option<CampaignResult>,
        error: &Option<String>,
    ) {
        let mut manifest = manifest.clone();
        manifest
            .meta
            .insert("outcome_phase".into(), phase.label().into());
        if let Some(o) = outcome {
            manifest.meta.insert(
                "outcome_fingerprint".into(),
                format!("{:016x}", o.fingerprint),
            );
            manifest
                .meta
                .insert("outcome_completed".into(), o.completed.to_string());
            manifest
                .meta
                .insert("outcome_failed".into(), o.failed.to_string());
            manifest
                .meta
                .insert("outcome_rolled_back".into(), o.rolled_back.to_string());
            manifest
                .meta
                .insert("outcome_cancelled".into(), o.cancelled.to_string());
            if let Some(trip) = &o.trip {
                manifest.meta.insert("outcome_trip".into(), trip.clone());
            }
        }
        if let Some(e) = error {
            manifest.meta.insert("outcome_error".into(), e.clone());
        }
        if let Err(e) = self.store.update(&manifest) {
            eprintln!("cornetd: persisting outcome for {}: {e}", manifest.id);
        } else {
            let mut state = self.lock();
            if let Some(entry) = state.entries.get_mut(&manifest.id) {
                entry.manifest = manifest;
            }
        }
    }
}

/// Render one admission-gate conflict as a diagnostic. Same-tenant
/// conflicts name the live campaign; foreign-tenant conflicts are
/// redacted to the contested node/dimension — the 409 body must not leak
/// another tenant's campaign ids, names, or workflow names.
fn admission_conflict_diagnostic(c: &BlastConflict, tenant: &str, live: &Manifest) -> Diagnostic {
    let dims = c
        .dims
        .iter()
        .map(|d| d.label())
        .collect::<Vec<_>>()
        .join(", ");
    let other = if live.tenant == tenant {
        format!("your live campaign {} ('{}')", live.id, c.right)
    } else {
        "a live campaign of another tenant".to_string()
    };
    let source = SourceRef::Target {
        node: c.node_id,
        slot: Some(c.slot),
    };
    match c.code {
        "CN0601" => Diagnostic::error(
            Code("CN0601"),
            source,
            format!(
                "write-write race: submitted campaign '{}' and {} both write {{{dims}}} of {} \
                 in overlapping windows",
                c.left, other, c.node
            ),
        )
        .with_hint("wait for the live campaign to finish or reschedule into disjoint waves"),
        "CN0602" => Diagnostic::warning(
            Code("CN0602"),
            source,
            format!(
                "backout-vs-mainline overlap: a backout would race {} over {{{dims}}} of {}",
                other, c.node
            ),
        ),
        _ => Diagnostic::warning(
            Code("CN0604"),
            source,
            format!(
                "read-write hazard: submitted campaign '{}' and {} contest {{{dims}}} of {}",
                c.left, other, c.node
            ),
        ),
    }
}

fn validate_tenant(tenant: &str) -> Result<(), ApiError> {
    if tenant.is_empty()
        || tenant.len() > 64
        || !tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(ApiError::Invalid(format!(
            "bad tenant id {tenant:?}: expected 1-64 chars of [A-Za-z0-9_-]"
        )));
    }
    Ok(())
}

fn owned_entry<'a>(state: &'a ManagerState, tenant: &str, id: &str) -> Result<&'a Entry, ApiError> {
    let entry = state
        .entries
        .get(id)
        .ok_or_else(|| ApiError::NotFound(format!("no campaign {id}")))?;
    if entry.manifest.tenant != tenant {
        return Err(ApiError::Forbidden(format!(
            "campaign {id} belongs to another tenant"
        )));
    }
    Ok(entry)
}

fn owned_entry_mut<'a>(
    state: &'a mut ManagerState,
    tenant: &str,
    id: &str,
) -> Result<&'a mut Entry, ApiError> {
    let entry = state
        .entries
        .get_mut(id)
        .ok_or_else(|| ApiError::NotFound(format!("no campaign {id}")))?;
    if entry.manifest.tenant != tenant {
        return Err(ApiError::Forbidden(format!(
            "campaign {id} belongs to another tenant"
        )));
    }
    Ok(entry)
}

fn outcome_from_meta(meta: &BTreeMap<String, String>) -> Option<CampaignResult> {
    let fingerprint = u64::from_str_radix(meta.get("outcome_fingerprint")?, 16).ok()?;
    let count = |key: &str| meta.get(key).and_then(|v| v.parse().ok()).unwrap_or(0);
    Some(CampaignResult {
        fingerprint,
        completed: count("outcome_completed"),
        failed: count("outcome_failed"),
        rolled_back: count("outcome_rolled_back"),
        trip: meta.get("outcome_trip").cloned(),
        cancelled: meta.get("outcome_cancelled").map(String::as_str) == Some("true"),
    })
}

fn phase_from_meta(meta: &BTreeMap<String, String>) -> CampaignPhase {
    match meta.get("outcome_phase").map(String::as_str) {
        Some("cancelled") => CampaignPhase::Cancelled,
        Some("failed") => CampaignPhase::Failed,
        _ => CampaignPhase::Completed,
    }
}

/// Rebuild a terminal summary from a closed journal (the process died
/// between the journal close and the manifest update).
fn reconstruct_outcome(events: &[JournalEvent], total: u32) -> (CampaignResult, CampaignPhase) {
    let recovered = recover_campaign(events, Default::default()).ok();
    let report = DispatchReport {
        instances: recovered
            .map(|c| c.completed.into_values().collect())
            .unwrap_or_default(),
        drained: Vec::new(),
    };
    let trip = events.iter().find_map(|e| match e {
        JournalEvent::BreakerTripped { block, .. } => Some(block.clone()),
        _ => None,
    });
    let halted = (report.instances.len() as u32) < total;
    let cancelled = halted && trip.is_none();
    let outcome = CampaignResult {
        fingerprint: report_fingerprint(&report),
        completed: report.completed(),
        failed: report.failures().len(),
        rolled_back: report.rolled_back(),
        trip,
        cancelled,
    };
    let phase = if cancelled {
        CampaignPhase::Cancelled
    } else {
        CampaignPhase::Completed
    };
    (outcome, phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cornet-mgr-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn config(dir: &std::path::Path) -> ManagerConfig {
        ManagerConfig {
            state_dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            ..Default::default()
        }
    }

    fn small_spec() -> String {
        r#"{"name": "mgr-test", "scenario": {"nodes": 4, "latency_ms": 1}}"#.into()
    }

    /// A bundle that *declares* a campaign: one workflow, one inventory
    /// node, one [node, slot] assignment. Declared bundles go through the
    /// interference gate; node identity across bundles is the inventory
    /// name.
    fn declared_spec(name: &str, wf: &str, node: &str, slot: u32) -> String {
        format!(
            r#"{{"name": "{name}", "scenario": {{"nodes": 2, "latency_ms": 50}},
            "workflows": [{{"name": "{wf}",
                            "inputs": {{"node": "string", "software_version": "string"}},
                            "sequence": ["software_upgrade"]}}],
            "inventory": [{{"name": "{node}", "nf_type": "enb"}}],
            "campaigns": [{{"workflow": "{wf}", "assignments": [[0, {slot}]]}}]}}"#
        )
    }

    fn wait_terminal(manager: &Arc<CampaignManager>, tenant: &str, id: &str) -> CampaignSnapshot {
        for _ in 0..600 {
            let snap = manager.snapshot(tenant, id).unwrap();
            if snap.phase.is_terminal() {
                return snap;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("campaign {id} never reached a terminal phase");
    }

    #[test]
    fn submit_runs_to_completion_with_progress() {
        let dir = tmp_dir("complete");
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let out = manager.submit("acme", &small_spec()).unwrap();
        let SubmitOutcome::Accepted { id, .. } = out else {
            panic!("clean spec should be accepted");
        };
        let snap = wait_terminal(&manager, "acme", &id);
        assert_eq!(snap.phase, CampaignPhase::Completed);
        let outcome = snap.outcome.expect("terminal outcome");
        assert_eq!(outcome.completed + outcome.failed + outcome.rolled_back, 4);
        assert_eq!(snap.instances_done, 4);
        assert!(snap.blocks_live > 0, "listener saw live appends");
        assert_eq!(snap.blocks_recovered, 0);
        assert!(snap.events > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn defective_bundle_is_refused_without_state() {
        let dir = tmp_dir("refused");
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let body = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/check/defective.json"
        ))
        .expect("repo fixture");
        match manager.submit("acme", &body) {
            Ok(SubmitOutcome::Rejected { report }) => assert!(report.has_errors()),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(manager.list("acme").is_empty(), "no campaign was created");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tenant_isolation_hides_and_protects_campaigns() {
        let dir = tmp_dir("isolation");
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let SubmitOutcome::Accepted { id, .. } = manager.submit("acme", &small_spec()).unwrap()
        else {
            panic!("accepted");
        };
        assert!(manager.list("rival").is_empty());
        assert!(matches!(
            manager.snapshot("rival", &id),
            Err(ApiError::Forbidden(_))
        ));
        assert!(matches!(
            manager.cancel("rival", &id),
            Err(ApiError::Forbidden(_))
        ));
        wait_terminal(&manager, "acme", &id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_resumes_interrupted_campaigns_without_reexecution() {
        let dir = tmp_dir("restart");
        // First life: run a campaign to completion, remember its
        // fingerprint, then fabricate an interrupted sibling by copying
        // a truncated journal prefix.
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let SubmitOutcome::Accepted { id, .. } = manager.submit("acme", &small_spec()).unwrap()
        else {
            panic!("accepted");
        };
        let done = wait_terminal(&manager, "acme", &id);
        let clean = done.outcome.expect("outcome").fingerprint;
        manager.begin_shutdown();
        assert!(manager.drain(Duration::from_secs(30)));
        drop(manager);

        // Strip the persisted outcome and cut the journal mid-campaign so
        // the restart sees an interrupted run.
        let store = CampaignStore::open(&dir).unwrap();
        let mut manifest = store.read_manifest(&id).unwrap();
        manifest.meta.retain(|k, _| !k.starts_with("outcome_"));
        store.update(&manifest).unwrap();
        let paths = store.paths(&id).unwrap();
        let (events, _) = Journal::read(&paths.journal).unwrap();
        let keep = events.len() / 2;
        let journal = Journal::create(&paths.journal, FsyncPolicy::Never).unwrap();
        for event in &events[..keep] {
            journal.append(event).unwrap();
        }
        drop(journal);
        let recovered_blocks = events[..keep]
            .iter()
            .filter(|e| matches!(e, JournalEvent::BlockCompleted(_)))
            .count();

        // Second life: the manager must resume and land on the same
        // fingerprint, replaying (not re-executing) the prefix.
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let snap = wait_terminal(&manager, "acme", &id);
        assert_eq!(snap.phase, CampaignPhase::Completed);
        assert_eq!(snap.outcome.expect("outcome").fingerprint, clean);
        assert_eq!(snap.blocks_recovered, recovered_blocks);
        let total_blocks = events
            .iter()
            .filter(|e| matches!(e, JournalEvent::BlockCompleted(_)))
            .count();
        assert_eq!(
            snap.blocks_live,
            total_blocks - recovered_blocks,
            "resume re-executes exactly the un-journaled remainder"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interfering_submission_is_refused_while_disjoint_is_admitted() {
        let dir = tmp_dir("interfere");
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let SubmitOutcome::Accepted { id, .. } = manager
            .submit("acme", &declared_spec("a", "up-a", "enb-0", 1))
            .unwrap()
        else {
            panic!("first declared bundle admitted");
        };
        // Same node name, same slot, both write 'version': refused.
        match manager
            .submit("acme", &declared_spec("b", "up-b", "enb-0", 1))
            .unwrap()
        {
            SubmitOutcome::Interfering { report } => {
                assert!(report.has_errors());
                assert!(report.iter().any(|d| d.code == Code("CN0601")));
                assert!(
                    report.render_jsonl().contains(&id),
                    "same-tenant conflicts name the live campaign"
                );
            }
            other => panic!("expected interference refusal, got {other:?}"),
        }
        assert_eq!(manager.list("acme").len(), 1, "nothing was created");
        // Disjoint node: admitted alongside.
        let SubmitOutcome::Accepted { id: disjoint, .. } = manager
            .submit("acme", &declared_spec("c", "up-c", "gnb-9", 1))
            .unwrap()
        else {
            panic!("disjoint declared bundle admitted");
        };
        wait_terminal(&manager, "acme", &id);
        wait_terminal(&manager, "acme", &disjoint);
        // Terminal campaigns no longer occupy their blast radius.
        let SubmitOutcome::Accepted { id: retry, .. } = manager
            .submit("acme", &declared_spec("b", "up-b", "enb-0", 1))
            .unwrap()
        else {
            panic!("terminal campaigns must not block resubmission");
        };
        wait_terminal(&manager, "acme", &retry);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admission_verdict_is_order_independent() {
        for (first, second) in [("up-a", "up-b"), ("up-b", "up-a")] {
            let dir = tmp_dir(&format!("order-{first}"));
            let manager = CampaignManager::start(config(&dir)).unwrap();
            let SubmitOutcome::Accepted { id, .. } = manager
                .submit("acme", &declared_spec(first, first, "enb-0", 1))
                .unwrap()
            else {
                panic!("first admitted");
            };
            // Whichever workflow arrives second, the pair's verdict is the
            // same write-write race on the same node.
            match manager
                .submit("acme", &declared_spec(second, second, "enb-0", 1))
                .unwrap()
            {
                SubmitOutcome::Interfering { report } => {
                    let d = report
                        .iter()
                        .find(|d| d.code == Code("CN0601"))
                        .expect("write-write race");
                    assert!(d.message.contains("enb-0"), "{}", d.message);
                    assert!(d.message.contains("version"), "{}", d.message);
                }
                other => panic!("expected interference, got {other:?}"),
            }
            wait_terminal(&manager, "acme", &id);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn foreign_tenant_conflicts_are_redacted_and_blast_is_owner_only() {
        let dir = tmp_dir("redact");
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let SubmitOutcome::Accepted { id, .. } = manager
            .submit("acme", &declared_spec("a", "secret-flow", "enb-0", 1))
            .unwrap()
        else {
            panic!("admitted");
        };
        // The owner inspects its blast radii; other tenants get 403.
        let body = manager.blast("acme", &id).unwrap();
        assert!(body.contains("\"writes\""), "{body}");
        assert!(body.contains("secret-flow"), "{body}");
        assert!(matches!(
            manager.blast("rival", &id),
            Err(ApiError::Forbidden(_))
        ));
        // A rival's conflicting submission is refused without revealing
        // whose campaign it collided with.
        match manager
            .submit("rival", &declared_spec("b", "rival-flow", "enb-0", 1))
            .unwrap()
        {
            SubmitOutcome::Interfering { report } => {
                let jsonl = report.render_jsonl();
                assert!(jsonl.contains("another tenant"), "{jsonl}");
                assert!(!jsonl.contains(&id), "campaign id leaked: {jsonl}");
                assert!(
                    !jsonl.contains("secret-flow"),
                    "workflow name leaked: {jsonl}"
                );
            }
            other => panic!("expected interference, got {other:?}"),
        }
        wait_terminal(&manager, "acme", &id);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blast_radii_are_recomputed_from_the_spec_on_restart() {
        let dir = tmp_dir("blast-restart");
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let SubmitOutcome::Accepted { id, .. } = manager
            .submit("acme", &declared_spec("a", "up-a", "enb-0", 1))
            .unwrap()
        else {
            panic!("admitted");
        };
        wait_terminal(&manager, "acme", &id);
        manager.begin_shutdown();
        assert!(manager.drain(Duration::from_secs(30)));
        drop(manager);
        let manager = CampaignManager::start(config(&dir)).unwrap();
        let body = manager.blast("acme", &id).unwrap();
        assert!(body.contains("enb-0"), "{body}");
        assert!(body.contains("\"writes\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancel_queued_campaign_never_runs_even_after_restart() {
        let dir = tmp_dir("cancel-queued");
        let mut cfg = config(&dir);
        cfg.max_campaigns = 1;
        let manager = CampaignManager::start(cfg.clone()).unwrap();
        // Occupy the single scheduler slot, then queue a second campaign.
        let SubmitOutcome::Accepted { id: first, .. } =
            manager.submit("acme", &small_spec()).unwrap()
        else {
            panic!("accepted");
        };
        let SubmitOutcome::Accepted { id: second, .. } =
            manager.submit("acme", &small_spec()).unwrap()
        else {
            panic!("accepted");
        };
        let snap = manager.cancel("acme", &second).unwrap();
        assert_eq!(snap.phase, CampaignPhase::Cancelled);
        wait_terminal(&manager, "acme", &first);
        manager.begin_shutdown();
        assert!(manager.drain(Duration::from_secs(30)));
        drop(manager);
        let manager = CampaignManager::start(cfg).unwrap();
        let snap = manager.snapshot("acme", &second).unwrap();
        assert_eq!(snap.phase, CampaignPhase::Cancelled);
        assert_eq!(snap.instances_done, 0, "tombstone, not a run");
        std::fs::remove_dir_all(&dir).ok();
    }
}
