//! `/v1` endpoint routing for `cornetd`.
//!
//! | Method | Path                            | Purpose                          |
//! |--------|---------------------------------|----------------------------------|
//! | GET    | `/v1/healthz`                   | liveness probe                   |
//! | POST   | `/v1/campaigns`                 | submit a MOP bundle (gate-checked) |
//! | GET    | `/v1/campaigns`                 | list the tenant's campaigns      |
//! | GET    | `/v1/campaigns/{id}`            | one campaign with progress       |
//! | POST   | `/v1/campaigns/{id}/pause`      | stop admitting new instances     |
//! | POST   | `/v1/campaigns/{id}/resume`     | resume admissions                |
//! | POST   | `/v1/campaigns/{id}/cancel`     | drain and close the campaign     |
//! | GET    | `/v1/campaigns/{id}/events`     | journal events as JSONL (`?follow=1` streams) |
//! | GET    | `/v1/campaigns/{id}/blast`      | declared blast radii (owner only) |
//! | GET    | `/v1/quotas`                    | tenant quota + global pool usage |
//! | POST   | `/v1/ingest`                    | stream KPI samples (JSONL) into the online verifier |
//! | GET    | `/v1/ingest`                    | ingest counters, live detections, current verdicts |
//! | POST   | `/v1/shutdown`                  | stop accepting, begin drain      |
//!
//! Every campaign route requires an `X-Cornet-Tenant` header; a tenant
//! can only see and drive its own campaigns (403 otherwise). Submissions
//! whose bundle fails the `cornet check` gate are refused with 422 and
//! the diagnostics as JSONL; bundles whose declared campaigns' blast
//! radii collide with a live campaign are refused with 409 and the
//! CN06xx diagnostics as JSONL (foreign-tenant details redacted).

use crate::http::{Handler, HttpServer, Reply, Request, Response};
use crate::manager::{ApiError, CampaignManager, CampaignSnapshot, SubmitOutcome};
use crate::stream::StreamHub;
use cornet_obs::{json_escape, Tracer};
use std::fmt::Write as _;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// The bound daemon API: an [`HttpServer`] routing into a
/// [`CampaignManager`].
pub struct ApiServer {
    server: HttpServer,
    shutdown_rx: mpsc::Receiver<()>,
}

impl ApiServer {
    /// Bind `addr` and serve the `/v1` API with `workers` threads.
    pub fn bind(
        addr: &str,
        workers: usize,
        manager: Arc<CampaignManager>,
    ) -> std::io::Result<ApiServer> {
        let (tx, rx) = mpsc::channel();
        let server = HttpServer::bind(addr, workers, handler(manager, tx))?;
        Ok(ApiServer {
            server,
            shutdown_rx: rx,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Block until a `POST /v1/shutdown` arrives.
    pub fn wait_for_shutdown(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Stop the HTTP server (in-flight requests finish).
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// Build the routing handler (exposed for in-process tests).
pub fn handler(manager: Arc<CampaignManager>, shutdown_tx: mpsc::Sender<()>) -> Handler {
    let shutdown_tx = Mutex::new(shutdown_tx);
    let hub = StreamHub::new(Tracer::noop());
    Arc::new(move |req: Request| route(&manager, &hub, &shutdown_tx, req))
}

fn route(
    manager: &Arc<CampaignManager>,
    hub: &StreamHub,
    shutdown_tx: &Mutex<mpsc::Sender<()>>,
    req: Request,
) -> Reply {
    let segments: Vec<&str> = match req.path.strip_prefix("/v1/") {
        Some(rest) => rest.split('/').filter(|s| !s.is_empty()).collect(),
        None => return full(error_response(&ApiError::NotFound(req.path.clone()))),
    };
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => full(Response::json(200, r#"{"status":"ok"}"#)),
        ("POST", ["shutdown"]) => {
            manager.begin_shutdown();
            let _ = shutdown_tx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .send(());
            full(Response::json(202, r#"{"status":"shutting-down"}"#))
        }
        ("GET", ["quotas"]) => with_tenant(&req, |tenant| {
            full(Response::json(200, render_quotas(manager, tenant)))
        }),
        ("POST", ["campaigns"]) => {
            with_tenant(&req, |tenant| match manager.submit(tenant, &req.body) {
                Ok(SubmitOutcome::Accepted { id, report }) => full(Response::json(
                    201,
                    format!(
                        "{{\"id\":\"{}\",\"warnings\":{},\"phase\":\"queued\"}}",
                        json_escape(&id),
                        report.warning_count()
                    ),
                )),
                Ok(SubmitOutcome::Rejected { report }) => {
                    full(Response::jsonl(422, report.render_jsonl()))
                }
                Ok(SubmitOutcome::Interfering { report }) => {
                    full(Response::jsonl(409, report.render_jsonl()))
                }
                Err(e) => full(error_response(&e)),
            })
        }
        ("GET", ["campaigns"]) => with_tenant(&req, |tenant| {
            let mut body = String::from("[");
            for (i, snap) in manager.list(tenant).iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&render_snapshot(snap));
            }
            body.push(']');
            full(Response::json(200, body))
        }),
        ("GET", ["campaigns", id]) => {
            with_tenant(&req, |tenant| reply_snapshot(manager.snapshot(tenant, id)))
        }
        ("POST", ["campaigns", id, "pause"]) => {
            with_tenant(&req, |tenant| reply_snapshot(manager.pause(tenant, id)))
        }
        ("POST", ["campaigns", id, "resume"]) => {
            with_tenant(&req, |tenant| reply_snapshot(manager.resume(tenant, id)))
        }
        ("POST", ["campaigns", id, "cancel"]) => {
            with_tenant(&req, |tenant| reply_snapshot(manager.cancel(tenant, id)))
        }
        ("GET", ["campaigns", id, "blast"]) => {
            with_tenant(&req, |tenant| match manager.blast(tenant, id) {
                Ok(body) => full(Response::json(200, body)),
                Err(e) => full(error_response(&e)),
            })
        }
        ("GET", ["campaigns", id, "events"]) => with_tenant(&req, |tenant| {
            let from: usize = req.param("from").and_then(|v| v.parse().ok()).unwrap_or(0);
            let follow = matches!(req.param("follow"), Some("1" | "true"));
            if follow {
                stream_events(manager, tenant, id, from)
            } else {
                match manager.events_since(tenant, id, from) {
                    Ok((lines, _)) => {
                        let mut body = lines.join("\n");
                        if !body.is_empty() {
                            body.push('\n');
                        }
                        full(Response::jsonl(200, body))
                    }
                    Err(e) => full(error_response(&e)),
                }
            }
        }),
        ("POST", ["ingest"]) => with_tenant(&req, |tenant| {
            let params = req.query.iter().map(|(k, v)| (k.clone(), v.clone()));
            match hub.ingest(tenant, params, &req.body) {
                Ok(receipt) => full(Response::json(200, receipt)),
                Err(e) => full(error_response(&ApiError::Invalid(e))),
            }
        }),
        ("GET", ["ingest"]) => with_tenant(&req, |tenant| match hub.snapshot(tenant) {
            Some(body) => full(Response::json(200, body)),
            None => full(error_response(&ApiError::NotFound(
                "no ingest session for tenant (POST samples first)".to_string(),
            ))),
        }),
        (_, ["healthz" | "shutdown" | "quotas" | "campaigns" | "ingest", ..]) => {
            full(Response::json(405, r#"{"error":"method not allowed"}"#))
        }
        _ => full(error_response(&ApiError::NotFound(req.path.clone()))),
    }
}

fn full(response: Response) -> Reply {
    Reply::Full(response)
}

fn with_tenant(req: &Request, f: impl FnOnce(&str) -> Reply) -> Reply {
    match req.header("x-cornet-tenant") {
        Some(tenant) if !tenant.is_empty() => f(tenant),
        _ => full(Response::json(
            400,
            r#"{"error":"missing X-Cornet-Tenant header"}"#,
        )),
    }
}

fn reply_snapshot(result: Result<CampaignSnapshot, ApiError>) -> Reply {
    match result {
        Ok(snap) => full(Response::json(200, render_snapshot(&snap))),
        Err(e) => full(error_response(&e)),
    }
}

fn stream_events(manager: &Arc<CampaignManager>, tenant: &str, id: &str, from: usize) -> Reply {
    // Validate ownership up front so auth failures are proper statuses,
    // not broken streams.
    if let Err(e) = manager.snapshot(tenant, id) {
        return full(error_response(&e));
    }
    let manager = Arc::clone(manager);
    let tenant = tenant.to_string();
    let id = id.to_string();
    Reply::Stream {
        content_type: "application/x-ndjson",
        write: Box::new(move |sink| {
            let mut cursor = from;
            loop {
                let (lines, done) =
                    match manager.wait_events(&tenant, &id, cursor, Duration::from_secs(10)) {
                        Ok(r) => r,
                        Err(_) => return Ok(()),
                    };
                cursor += lines.len();
                for line in &lines {
                    writeln!(sink, "{line}")?;
                }
                sink.flush()?;
                if done {
                    return Ok(());
                }
            }
        }),
    }
}

fn error_response(e: &ApiError) -> Response {
    let status = match e {
        ApiError::NotFound(_) => 404,
        ApiError::Forbidden(_) => 403,
        ApiError::Invalid(_) => 400,
        ApiError::Conflict(_) => 409,
        ApiError::Internal(_) => 500,
    };
    Response::json(
        status,
        format!("{{\"error\":\"{}\"}}", json_escape(&e.to_string())),
    )
}

fn render_quotas(manager: &CampaignManager, tenant: &str) -> String {
    let (in_flight, high_water, pool) = manager.pool_usage();
    let mut body = format!(
        "{{\"global\":{{\"in_flight\":{in_flight},\"high_water\":{high_water},\"pool\":{pool}}}"
    );
    if let Some(snap) = manager.quotas().get(tenant) {
        let _ = write!(
            body,
            ",\"tenant\":{{\"in_flight\":{},\"high_water\":{},\"quota\":{},\"waiting\":{}}}",
            snap.in_flight, snap.high_water, snap.quota, snap.waiting
        );
    } else {
        body.push_str(",\"tenant\":null");
    }
    body.push('}');
    body
}

/// Render one campaign snapshot as a JSON object.
pub fn render_snapshot(snap: &CampaignSnapshot) -> String {
    let mut out = format!(
        "{{\"id\":\"{}\",\"tenant\":\"{}\",\"name\":\"{}\",\"phase\":\"{}\",\
         \"total_instances\":{},\"instances_done\":{},\"blocks_live\":{},\
         \"blocks_recovered\":{},\"events\":{}",
        json_escape(&snap.id),
        json_escape(&snap.tenant),
        json_escape(&snap.name),
        snap.phase.label(),
        snap.total_instances,
        snap.instances_done,
        snap.blocks_live,
        snap.blocks_recovered,
        snap.events,
    );
    match &snap.outcome {
        Some(o) => {
            let _ = write!(
                out,
                ",\"outcome\":{{\"fingerprint\":\"{:016x}\",\"completed\":{},\"failed\":{},\
                 \"rolled_back\":{},\"cancelled\":{}",
                o.fingerprint, o.completed, o.failed, o.rolled_back, o.cancelled
            );
            match &o.trip {
                Some(t) => {
                    let _ = write!(out, ",\"trip\":\"{}\"}}", json_escape(t));
                }
                None => out.push_str(",\"trip\":null}"),
            }
        }
        None => out.push_str(",\"outcome\":null"),
    }
    match &snap.error {
        Some(e) => {
            let _ = write!(out, ",\"error\":\"{}\"}}", json_escape(e));
        }
        None => out.push_str(",\"error\":null}"),
    }
    out
}
