//! Streaming (online) verification: the batch verifier restructured
//! around continuous ingestion.
//!
//! The batch path loads complete before/after series and fans (KPI ×
//! location) units once; a production feed is 349 KPI equations ×
//! ~100k nodes arriving one sample at a time. This module keeps the
//! batch path's exact statistics while moving the data plane online:
//!
//! * [`SampleRouter`] — the backpressure-aware ingest edge: a bounded
//!   queue that sheds the **oldest** sample when full (freshest data wins
//!   on overload) and counts what it shed;
//! * [`SeriesStore`] — per-(node, KPI, carrier) window state on a fixed
//!   sampling grid, tolerant of gaps, duplicates, and out-of-order
//!   delivery; implements [`DataAdapter`], so the batch analytics read it
//!   like any other feed;
//! * [`StreamingVerifier`] — the engine: [`offer`](StreamingVerifier::offer)
//!   enqueues, [`pump`](StreamingVerifier::pump) drains and fans
//!   per-stream updates across the rayon pool (each study stream feeds a
//!   per-sample [`MultiTimescaleDetector`] for low-latency change
//!   signals), and [`poll_verdicts`](StreamingVerifier::poll_verdicts)
//!   re-runs the rule fan through the **same** `verify_rule_impl` the
//!   batch facade uses, over a [`SeriesCache`] of the store.
//!
//! **Correctness bar:** after replaying a feed sample-by-sample (any
//! delivery order), `poll_verdicts` is verdict-identical — p-value bits
//! included — to [`verify_rules`](crate::verify_rules) over the
//! assembled batch, because both paths share one implementation and the
//! store reassembles the exact series. The per-sample detectors are a
//! latency optimization (they gate verdict recomputation and surface
//! live change events), never a different answer.

use crate::adapter::{DataAdapter, SeriesCache};
use crate::analysis::ChangeScope;
use crate::rules::VerificationRule;
use crate::verify::{verify_rule_impl, VerificationReport};
use cornet_obs::Tracer;
use cornet_stats::{quantile, MultiTimescaleDetector, TimeSeries};
use cornet_types::{Inventory, NodeId, Result, Topology};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One KPI measurement in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamSample {
    /// Measured node.
    pub node: NodeId,
    /// KPI name in the rule vocabulary.
    pub kpi: String,
    /// Carrier confinement, if the feed is per-carrier.
    pub carrier: Option<usize>,
    /// Sample timestamp, minutes since epoch (must sit on the grid).
    pub minute: u64,
    /// Measured value; NaN marks an explicit missing sample.
    pub value: f64,
}

/// Streaming-engine tuning.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Sampling grid of the feed, minutes per step.
    pub step_minutes: u64,
    /// Bounded ingest-queue capacity; overflow sheds the oldest sample.
    pub queue_capacity: usize,
    /// Two-window size of the per-sample changepoint detectors.
    pub detect_window: usize,
    /// Detection threshold in robust sigma units.
    pub detect_threshold: f64,
    /// Coarsening factors of the detector lanes.
    pub detect_timescales: Vec<usize>,
    /// Per-sample latency observations retained for quantile queries.
    pub latency_cap: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            step_minutes: 60,
            queue_capacity: 65_536,
            detect_window: 8,
            detect_threshold: 5.0,
            detect_timescales: vec![1, 24],
            latency_cap: 1 << 20,
        }
    }
}

/// Outcome of offering one sample to the router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Enqueued without displacement.
    Queued,
    /// Enqueued, but the queue was full and the oldest sample was shed.
    ShedOldest,
}

/// The bounded, drop-oldest ingest queue.
///
/// Production feeds burst; verification must never apply backpressure to
/// the collection pipeline (a stalled collector loses *everything*). The
/// router therefore always accepts the new sample and, when full, sheds
/// the oldest queued one — the freshest data is what a go/no-go decision
/// needs — while counting the loss for the `stream.samples_shed` counter.
pub struct SampleRouter {
    queue: Mutex<VecDeque<(StreamSample, Instant)>>,
    capacity: usize,
    accepted: AtomicU64,
    shed: AtomicU64,
}

impl SampleRouter {
    /// Router with the given queue capacity (at least 1).
    pub fn new(capacity: usize) -> Self {
        SampleRouter {
            queue: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 65_536))),
            capacity: capacity.max(1),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Enqueue one sample, shedding the oldest when full.
    pub fn offer(&self, sample: StreamSample) -> IngestOutcome {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let outcome = if q.len() >= self.capacity {
            q.pop_front();
            self.shed.fetch_add(1, Ordering::Relaxed);
            IngestOutcome::ShedOldest
        } else {
            IngestOutcome::Queued
        };
        q.push_back((sample, Instant::now()));
        self.accepted.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    /// Take everything currently queued.
    fn drain(&self) -> Vec<(StreamSample, Instant)> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.drain(..).collect()
    }

    /// Samples currently waiting.
    pub fn depth(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Samples accepted since construction.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Samples shed since construction.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// Cache key of one stream — mirrors the [`SeriesCache`] key.
type StreamKey = (NodeId, String, Option<usize>);

/// Per-stream window state: the grid buffer plus (for study streams) the
/// per-sample detector.
struct StreamState {
    start_minute: u64,
    values: Vec<f64>,
    detector: Option<MultiTimescaleDetector>,
}

impl StreamState {
    /// Apply one sample. Returns the raw detector candidates it fired,
    /// or `Err(())` when the timestamp is off-grid.
    fn apply(
        &mut self,
        minute: u64,
        value: f64,
        step: u64,
    ) -> std::result::Result<Vec<(usize, cornet_stats::LevelShift)>, ()> {
        let mut fired = Vec::new();
        let mut feed = |detector: &mut Option<MultiTimescaleDetector>, v: f64| {
            if let Some(d) = detector {
                fired.extend(d.push(v).into_iter().map(|t| (t.timescale, t.shift)));
            }
        };
        if self.values.is_empty() {
            self.start_minute = minute;
            self.values.push(value);
            feed(&mut self.detector, value);
            return Ok(fired);
        }
        if minute >= self.start_minute {
            let offset = minute - self.start_minute;
            if !offset.is_multiple_of(step) {
                return Err(());
            }
            let idx = (offset / step) as usize;
            if idx == self.values.len() {
                // The common case: in-order append; the detector sees the
                // stream exactly as a batch replay would.
                self.values.push(value);
                feed(&mut self.detector, value);
            } else if idx > self.values.len() {
                // A gap: the skipped grid slots are missing samples.
                while self.values.len() < idx {
                    self.values.push(f64::NAN);
                    feed(&mut self.detector, f64::NAN);
                }
                self.values.push(value);
                feed(&mut self.detector, value);
            } else {
                // Late or duplicate delivery: the grid slot is corrected
                // (last write wins) but the detector, which has already
                // consumed this index, is not rewound — detection is a
                // low-latency signal; verdicts re-read the full buffer.
                self.values[idx] = value;
            }
        } else {
            // Out-of-order sample before the first seen one: grow the
            // grid backwards.
            let gap = self.start_minute - minute;
            if !gap.is_multiple_of(step) {
                return Err(());
            }
            let pad = (gap / step) as usize;
            let mut grown = Vec::with_capacity(pad + self.values.len());
            grown.push(value);
            grown.resize(pad, f64::NAN);
            grown.extend_from_slice(&self.values);
            self.values = grown;
            self.start_minute = minute;
        }
        Ok(fired)
    }
}

/// Assembled window state behind a [`DataAdapter`] face.
///
/// The store is the streaming sibling of [`SeriesCache`]: where the cache
/// memoizes series fetched from elsewhere, the store *is* the series,
/// grown one sample at a time. Verdict polls wrap it in a fresh
/// `SeriesCache` so each stream is assembled once per poll no matter how
/// many rules, slices, or timescales read it.
pub struct SeriesStore {
    step_minutes: u64,
    streams: RwLock<HashMap<StreamKey, Arc<Mutex<StreamState>>>>,
}

impl SeriesStore {
    /// Empty store on the given sampling grid.
    pub fn new(step_minutes: u64) -> Self {
        SeriesStore {
            step_minutes: step_minutes.max(1),
            streams: RwLock::new(HashMap::new()),
        }
    }

    /// Distinct streams currently held.
    pub fn stream_count(&self) -> usize {
        self.streams.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Fetch (or create) the state cell of one stream.
    fn state_for(
        &self,
        key: &StreamKey,
        with_detector: impl FnOnce() -> Option<MultiTimescaleDetector>,
    ) -> Arc<Mutex<StreamState>> {
        if let Some(s) = self
            .streams
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
        {
            return Arc::clone(s);
        }
        let mut w = self.streams.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(w.entry(key.clone()).or_insert_with(|| {
            Arc::new(Mutex::new(StreamState {
                start_minute: 0,
                values: Vec::new(),
                detector: with_detector(),
            }))
        }))
    }
}

impl DataAdapter for SeriesStore {
    fn series(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> Option<TimeSeries> {
        let key = (node, kpi.to_owned(), carrier);
        let cell = Arc::clone(
            self.streams
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)?,
        );
        let state = cell.lock().unwrap_or_else(|e| e.into_inner());
        if state.values.is_empty() {
            return None;
        }
        Some(TimeSeries::new(
            state.start_minute,
            self.step_minutes,
            state.values.clone(),
        ))
    }
}

/// A live change signal from one study stream's per-sample detector.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamDetection {
    /// Stream identity.
    pub node: NodeId,
    /// KPI name.
    pub kpi: String,
    /// Carrier confinement.
    pub carrier: Option<usize>,
    /// Coarsening factor of the lane that fired.
    pub timescale: usize,
    /// Grid minute of the first sample after the shift.
    pub minute: u64,
    /// Post-window median minus pre-window median (normalized units of
    /// the lane).
    pub delta: f64,
    /// Detection strength in robust sigma units.
    pub score: f64,
}

/// Counters of one [`StreamingVerifier::pump`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Samples drained and applied.
    pub processed: usize,
    /// Samples refused for off-grid timestamps.
    pub rejected: usize,
    /// Raw detector candidates fired.
    pub detections: usize,
}

/// Cumulative engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Samples accepted by the router.
    pub accepted: u64,
    /// Samples shed by the bounded queue (drop-oldest).
    pub shed: u64,
    /// Samples applied to window state.
    pub processed: u64,
    /// Samples refused for off-grid timestamps.
    pub rejected: u64,
    /// Raw detector candidates fired.
    pub detections: u64,
}

/// The streaming verification engine.
pub struct StreamingVerifier {
    rules: Vec<VerificationRule>,
    scope: ChangeScope,
    inventory: Inventory,
    topology: Topology,
    config: StreamConfig,
    store: SeriesStore,
    router: SampleRouter,
    tracer: Tracer,
    dirty: AtomicBool,
    cached_reports: Mutex<Option<Vec<VerificationReport>>>,
    detections: Mutex<Vec<StreamDetection>>,
    latencies_us: Mutex<Vec<f64>>,
    processed: AtomicU64,
    rejected: AtomicU64,
    detections_total: AtomicU64,
}

impl StreamingVerifier {
    /// Engine over the given rules and change scope.
    pub fn new(
        rules: Vec<VerificationRule>,
        scope: ChangeScope,
        inventory: Inventory,
        topology: Topology,
        config: StreamConfig,
        tracer: Tracer,
    ) -> Self {
        let store = SeriesStore::new(config.step_minutes);
        let router = SampleRouter::new(config.queue_capacity);
        StreamingVerifier {
            rules,
            scope,
            inventory,
            topology,
            config,
            store,
            router,
            tracer,
            dirty: AtomicBool::new(false),
            cached_reports: Mutex::new(None),
            detections: Mutex::new(Vec::new()),
            latencies_us: Mutex::new(Vec::new()),
            processed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            detections_total: AtomicU64::new(0),
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> &[VerificationRule] {
        &self.rules
    }

    /// The change scope under verification.
    pub fn scope(&self) -> &ChangeScope {
        &self.scope
    }

    /// The window state (read-side adapter view).
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Offer one sample to the bounded ingest queue.
    pub fn offer(&self, sample: StreamSample) -> IngestOutcome {
        let outcome = self.router.offer(sample);
        if outcome == IngestOutcome::ShedOldest {
            self.tracer.incr("stream.samples_shed", 1);
        }
        outcome
    }

    /// Drain the queue and apply every sample: per-stream groups are
    /// fanned across the rayon pool, each group applying its samples in
    /// arrival order (one lock per stream, no cross-stream contention).
    pub fn pump(&self) -> PumpStats {
        let batch = self.router.drain();
        if batch.is_empty() {
            return PumpStats::default();
        }
        let mut span = self.tracer.span("stream.pump");
        span.attr("batch", batch.len());

        // Group by stream, preserving per-stream arrival order.
        let mut order: Vec<StreamKey> = Vec::new();
        let mut groups: HashMap<StreamKey, Vec<(StreamSample, Instant)>> = HashMap::new();
        for (sample, t) in batch {
            let key = (sample.node, sample.kpi.clone(), sample.carrier);
            match groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(vec![(sample, t)]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().push((sample, t));
                }
            }
        }
        // Resolve state cells serially (map writes), then fan the
        // per-stream work (pure per-cell mutation) across the pool.
        type StreamWork = (
            StreamKey,
            Arc<Mutex<StreamState>>,
            Vec<(StreamSample, Instant)>,
        );
        let work: Vec<StreamWork> = order
            .into_iter()
            .map(|key| {
                let samples = groups.remove(&key).expect("grouped above");
                let cell = self.store.state_for(&key, || {
                    self.scope.changes.contains_key(&key.0).then(|| {
                        MultiTimescaleDetector::new(
                            &self.config.detect_timescales,
                            self.config.detect_window,
                            self.config.detect_threshold,
                        )
                    })
                });
                (key, cell, samples)
            })
            .collect();

        struct GroupOutcome {
            detections: Vec<StreamDetection>,
            latencies_us: Vec<f64>,
            processed: usize,
            rejected: usize,
        }
        let step = self.config.step_minutes;
        let outcomes: Vec<GroupOutcome> = work
            .par_iter()
            .map(|(key, cell, samples)| {
                let mut out = GroupOutcome {
                    detections: Vec::new(),
                    latencies_us: Vec::with_capacity(samples.len()),
                    processed: 0,
                    rejected: 0,
                };
                let mut state = cell.lock().unwrap_or_else(|e| e.into_inner());
                for (sample, enqueued) in samples {
                    match state.apply(sample.minute, sample.value, step) {
                        Ok(fired) => {
                            out.processed += 1;
                            for (timescale, shift) in fired {
                                let native = shift.index * timescale;
                                out.detections.push(StreamDetection {
                                    node: key.0,
                                    kpi: key.1.clone(),
                                    carrier: key.2,
                                    timescale,
                                    minute: state.start_minute + native as u64 * step,
                                    delta: shift.delta,
                                    score: shift.score,
                                });
                            }
                        }
                        Err(()) => out.rejected += 1,
                    }
                    out.latencies_us
                        .push(enqueued.elapsed().as_secs_f64() * 1e6);
                }
                out
            })
            .collect();

        let mut stats = PumpStats::default();
        {
            let mut detections = self.detections.lock().unwrap_or_else(|e| e.into_inner());
            let mut latencies = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
            for out in outcomes {
                stats.processed += out.processed;
                stats.rejected += out.rejected;
                stats.detections += out.detections.len();
                detections.extend(out.detections);
                let room = self.config.latency_cap.saturating_sub(latencies.len());
                latencies.extend(out.latencies_us.into_iter().take(room));
            }
        }
        if stats.processed > 0 {
            self.dirty.store(true, Ordering::Release);
        }
        self.processed
            .fetch_add(stats.processed as u64, Ordering::Relaxed);
        self.rejected
            .fetch_add(stats.rejected as u64, Ordering::Relaxed);
        self.detections_total
            .fetch_add(stats.detections as u64, Ordering::Relaxed);
        self.tracer
            .incr("stream.samples_processed", stats.processed as u64);
        self.tracer
            .incr("stream.samples_rejected", stats.rejected as u64);
        self.tracer
            .incr("stream.detections", stats.detections as u64);
        if span.is_recording() {
            span.attr("processed", stats.processed);
            span.attr("rejected", stats.rejected);
            span.attr("detections", stats.detections);
            span.finish();
        }
        stats
    }

    /// Current verdicts over everything ingested so far.
    ///
    /// Recomputes only when new samples landed since the last poll
    /// (detector-gated staleness); otherwise the cached reports are
    /// returned. The fan is the batch `verify_rule_impl` over a
    /// [`SeriesCache`] of the store, so a full replay is verdict- and
    /// p-value-bit-identical to [`verify_rules`](crate::verify_rules).
    pub fn poll_verdicts(&self) -> Result<Vec<VerificationReport>> {
        if !self.dirty.swap(false, Ordering::AcqRel) {
            if let Some(cached) = &*self
                .cached_reports
                .lock()
                .unwrap_or_else(|e| e.into_inner())
            {
                return Ok(cached.clone());
            }
        }
        let mut span = self.tracer.span("stream.poll_verdicts");
        let parent = span.is_recording().then(|| span.id());
        let cache = SeriesCache::new(&self.store);
        let reports: Result<Vec<VerificationReport>> = self
            .rules
            .iter()
            .map(|rule| {
                verify_rule_impl(
                    &cache,
                    rule,
                    &self.scope,
                    &self.inventory,
                    &self.topology,
                    true,
                    &self.tracer,
                    parent,
                )
            })
            .collect();
        self.tracer.incr("series_cache.hits", cache.hits() as u64);
        self.tracer
            .incr("series_cache.misses", cache.misses() as u64);
        if span.is_recording() {
            span.attr("rules", self.rules.len());
            span.attr("ok", reports.is_ok());
            span.finish();
        }
        let reports = reports?;
        *self
            .cached_reports
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(reports.clone());
        Ok(reports)
    }

    /// Live detections recorded so far (raw per-sample candidates, in
    /// pump order). `clear` empties the buffer after the read.
    pub fn take_detections(&self) -> Vec<StreamDetection> {
        std::mem::take(&mut *self.detections.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Cumulative counters.
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            accepted: self.router.accepted(),
            shed: self.router.shed(),
            processed: self.processed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            detections: self.detections_total.load(Ordering::Relaxed),
        }
    }

    /// Quantile of the per-sample detection latency (seconds from enqueue
    /// to applied state + detector update), e.g. `0.99` for the p99.
    /// `None` until at least one sample has been processed.
    pub fn detection_latency_quantile(&self, q: f64) -> Option<f64> {
        let lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        if lat.is_empty() {
            return None;
        }
        Some(quantile(&lat, q) / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ClosureAdapter;
    use crate::rules::{Expectation, KpiQuery};
    use crate::verify::{verify_rules, GoNoGo};
    use cornet_types::{Attributes, NfType};

    fn fixture() -> (Inventory, Topology) {
        let mut inv = Inventory::new();
        for i in 0..8 {
            inv.push(
                format!("n{i}"),
                NfType::ENodeB,
                Attributes::new().with("market", if i % 2 == 0 { "NYC" } else { "DFW" }),
            );
        }
        let mut topo = Topology::with_capacity(8);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId(i + 4));
        }
        (inv, topo)
    }

    fn feed_value(node: NodeId, k: u64, delta: f64) -> f64 {
        let minute = k * 60;
        let wiggle = ((k * 11 + node.0 as u64 * 3) % 5) as f64 * 0.15;
        let mut v = 100.0 + wiggle;
        if node.0 < 4 && minute >= 6000 {
            v += delta;
        }
        v
    }

    fn scope() -> ChangeScope {
        ChangeScope::simultaneous(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 6000)
    }

    fn rule() -> VerificationRule {
        let mut r = VerificationRule::standard(
            "stream",
            vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
        );
        r.location_attributes = vec!["market".into()];
        r
    }

    fn engine(config: StreamConfig) -> StreamingVerifier {
        let (inv, topo) = fixture();
        StreamingVerifier::new(vec![rule()], scope(), inv, topo, config, Tracer::noop())
    }

    #[test]
    fn replayed_stream_matches_batch_verdicts() {
        let delta = 20.0;
        let e = engine(StreamConfig::default());
        // Interleave nodes sample-by-sample, like a real feed.
        for k in 0..200u64 {
            for n in 0..8u32 {
                e.offer(StreamSample {
                    node: NodeId(n),
                    kpi: "thr".into(),
                    carrier: None,
                    minute: k * 60,
                    value: feed_value(NodeId(n), k, delta),
                });
            }
            if k % 17 == 0 {
                e.pump();
            }
        }
        e.pump();
        let streamed = e.poll_verdicts().unwrap();

        let (inv, topo) = fixture();
        let adapter = ClosureAdapter(move |node: NodeId, _: &str, _: Option<usize>| {
            Some(TimeSeries::new(
                0,
                60,
                (0..200u64).map(|k| feed_value(node, k, delta)).collect(),
            ))
        });
        let batch = verify_rules(&adapter, &[rule()], &scope(), &inv, &topo).unwrap();
        assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.iter().zip(&batch) {
            assert_eq!(s.decision, b.decision);
            for (sk, bk) in s.kpis.iter().zip(&b.kpis) {
                assert_eq!(sk.overall.verdict, bk.overall.verdict);
                assert_eq!(sk.overall.p_value.to_bits(), bk.overall.p_value.to_bits());
                assert_eq!(
                    sk.overall.relative_shift.to_bits(),
                    bk.overall.relative_shift.to_bits()
                );
            }
        }
        assert_eq!(streamed[0].decision, GoNoGo::Go);
    }

    #[test]
    fn out_of_order_and_duplicate_delivery_reaches_same_state() {
        let e = engine(StreamConfig::default());
        // Deliver minutes in a scrambled order with duplicates.
        let minutes: Vec<u64> = (0..40u64).map(|k| (k * 23) % 40).collect();
        for &k in &minutes {
            e.offer(StreamSample {
                node: NodeId(0),
                kpi: "thr".into(),
                carrier: None,
                minute: k * 60,
                value: k as f64,
            });
        }
        // A duplicate correction.
        e.offer(StreamSample {
            node: NodeId(0),
            kpi: "thr".into(),
            carrier: None,
            minute: 0,
            value: 0.0,
        });
        e.pump();
        let series = e.store().series(NodeId(0), "thr", None).unwrap();
        assert_eq!(series.start_minute, 0);
        assert_eq!(series.values, (0..40).map(|k| k as f64).collect::<Vec<_>>());
    }

    #[test]
    fn off_grid_samples_are_rejected_and_counted() {
        let e = engine(StreamConfig::default());
        e.offer(StreamSample {
            node: NodeId(0),
            kpi: "thr".into(),
            carrier: None,
            minute: 0,
            value: 1.0,
        });
        e.offer(StreamSample {
            node: NodeId(0),
            kpi: "thr".into(),
            carrier: None,
            minute: 61, // off the 60-minute grid
            value: 2.0,
        });
        let stats = e.pump();
        assert_eq!(stats.processed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn bounded_queue_sheds_oldest_and_counts() {
        let config = StreamConfig {
            queue_capacity: 4,
            ..Default::default()
        };
        let e = engine(config);
        for k in 0..10u64 {
            e.offer(StreamSample {
                node: NodeId(0),
                kpi: "thr".into(),
                carrier: None,
                minute: k * 60,
                value: k as f64,
            });
        }
        assert_eq!(e.stats().shed, 6);
        e.pump();
        let series = e.store().series(NodeId(0), "thr", None).unwrap();
        // The four freshest survived; the shed prefix shows up as leading
        // gaps once a later sample sets the grid backwards — here the
        // first surviving sample is minute 360.
        assert_eq!(series.start_minute, 360);
        assert_eq!(series.values, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn detectors_fire_on_study_streams_and_gate_recompute() {
        let config = StreamConfig {
            detect_window: 4,
            detect_timescales: vec![1],
            ..Default::default()
        };
        let e = engine(config);
        for k in 0..60u64 {
            let v = if k < 30 { 100.0 } else { 140.0 } + (k % 3) as f64 * 0.05;
            e.offer(StreamSample {
                node: NodeId(1),
                kpi: "thr".into(),
                carrier: None,
                minute: k * 60,
                value: v,
            });
            // Control stream: flat, no detector (node 5 not in scope).
            e.offer(StreamSample {
                node: NodeId(5),
                kpi: "thr".into(),
                carrier: None,
                minute: k * 60,
                value: 100.0,
            });
        }
        let stats = e.pump();
        assert!(stats.detections > 0, "step must fire the detector");
        let detections = e.take_detections();
        assert!(detections.iter().all(|d| d.node == NodeId(1)));
        let d = &detections[0];
        assert_eq!(d.timescale, 1);
        assert!(
            (d.minute as i64 - 1800).abs() <= 4 * 60,
            "shift located near minute 1800, got {}",
            d.minute
        );
        assert!(d.delta > 0.0);
        assert!(e.detection_latency_quantile(0.99).unwrap() >= 0.0);
    }

    #[test]
    fn poll_caches_until_new_samples_arrive() {
        let e = engine(StreamConfig::default());
        for k in 0..200u64 {
            for n in 0..8u32 {
                e.offer(StreamSample {
                    node: NodeId(n),
                    kpi: "thr".into(),
                    carrier: None,
                    minute: k * 60,
                    value: feed_value(NodeId(n), k, 20.0),
                });
            }
        }
        e.pump();
        let first = e.poll_verdicts().unwrap();
        let second = e.poll_verdicts().unwrap();
        assert_eq!(first[0].duration, second[0].duration, "cached, not rerun");
        // New data invalidates the cache.
        e.offer(StreamSample {
            node: NodeId(0),
            kpi: "thr".into(),
            carrier: None,
            minute: 200 * 60,
            value: 120.0,
        });
        e.pump();
        let third = e.poll_verdicts().unwrap();
        assert_eq!(third[0].decision, first[0].decision);
    }
}
