//! # cornet-verifier
//!
//! The change impact verifier (§3.5): composable verification rules over
//! KPI time-series, study/control comparison with robust statistics, and
//! multi-timescale detection of unexpected impacts, time-aligned across
//! staggered roll-outs.
//!
//! * [`adapter`] — data adapters abstracting the KPI feeds;
//! * [`control`] — control-group derivation from topology and inventory
//!   (1st/2nd-tier neighbors, same-hardware, Fig. 14's criteria);
//! * [`rules`] — verification-rule composition: KPI sets, expected
//!   impacts, location-aggregation attributes, timescales;
//! * [`analysis`] — the §3.5.2 statistical core: per-node alignment and
//!   normalization, robust regression `S = βC`, prediction, and the
//!   robust rank-order test;
//! * [`verify`] — the verifier facade producing per-KPI, per-location
//!   verdicts and a go/no-go summary;
//! * [`stream`] — the streaming engine: backpressure-aware ingest,
//!   per-sample multi-timescale detection, and verdict polls that share
//!   the batch fan (bit-identical results on a full replay).

#![forbid(unsafe_code)]
pub mod adapter;
pub mod analysis;
pub mod control;
pub mod equation;
pub mod integrity;
pub mod rulecheck;
pub mod rules;
pub mod stream;
pub mod verify;

pub use adapter::{ClosureAdapter, DataAdapter, SeriesCache};
pub use analysis::{analyze_kpi, AnalysisOptions, ChangeScope, ImpactVerdict, KpiAnalysis};
pub use control::{derive_control_group, ControlSelection};
pub use equation::Equation;
pub use integrity::{monitor_feeds, FeedAlert, IntegrityConfig};
pub use rulecheck::analyze_rules;
pub use rules::{Expectation, KpiQuery, VerificationRule};
pub use stream::{
    IngestOutcome, IngestStats, PumpStats, SampleRouter, SeriesStore, StreamConfig,
    StreamDetection, StreamSample, StreamingVerifier,
};
pub use verify::{
    verify_rule, verify_rule_sequential, verify_rule_traced, verify_rules, verify_rules_traced,
    GoNoGo, VerificationReport,
};
