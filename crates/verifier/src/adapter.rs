//! Data adapters: the verifier's view of KPI feeds.
//!
//! "We create multiple data adapters to support collecting data from
//! multiple sources" (§3.5.1). The verifier only needs one operation —
//! fetch the series of a (node, KPI, carrier) stream — so the adapter is a
//! single-method trait. Production adapters would front vendor counters
//! or a data lake; tests and experiments use [`ClosureAdapter`] over the
//! netsim KPI synthesizer.

use cornet_stats::TimeSeries;
use cornet_types::NodeId;

/// Source of KPI time-series.
pub trait DataAdapter: Sync {
    /// Fetch the series for a node's KPI, optionally confined to one
    /// carrier frequency. `None` when the feed has no such stream — the
    /// analytics must tolerate missing data (§5.3).
    fn series(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> Option<TimeSeries>;
}

/// Adapter from a closure.
pub struct ClosureAdapter<F>(pub F);

impl<F> DataAdapter for ClosureAdapter<F>
where
    F: Fn(NodeId, &str, Option<usize>) -> Option<TimeSeries> + Sync,
{
    fn series(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> Option<TimeSeries> {
        (self.0)(node, kpi, carrier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_adapter_delegates() {
        let adapter = ClosureAdapter(|node: NodeId, kpi: &str, _carrier: Option<usize>| {
            if kpi == "known" {
                Some(TimeSeries::new(0, 60, vec![node.0 as f64]))
            } else {
                None
            }
        });
        assert!(adapter.series(NodeId(1), "known", None).is_some());
        assert!(adapter.series(NodeId(1), "unknown", None).is_none());
        assert_eq!(
            adapter.series(NodeId(7), "known", None).unwrap().values,
            vec![7.0]
        );
    }
}
