//! Data adapters: the verifier's view of KPI feeds.
//!
//! "We create multiple data adapters to support collecting data from
//! multiple sources" (§3.5.1). The verifier only needs one operation —
//! fetch the series of a (node, KPI, carrier) stream — so the adapter is a
//! single-method trait. Production adapters would front vendor counters
//! or a data lake; tests and experiments use [`ClosureAdapter`] over the
//! netsim KPI synthesizer.

use cornet_stats::TimeSeries;
use cornet_types::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// Source of KPI time-series.
pub trait DataAdapter: Sync {
    /// Fetch the series for a node's KPI, optionally confined to one
    /// carrier frequency. `None` when the feed has no such stream — the
    /// analytics must tolerate missing data (§5.3).
    fn series(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> Option<TimeSeries>;
}

/// Memoizing wrapper around a [`DataAdapter`].
///
/// A verification campaign touches the same streams over and over: the
/// overall analysis and every location slice of every KPI query re-fetch
/// the study and control series, and multiple rules repeat the whole
/// pattern. Production adapters front a data lake, so each fetch is the
/// expensive part. `SeriesCache` extracts each `(node, KPI, carrier)`
/// stream from the underlying adapter once and serves clones afterwards
/// — including negative results (`None` is cached too).
///
/// Thread-safe behind an `RwLock`: concurrent readers don't serialize on
/// cache hits. Two threads racing on the same cold key may both hit the
/// underlying adapter; both insert the same value (adapters are assumed
/// deterministic), so results are unaffected.
/// Cache key: one KPI stream is identified by `(node, KPI, carrier)`.
type StreamKey = (NodeId, String, Option<usize>);

pub struct SeriesCache<'a> {
    inner: &'a dyn DataAdapter,
    cache: RwLock<HashMap<StreamKey, Option<TimeSeries>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'a> SeriesCache<'a> {
    /// Wrap `inner` with an empty cache.
    pub fn new(inner: &'a dyn DataAdapter) -> Self {
        SeriesCache {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Distinct streams fetched so far (including misses cached as
    /// `None`) — a diagnostic for benches and tests.
    pub fn streams_cached(&self) -> usize {
        self.cache.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the underlying adapter.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

impl DataAdapter for SeriesCache<'_> {
    fn series(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> Option<TimeSeries> {
        let key = (node, kpi.to_owned(), carrier);
        if let Some(hit) = self
            .cache
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fetched = self.inner.series(node, kpi, carrier);
        self.cache
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, fetched.clone());
        fetched
    }
}

/// Adapter from a closure.
pub struct ClosureAdapter<F>(pub F);

impl<F> DataAdapter for ClosureAdapter<F>
where
    F: Fn(NodeId, &str, Option<usize>) -> Option<TimeSeries> + Sync,
{
    fn series(&self, node: NodeId, kpi: &str, carrier: Option<usize>) -> Option<TimeSeries> {
        (self.0)(node, kpi, carrier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_adapter_delegates() {
        let adapter = ClosureAdapter(|node: NodeId, kpi: &str, _carrier: Option<usize>| {
            if kpi == "known" {
                Some(TimeSeries::new(0, 60, vec![node.0 as f64]))
            } else {
                None
            }
        });
        assert!(adapter.series(NodeId(1), "known", None).is_some());
        assert!(adapter.series(NodeId(1), "unknown", None).is_none());
        assert_eq!(
            adapter.series(NodeId(7), "known", None).unwrap().values,
            vec![7.0]
        );
    }

    #[test]
    fn series_cache_fetches_each_stream_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fetches = AtomicUsize::new(0);
        let adapter = ClosureAdapter(|node: NodeId, kpi: &str, _carrier: Option<usize>| {
            fetches.fetch_add(1, Ordering::Relaxed);
            if kpi == "known" {
                Some(TimeSeries::new(0, 60, vec![node.0 as f64]))
            } else {
                None
            }
        });
        let cache = SeriesCache::new(&adapter);
        for _ in 0..5 {
            assert_eq!(
                cache.series(NodeId(3), "known", None).unwrap().values,
                vec![3.0]
            );
            assert!(cache.series(NodeId(3), "unknown", None).is_none());
        }
        assert_eq!(
            fetches.load(Ordering::Relaxed),
            2,
            "one fetch per distinct stream, misses included"
        );
        assert_eq!(cache.streams_cached(), 2);
        assert_eq!(cache.misses(), 2, "two distinct streams fell through");
        assert_eq!(cache.hits(), 8, "remaining lookups served from cache");
        // Distinct carrier = distinct stream.
        cache.series(NodeId(3), "known", Some(1));
        assert_eq!(fetches.load(Ordering::Relaxed), 3);
        assert_eq!(cache.misses(), 3);
    }
}
