//! Robust statistical pre/post analysis (§3.5.2).
//!
//! The pipeline per KPI:
//!
//! 1. each study node's series is **aligned** at its own change time and
//!    **normalized** by its pre-change median (Mercury-style, handling the
//!    staggered roll-out);
//! 2. aligned study series are averaged into one relative-time series;
//!    control nodes are aligned at the median change time and averaged;
//! 3. a robust **ratio regression** `S = βC` is fit on the pre-change
//!    interval;
//! 4. the post-change study series is **predicted** from the post-change
//!    control series (`Ŝ' = βC'`) and compared against the measured one
//!    with the **robust rank-order test**, at every configured timescale;
//! 5. the verdict is improvement / degradation / no-impact, oriented by
//!    the KPI's upward-good flag.

use crate::adapter::DataAdapter;
use cornet_stats::rank::Direction;
use cornet_stats::series::AggFn;
use cornet_stats::{ratio_regression, robust_rank_order, TimeSeries};
use cornet_types::{CornetError, NodeId, Result};
use serde::Serialize;
use std::collections::BTreeMap;

/// Which nodes changed, and when (minutes since epoch) — the staggered
/// roll-out scope produced by the `change_scope` building block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChangeScope {
    /// Node → change execution minute.
    pub changes: BTreeMap<NodeId, u64>,
}

impl ChangeScope {
    /// Scope with every node changed at the same minute.
    pub fn simultaneous(nodes: &[NodeId], minute: u64) -> Self {
        ChangeScope {
            changes: nodes.iter().map(|&n| (n, minute)).collect(),
        }
    }

    /// Median change minute (control-group alignment reference).
    pub fn median_minute(&self) -> Option<u64> {
        if self.changes.is_empty() {
            return None;
        }
        let mut times: Vec<u64> = self.changes.values().copied().collect();
        times.sort_unstable();
        Some(times[times.len() / 2])
    }

    /// Study node list.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.changes.keys().copied().collect()
    }
}

/// Analysis tuning.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// Timescale resampling factors to test.
    pub timescales: Vec<usize>,
    /// Significance level.
    pub alpha: f64,
    /// Minimum aligned samples required on each side of the change.
    pub min_samples: usize,
    /// Practical-significance floor: shifts smaller than this fraction of
    /// the predicted level are reported as no-impact even when the rank
    /// test resolves them (statistical ≠ operational significance).
    pub min_relative_shift: f64,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            timescales: vec![1, 24],
            alpha: 0.01,
            min_samples: 8,
            min_relative_shift: 0.01,
        }
    }
}

/// Direction-free statistical outcome of one KPI analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ImpactVerdict {
    /// Statistically significant upward-good movement.
    Improvement,
    /// Statistically significant movement in the harmful direction.
    Degradation,
    /// No statistically resolvable impact.
    NoImpact,
}

/// Full result of analyzing one KPI over a change scope.
#[derive(Clone, Debug)]
pub struct KpiAnalysis {
    /// KPI name.
    pub kpi: String,
    /// Verdict oriented by `upward_good`.
    pub verdict: ImpactVerdict,
    /// Smallest p-value across timescales.
    pub p_value: f64,
    /// Relative median shift of measured vs predicted post series
    /// (positive = KPI moved up).
    pub relative_shift: f64,
    /// Timescale (resample factor) at which the verdict was reached.
    pub decisive_timescale: usize,
    /// Study nodes that actually had data.
    pub nodes_used: usize,
}

/// Align one node's series at its change minute and normalize by the
/// pre-change median. Returns (pre, post) in relative time.
fn aligned_normalized(series: &TimeSeries, at_minute: u64) -> Option<Aligned> {
    let normalized = series.normalize_at(at_minute)?;
    let (pre, post) = normalized.align_at(at_minute);
    if pre.is_empty() || post.is_empty() {
        return None;
    }
    Some((pre, post))
}

/// A per-node aligned series: (pre-change samples, post-change samples).
type Aligned = (Vec<f64>, Vec<f64>);

/// Average a set of aligned series (right-aligned pre, left-aligned post).
fn stack(aligned: &[Aligned]) -> Option<Aligned> {
    let pre_len = aligned.iter().map(|(p, _)| p.len()).min()?;
    let post_len = aligned.iter().map(|(_, q)| q.len()).min()?;
    if pre_len == 0 || post_len == 0 {
        return None;
    }
    let mean_at = |extract: &dyn Fn(&Aligned) -> f64| -> f64 {
        let vals: Vec<f64> = aligned
            .iter()
            .map(extract)
            .filter(|v| !v.is_nan())
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let pre: Vec<f64> = (0..pre_len)
        .map(|i| mean_at(&|(p, _): &Aligned| p[p.len() - pre_len + i]))
        .collect();
    let post: Vec<f64> = (0..post_len)
        .map(|i| mean_at(&|(_, q): &Aligned| q[i]))
        .collect();
    Some((pre, post))
}

/// Resample a relative-time vector by averaging blocks of `factor`.
fn coarsen(xs: &[f64], factor: usize) -> Vec<f64> {
    if factor <= 1 {
        return xs.to_vec();
    }
    xs.chunks(factor)
        .map(|c| {
            let clean: Vec<f64> = c.iter().copied().filter(|v| !v.is_nan()).collect();
            if clean.is_empty() {
                f64::NAN
            } else {
                clean.iter().sum::<f64>() / clean.len() as f64
            }
        })
        .collect()
}

/// Analyze one KPI across a (possibly staggered) change scope.
pub fn analyze_kpi(
    adapter: &dyn DataAdapter,
    kpi: &str,
    carrier: Option<usize>,
    upward_good: bool,
    scope: &ChangeScope,
    control: &[NodeId],
    options: &AnalysisOptions,
) -> Result<KpiAnalysis> {
    // --- study side: per-node alignment + normalization.
    let mut study_aligned = Vec::new();
    for (&node, &minute) in &scope.changes {
        if let Some(series) = adapter.series(node, kpi, carrier) {
            if let Some(a) = aligned_normalized(&series, minute) {
                study_aligned.push(a);
            }
        }
    }
    let nodes_used = study_aligned.len();
    let (study_pre, study_post) = stack(&study_aligned).ok_or_else(|| {
        CornetError::DataIntegrity(format!("no usable study series for KPI '{kpi}'"))
    })?;

    // --- control side, aligned at the median change time.
    let reference = scope
        .median_minute()
        .ok_or_else(|| CornetError::DataIntegrity("empty change scope".into()))?;
    let mut control_aligned = Vec::new();
    for &node in control {
        if let Some(series) = adapter.series(node, kpi, carrier) {
            if let Some(a) = aligned_normalized(&series, reference) {
                control_aligned.push(a);
            }
        }
    }

    // The study-vs-control regression needs a control group; without one
    // we fall back to a pre-vs-post self-comparison (β = 1 over a flat
    // control) — still useful, documented as weaker.
    let (control_pre, control_post) = match stack(&control_aligned) {
        Some(c) => c,
        None => (vec![1.0; study_pre.len()], vec![1.0; study_post.len()]),
    };

    // Harmonize lengths for the regression and the prediction.
    let pre_len = study_pre.len().min(control_pre.len());
    let post_len = study_post.len().min(control_post.len());
    if pre_len < options.min_samples || post_len < options.min_samples {
        return Err(CornetError::DataIntegrity(format!(
            "KPI '{kpi}': {pre_len} pre / {post_len} post samples, need {}",
            options.min_samples
        )));
    }
    let s_pre = &study_pre[study_pre.len() - pre_len..];
    let c_pre = &control_pre[control_pre.len() - pre_len..];
    let s_post = &study_post[..post_len];
    let c_post = &control_post[..post_len];

    // --- robust regression S = βC on the pre interval; predict post.
    let fit = ratio_regression(c_pre, s_pre);
    let predicted: Vec<f64> = fit.predict_series(c_post);

    // --- rank test at each timescale; keep the most significant.
    let mut best_p = f64::INFINITY;
    let mut best_dir = Direction::None;
    let mut decisive = *options.timescales.first().unwrap_or(&1);
    for &ts in &options.timescales {
        // Missing samples (NaN) must not reach the rank test: placement
        // comparisons against NaN are always false, silently biasing the
        // statistic. Drop the pair when either side is missing.
        let measured_raw = coarsen(s_post, ts);
        let pred_raw = coarsen(&predicted, ts);
        let (measured, pred): (Vec<f64>, Vec<f64>) = measured_raw
            .iter()
            .zip(&pred_raw)
            .filter(|(m, p)| !m.is_nan() && !p.is_nan())
            .map(|(m, p)| (*m, *p))
            .unzip();
        let r = robust_rank_order(&measured, &pred);
        if r.p_value.is_finite() && r.p_value < best_p {
            best_p = r.p_value;
            best_dir = r.direction;
            decisive = ts;
        }
    }
    let significant = best_p.is_finite() && best_p < options.alpha;

    // Relative shift of measured vs predicted medians.
    let med = |xs: &[f64]| cornet_stats::median(xs);
    let pred_med = med(&predicted);
    let relative_shift = if pred_med != 0.0 {
        (med(s_post) - pred_med) / pred_med.abs()
    } else {
        0.0
    };

    let practically_significant = relative_shift.abs() >= options.min_relative_shift;
    let verdict = if !significant || !practically_significant || best_dir == Direction::None {
        ImpactVerdict::NoImpact
    } else {
        let moved_up = best_dir == Direction::Up;
        if moved_up == upward_good {
            ImpactVerdict::Improvement
        } else {
            ImpactVerdict::Degradation
        }
    };

    Ok(KpiAnalysis {
        kpi: kpi.to_owned(),
        verdict,
        p_value: best_p,
        relative_shift,
        decisive_timescale: decisive,
        nodes_used,
    })
}

/// Location aggregation helper: averages several nodes' series into one
/// virtual stream (used by per-attribute verdicts).
pub fn aggregate_series(
    adapter: &dyn DataAdapter,
    nodes: &[NodeId],
    kpi: &str,
    carrier: Option<usize>,
    agg: AggFn,
) -> Option<TimeSeries> {
    let series: Vec<TimeSeries> = nodes
        .iter()
        .filter_map(|&n| adapter.series(n, kpi, carrier))
        .collect();
    let refs: Vec<&TimeSeries> = series.iter().collect();
    cornet_stats::series::merge(&refs, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ClosureAdapter;

    /// Synthetic feed: study nodes (id < 100) get `delta` added after
    /// their change minute; control nodes stay flat. Deterministic noise.
    fn adapter(delta: f64, change_minute: u64) -> impl DataAdapter {
        ClosureAdapter(move |node: NodeId, _kpi: &str, _carrier: Option<usize>| {
            let base = 100.0 + node.0 as f64;
            let values: Vec<f64> = (0..200u64)
                .map(|k| {
                    let minute = k * 60;
                    let wiggle = ((k * 7 + node.0 as u64) % 5) as f64 * 0.2;
                    let shift = if node.0 < 100 && minute >= change_minute {
                        delta
                    } else {
                        0.0
                    };
                    base + wiggle + shift
                })
                .collect();
            Some(TimeSeries::new(0, 60, values))
        })
    }

    fn scope() -> ChangeScope {
        // Staggered: three study nodes changed at slightly different times.
        ChangeScope {
            changes: [(NodeId(0), 6000), (NodeId(1), 6060), (NodeId(2), 6120)].into(),
        }
    }

    fn controls() -> Vec<NodeId> {
        vec![NodeId(100), NodeId(101), NodeId(102)]
    }

    #[test]
    fn detects_improvement() {
        let a = adapter(20.0, 6000);
        let r = analyze_kpi(
            &a,
            "thr",
            None,
            true,
            &scope(),
            &controls(),
            &Default::default(),
        )
        .unwrap();
        assert_eq!(r.verdict, ImpactVerdict::Improvement, "p={}", r.p_value);
        assert!(r.relative_shift > 0.1);
        assert_eq!(r.nodes_used, 3);
    }

    #[test]
    fn detects_degradation_for_downward_good_kpi() {
        // Drop rate goes up → degradation when upward_good = false.
        let a = adapter(15.0, 6000);
        let r = analyze_kpi(
            &a,
            "drops",
            None,
            false,
            &scope(),
            &controls(),
            &Default::default(),
        )
        .unwrap();
        assert_eq!(r.verdict, ImpactVerdict::Degradation);
    }

    #[test]
    fn flat_change_is_no_impact() {
        let a = adapter(0.0, 6000);
        let r = analyze_kpi(
            &a,
            "thr",
            None,
            true,
            &scope(),
            &controls(),
            &Default::default(),
        )
        .unwrap();
        assert_eq!(r.verdict, ImpactVerdict::NoImpact, "p={}", r.p_value);
    }

    #[test]
    fn external_factor_hitting_both_groups_is_no_impact() {
        // A *proportional* shift applied to everyone (study and control) —
        // e.g. a traffic surge raising all counters 25%. The study/control
        // comparison must absorb it.
        let change_minute = 6000u64;
        let a = ClosureAdapter(move |node: NodeId, _: &str, _: Option<usize>| {
            let base = 100.0 + node.0 as f64;
            let values: Vec<f64> = (0..200u64)
                .map(|k| {
                    let minute = k * 60;
                    let wiggle = ((k * 3 + node.0 as u64) % 7) as f64 * 0.2;
                    let factor = if minute >= change_minute { 1.25 } else { 1.0 };
                    (base + wiggle) * factor
                })
                .collect();
            Some(TimeSeries::new(0, 60, values))
        });
        let r = analyze_kpi(
            &a,
            "thr",
            None,
            true,
            &scope(),
            &controls(),
            &Default::default(),
        )
        .unwrap();
        assert_eq!(
            r.verdict,
            ImpactVerdict::NoImpact,
            "study/control comparison must cancel the common shift, p={}",
            r.p_value
        );
    }

    #[test]
    fn subtle_impact_needs_coarser_timescale() {
        // Small shift vs per-sample noise: significant only after daily
        // averaging.
        let change_minute = 6000u64;
        let a = ClosureAdapter(move |node: NodeId, _: &str, _: Option<usize>| {
            let base = 100.0;
            let values: Vec<f64> = (0..192u64)
                .map(|k| {
                    let minute = k * 60;
                    // Deterministic pseudo-noise, sd ≈ 2.
                    let noise = (((k * 2654435761 + node.0 as u64 * 97) % 1000) as f64 / 1000.0
                        - 0.5)
                        * 7.0;
                    let shift = if node.0 < 100 && minute >= change_minute {
                        1.2
                    } else {
                        0.0
                    };
                    base + noise + shift
                })
                .collect();
            Some(TimeSeries::new(0, 60, values))
        });
        let fine_only = AnalysisOptions {
            timescales: vec![1],
            ..Default::default()
        };
        let multi = AnalysisOptions {
            timescales: vec![1, 24],
            ..Default::default()
        };
        let fine = analyze_kpi(&a, "thr", None, true, &scope(), &controls(), &fine_only).unwrap();
        let both = analyze_kpi(&a, "thr", None, true, &scope(), &controls(), &multi).unwrap();
        assert!(
            both.p_value <= fine.p_value,
            "coarser timescale should not hurt: {} vs {}",
            both.p_value,
            fine.p_value
        );
    }

    #[test]
    fn missing_data_is_a_data_integrity_error() {
        let a = ClosureAdapter(|_: NodeId, _: &str, _: Option<usize>| None);
        let err = analyze_kpi(&a, "thr", None, true, &scope(), &[], &Default::default());
        assert!(matches!(err, Err(CornetError::DataIntegrity(_))));
    }

    #[test]
    fn short_series_rejected() {
        let a = ClosureAdapter(|_: NodeId, _: &str, _: Option<usize>| {
            Some(TimeSeries::new(0, 60, vec![1.0; 10]))
        });
        let err = analyze_kpi(
            &a,
            "thr",
            None,
            true,
            &ChangeScope::simultaneous(&[NodeId(0)], 300),
            &[],
            &Default::default(),
        );
        assert!(matches!(err, Err(CornetError::DataIntegrity(_))), "{err:?}");
    }

    #[test]
    fn aggregate_series_merges_nodes() {
        let a = ClosureAdapter(|node: NodeId, _: &str, _: Option<usize>| {
            Some(TimeSeries::new(0, 60, vec![node.0 as f64; 4]))
        });
        let merged =
            aggregate_series(&a, &[NodeId(2), NodeId(4)], "thr", None, AggFn::Mean).unwrap();
        assert_eq!(merged.values, vec![3.0; 4]);
    }
}
