//! The verifier facade: evaluate a composed rule over a change scope and
//! produce the go/no-go summary the operations teams act on (§3.5, §5.2).
//!
//! KPI queries evaluate in parallel (crossbeam scoped threads — the paper
//! notes verification time "is influenced by the number of threads we
//! create", Appendix D). Location-attribute aggregation produces per-value
//! verdicts so a halt can target only the problem configuration instead of
//! the whole network (§5.2).

use crate::adapter::DataAdapter;
use crate::analysis::{analyze_kpi, AnalysisOptions, ChangeScope, ImpactVerdict, KpiAnalysis};
use crate::control::derive_control_group;
use crate::rules::{Expectation, KpiQuery, VerificationRule};
use cornet_types::{Inventory, Result, Topology};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Verdict for one location-attribute value (e.g. market = "NYC").
#[derive(Clone, Debug)]
pub struct LocationVerdict {
    /// Attribute name.
    pub attribute: String,
    /// Attribute value.
    pub value: String,
    /// Analysis restricted to study nodes with that value, or an error
    /// string when the slice had insufficient data.
    pub analysis: std::result::Result<KpiAnalysis, String>,
}

/// Report for one KPI query.
#[derive(Clone, Debug)]
pub struct KpiReport {
    /// The query evaluated.
    pub query: KpiQuery,
    /// Aggregate analysis over the whole study group.
    pub overall: KpiAnalysis,
    /// Per-location-attribute-value verdicts.
    pub per_location: Vec<LocationVerdict>,
    /// Whether the outcome matches the query's expectation.
    pub meets_expectation: bool,
}

/// The operations decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoNoGo {
    /// Continue the roll-out.
    Go,
    /// Halt: at least one KPI violated its expectation.
    NoGo,
}

/// Full verification report for one rule.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Rule name.
    pub rule: String,
    /// Per-KPI reports.
    pub kpis: Vec<KpiReport>,
    /// The roll-out decision.
    pub decision: GoNoGo,
    /// Wall-clock verification time (the Fig. 10/11 metric).
    pub duration: Duration,
}

impl VerificationReport {
    /// Location-attribute values whose verdict violated expectations —
    /// the candidates for a *targeted* halt (§5.2).
    pub fn problem_locations(&self) -> Vec<(&str, &str, &str)> {
        let mut out = Vec::new();
        for kr in &self.kpis {
            for lv in &kr.per_location {
                if let Ok(a) = &lv.analysis {
                    if !expectation_met(kr.query.expected, a.verdict) {
                        out.push((
                            kr.query.kpi.as_str(),
                            lv.attribute.as_str(),
                            lv.value.as_str(),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Whether a verdict satisfies an expectation.
fn expectation_met(expected: Expectation, verdict: ImpactVerdict) -> bool {
    match expected {
        Expectation::Any => true,
        // An expected improvement tolerates "no impact yet" but not a
        // degradation.
        Expectation::Improve => verdict != ImpactVerdict::Degradation,
        // A tolerated degradation accepts anything except a *surprise*:
        // nothing is a surprise here, the team priced the loss in.
        Expectation::Degrade => true,
        Expectation::NoChange => verdict == ImpactVerdict::NoImpact,
    }
}

/// Evaluate one rule over a change scope.
pub fn verify_rule(
    adapter: &dyn DataAdapter,
    rule: &VerificationRule,
    scope: &ChangeScope,
    inventory: &Inventory,
    topology: &Topology,
) -> Result<VerificationReport> {
    let started = Instant::now();
    let study = scope.nodes();
    let control = derive_control_group(
        &rule.control,
        &study,
        topology,
        inventory,
        rule.control_attr_filter.as_deref(),
    );
    let options = AnalysisOptions {
        timescales: rule.timescales.clone(),
        alpha: rule.alpha,
        min_relative_shift: rule.min_relative_shift,
        ..Default::default()
    };

    // Location slices are shared across KPI queries.
    let mut location_slices: Vec<(String, String, ChangeScope)> = Vec::new();
    for attr in &rule.location_attributes {
        let mut by_value: BTreeMap<String, ChangeScope> = BTreeMap::new();
        for (&node, &minute) in &scope.changes {
            if let Some(v) = inventory.group_key_of(node, attr) {
                by_value.entry(v).or_default().changes.insert(node, minute);
            }
        }
        for (value, slice) in by_value {
            location_slices.push((attr.clone(), value, slice));
        }
    }

    // Evaluate KPI queries in parallel.
    let mut kpi_results: Vec<Option<Result<KpiReport>>> =
        (0..rule.kpis.len()).map(|_| None).collect();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for query in &rule.kpis {
            let control = &control;
            let options = &options;
            let location_slices = &location_slices;
            handles.push(s.spawn(move |_| -> Result<KpiReport> {
                let overall = analyze_kpi(
                    adapter,
                    &query.kpi,
                    query.carrier,
                    query.upward_good,
                    scope,
                    control,
                    options,
                )?;
                let per_location = location_slices
                    .iter()
                    .map(|(attr, value, slice)| LocationVerdict {
                        attribute: attr.clone(),
                        value: value.clone(),
                        analysis: analyze_kpi(
                            adapter,
                            &query.kpi,
                            query.carrier,
                            query.upward_good,
                            slice,
                            control,
                            options,
                        )
                        .map_err(|e| e.to_string()),
                    })
                    .collect();
                let meets_expectation = expectation_met(query.expected, overall.verdict);
                Ok(KpiReport {
                    query: query.clone(),
                    overall,
                    per_location,
                    meets_expectation,
                })
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            kpi_results[i] = Some(h.join().expect("verification thread panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let mut kpis = Vec::with_capacity(kpi_results.len());
    for r in kpi_results {
        kpis.push(r.expect("result present")?);
    }
    let decision = if kpis.iter().all(|k| k.meets_expectation) {
        GoNoGo::Go
    } else {
        GoNoGo::NoGo
    };
    Ok(VerificationReport {
        rule: rule.name.clone(),
        kpis,
        decision,
        duration: started.elapsed(),
    })
}

/// Study-vs-control verdict labels used in accuracy experiments: did the
/// verifier call match the injected ground truth?
pub fn verdict_matches(expected_direction: i8, analysis: &KpiAnalysis, upward_good: bool) -> bool {
    match expected_direction.signum() {
        0 => analysis.verdict == ImpactVerdict::NoImpact,
        1 => {
            analysis.verdict
                == if upward_good {
                    ImpactVerdict::Improvement
                } else {
                    ImpactVerdict::Degradation
                }
        }
        _ => {
            analysis.verdict
                == if upward_good {
                    ImpactVerdict::Degradation
                } else {
                    ImpactVerdict::Improvement
                }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ClosureAdapter;

    use crate::rules::VerificationRule;
    use cornet_stats::TimeSeries;
    use cornet_types::{Attributes, NfType, NodeId};

    /// Inventory: 4 study nodes in two markets + 4 control nodes; path
    /// topology linking study to control.
    fn fixture() -> (Inventory, Topology) {
        let mut inv = Inventory::new();
        for i in 0..8 {
            inv.push(
                format!("n{i}"),
                NfType::ENodeB,
                Attributes::new().with("market", if i % 2 == 0 { "NYC" } else { "DFW" }),
            );
        }
        let mut topo = Topology::with_capacity(8);
        for i in 0..4u32 {
            topo.add_edge(NodeId(i), NodeId(i + 4)); // study i ↔ control i+4
        }
        (inv, topo)
    }

    /// Feed: study nodes (0..4) shift by `delta`; node 1 (DFW) shifts by
    /// `dfw_extra` more.
    fn adapter(delta: f64, dfw_extra: f64) -> impl DataAdapter {
        ClosureAdapter(move |node: NodeId, _: &str, _: Option<usize>| {
            let base = 100.0;
            let values: Vec<f64> = (0..200u64)
                .map(|k| {
                    let minute = k * 60;
                    let wiggle = ((k * 11 + node.0 as u64 * 3) % 5) as f64 * 0.15;
                    let mut v = base + wiggle;
                    if node.0 < 4 && minute >= 6000 {
                        v += delta;
                        if node.0 % 2 == 1 {
                            v += dfw_extra;
                        }
                    }
                    v
                })
                .collect();
            Some(TimeSeries::new(0, 60, values))
        })
    }

    fn scope() -> ChangeScope {
        ChangeScope::simultaneous(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], 6000)
    }

    #[test]
    fn go_when_expected_improvement_happens() {
        let (inv, topo) = fixture();
        let rule = VerificationRule::standard(
            "up",
            vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
        );
        let a = adapter(20.0, 0.0);
        let report = verify_rule(&a, &rule, &scope(), &inv, &topo).unwrap();
        assert_eq!(report.decision, GoNoGo::Go);
        assert!(report.kpis[0].meets_expectation);
        assert_eq!(report.kpis[0].overall.verdict, ImpactVerdict::Improvement);
    }

    #[test]
    fn no_go_on_unexpected_degradation() {
        let (inv, topo) = fixture();
        let rule = VerificationRule::standard(
            "up",
            vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
        );
        let a = adapter(-20.0, 0.0);
        let report = verify_rule(&a, &rule, &scope(), &inv, &topo).unwrap();
        assert_eq!(report.decision, GoNoGo::NoGo);
    }

    #[test]
    fn no_change_expectation_flags_any_impact() {
        let (inv, topo) = fixture();
        let rule = VerificationRule::standard(
            "steady",
            vec![KpiQuery::expecting("lat", false, Expectation::NoChange)],
        );
        let moved = adapter(10.0, 0.0);
        let report = verify_rule(&moved, &rule, &scope(), &inv, &topo).unwrap();
        assert_eq!(report.decision, GoNoGo::NoGo);
        let flat = adapter(0.0, 0.0);
        let report2 = verify_rule(&flat, &rule, &scope(), &inv, &topo).unwrap();
        assert_eq!(report2.decision, GoNoGo::Go);
    }

    #[test]
    fn per_location_verdicts_isolate_problem_market() {
        // NYC improves (+15); DFW degrades (+15 − 30 = −15).
        let (inv, topo) = fixture();
        let mut rule = VerificationRule::standard(
            "split",
            vec![KpiQuery::expecting("thr", true, Expectation::Improve)],
        );
        rule.location_attributes = vec!["market".into()];
        let a = adapter(15.0, -30.0);
        let report = verify_rule(&a, &rule, &scope(), &inv, &topo).unwrap();
        let problems = report.problem_locations();
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert_eq!(problems[0], ("thr", "market", "DFW"));
    }

    #[test]
    fn multiple_kpis_evaluate_in_parallel() {
        let (inv, topo) = fixture();
        let rule = VerificationRule::standard(
            "multi",
            (0..6)
                .map(|i| KpiQuery::monitor(format!("kpi{i}"), true))
                .collect(),
        );
        let a = adapter(5.0, 0.0);
        let report = verify_rule(&a, &rule, &scope(), &inv, &topo).unwrap();
        assert_eq!(report.kpis.len(), 6);
        assert_eq!(
            report.decision,
            GoNoGo::Go,
            "monitor-only queries always pass"
        );
        assert!(report.duration > Duration::ZERO);
    }

    #[test]
    fn verdict_matches_ground_truth_labels() {
        let analysis = KpiAnalysis {
            kpi: "x".into(),
            verdict: ImpactVerdict::Improvement,
            p_value: 0.001,
            relative_shift: 0.2,
            decisive_timescale: 1,
            nodes_used: 3,
        };
        assert!(verdict_matches(1, &analysis, true));
        assert!(!verdict_matches(-1, &analysis, true));
        assert!(
            verdict_matches(-1, &analysis, false),
            "up move on a downward-good KPI"
        );
        assert!(!verdict_matches(0, &analysis, true));
    }
}
